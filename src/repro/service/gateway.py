"""The asyncio query gateway: a long-running service over a ``Federation``.

The paper's protocols answer one query per ring traversal;
``Federation.execute_many`` amortizes cost across a batch; this gateway adds
the missing layer for *continuous* traffic — the same shape modern inference
servers use.  Clients ``await submit(statement)``; a background scheduler
coalesces whatever is queued into ``execute_many`` batches (continuous
batching), serves repeats from the result cache without spending a batch
slot, and sheds load with typed errors instead of queuing unboundedly.

Determinism: with the default :class:`~repro.service.clock.SimulatedClock`
the service advances time itself by each batch's simulated protocol seconds,
so a seeded workload reproduces bit-identically — results (the federation's
batch/sequential parity guarantee), latency percentiles, shed decisions and
all.  Results served through the gateway are bit-identical to a sequential
``Federation.execute(..., use_cache=True)`` session issuing the same
statements in serve order under the same session seed.

Lifecycle::

    service = QueryService(federation, max_queue=64, max_batch=8)
    async with service:                       # or: await service.start()
        outcome = await service.submit("SELECT TOP 3 value FROM data")
        many = await service.submit_many(statements, timeout=5.0)
    # __aexit__ drains gracefully: queued work finishes, new work is refused
"""

from __future__ import annotations

import asyncio
import itertools
from collections.abc import Iterable, Sequence

from ..federation.coordinator import Federation, QueryOutcome, QueryRefused
from ..observability.metrics import MetricsRegistry
from ..observability.trace import TraceContext, Tracer
from ..planner.accuracy import PredictionLedger
from ..planner.errors import PlanInfeasible
from ..planner.plan import ECONOMY, QUALITY, Plan
from ..planner.planner import QueryPlanner
from ..planner.spec import QuerySpec, parse_spec
from ..privacy.dp import BudgetExhausted, DpError
from ..privacy.lop import average_lop
from .clock import Clock, SimulatedClock
from .errors import (
    DeadlineExceeded,
    Overloaded,
    QueryFailed,
    RateLimited,
    ServiceClosed,
    ServiceError,
)
from .metrics import ServiceMetrics
from .scheduler import AdmissionQueue, QueuedRequest, TokenBucket


class QueryService:
    """Async gateway serving a continuous stream of federated queries.

    Parameters
    ----------
    federation:
        The registered :class:`~repro.federation.coordinator.Federation`
        that executes the queries.
    max_queue:
        Admission-queue bound; a full queue rejects new requests with
        :class:`~repro.service.errors.Overloaded`.
    max_batch:
        Most queries coalesced into one ``execute_many`` call.
    batch_window:
        Real seconds the scheduler lingers after waking so concurrent
        submitters can join the forming batch; 0 yields to the event loop
        exactly once, which already coalesces everything submitted in the
        same loop iteration (e.g. one ``submit_many`` call).
    rate_limit / rate_burst:
        Per-issuer token bucket (requests/second and burst capacity) checked
        on the service clock; ``None`` disables rate limiting.
    clock:
        Time source for deadlines, rate limits and latency metrics.  The
        default :class:`~repro.service.clock.SimulatedClock` advances by
        each batch's simulated protocol time (deterministic); pass
        :class:`~repro.service.clock.SystemClock` for wall-clock serving.
    tracer:
        When given (and enabled), every submission opens one trace —
        ``query`` span, ``admission`` event, ``queue`` span, ``batch`` span,
        then the protocol/round/hop spans recorded by the execution layer —
        all timestamped on the service clock, so a seeded workload's traces
        are deterministic.  ``None`` (default) costs nothing.
    planner:
        Resolves statements to execution plans; defaults to the
        federation's.  Statements carrying ``WITH SLO(...)`` clauses are
        always planned at admission, so an unsatisfiable SLO is refused
        *before* it occupies a queue slot
        (:class:`~repro.planner.errors.PlanInfeasible` — never
        satisfiable, unlike ``Overloaded``'s retry-later).
    cost_budget_seconds:
        Cost-aware admission: when set, *every* statement is planned and
        the queue's total estimated simulated-seconds backlog is capped at
        this budget.  A request that would breach it is first re-planned in
        economy mode (a cheaper plan still honoring its declared SLO — the
        *downgrade* path), and only shed (``Overloaded``) when even the
        economy plan does not fit.  ``None`` (default) preserves
        depth-only admission.
    """

    def __init__(
        self,
        federation: Federation,
        *,
        max_queue: int = 256,
        max_batch: int = 16,
        batch_window: float = 0.0,
        rate_limit: float | None = None,
        rate_burst: int = 8,
        clock: Clock | None = None,
        tracer: "Tracer | None" = None,
        planner: "QueryPlanner | None" = None,
        cost_budget_seconds: float | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.federation = federation
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = ServiceMetrics(batch_capacity=max_batch)
        self.tracer = tracer
        self._tracing = tracer is not None and tracer.enabled
        self._queue = AdmissionQueue(max_queue)
        self._max_batch = max_batch
        self._batch_window = batch_window
        self._rate_limit = rate_limit
        self._rate_burst = rate_burst
        if cost_budget_seconds is not None and cost_budget_seconds <= 0:
            raise ValueError(
                f"cost_budget_seconds must be positive, got {cost_budget_seconds}"
            )
        self.planner = planner if planner is not None else federation.planner
        self._cost_budget = cost_budget_seconds
        #: Summed plan estimates of the batch currently executing: popped
        #: from the queue but not yet finished, so still part of the
        #: admission backlog (cleared when the batch settles).
        self._inflight_cost = 0.0
        #: Predicted-vs-actual ledger for every planned statement served.
        self.accuracy = PredictionLedger()
        self._buckets: dict[str, TokenBucket] = {}
        self._seq = itertools.count()
        self._wakeup = asyncio.Event()
        self._runner: asyncio.Task | None = None
        self._draining = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "QueryService":
        """Start the scheduler task (idempotent; ``submit`` also lazy-starts)."""
        self._ensure_runner()
        return self

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *_exc_info) -> None:
        await self.close(drain=True)

    async def close(self, *, drain: bool = True) -> None:
        """Stop the service.

        With ``drain=True`` (graceful): new submissions are refused with
        :class:`ServiceClosed`, queued work is served to completion, then
        the scheduler exits.  With ``drain=False``: queued requests fail
        immediately with :class:`ServiceClosed`.
        """
        if self._closed:
            return
        self._draining = True
        if not drain:
            for request in self._queue.drain_all():
                self._fail(request, ServiceClosed("service closed before serving"))
        self._wakeup.set()
        if self._runner is not None:
            await self._runner
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed or self._draining

    @property
    def queue_depth(self) -> int:
        return self._queue.depth

    def metrics_snapshot(self) -> dict[str, object]:
        """Service counters plus the federation cache's hit statistics."""
        snapshot = self.metrics.snapshot(queue_depth=self._queue.depth)
        cache = self.federation.cache
        snapshot["cache_hits"] = cache.hits
        snapshot["cache_misses"] = cache.misses
        snapshot["cache_hit_rate"] = round(cache.hit_rate, 6)
        snapshot["planner"] = self.accuracy.snapshot()
        shard_snapshot = getattr(self.federation, "shard_snapshot", None)
        if shard_snapshot is not None:
            snapshot["sharding"] = shard_snapshot()
        dp_gate = getattr(self.federation, "dp_gate", None)
        if dp_gate is not None:
            snapshot["dp"] = dp_gate.snapshot()
        return snapshot

    def export_metrics(
        self, registry: "MetricsRegistry | None" = None
    ) -> "MetricsRegistry":
        """Publish the service's counters into a central metrics registry.

        Creates a fresh :class:`~repro.observability.metrics.MetricsRegistry`
        unless one is passed in (callers unify several sources — service,
        traffic, kernel phases — into one registry before exporting).
        """
        registry = registry if registry is not None else MetricsRegistry()
        registry.absorb_service(self.metrics, queue_depth=self._queue.depth)
        cache = self.federation.cache
        family = registry.counter(
            "repro_cache_events_total",
            "Result-cache lookups by outcome.",
            ("event",),
        )
        family.inc(cache.hits, labels={"event": "hit"})
        family.inc(cache.misses, labels={"event": "miss"})
        self.accuracy.export(registry)
        export_shards = getattr(self.federation, "export_shard_metrics", None)
        if export_shards is not None:
            export_shards(registry)
        dp_gate = getattr(self.federation, "dp_gate", None)
        if dp_gate is not None:
            registry.absorb_dp(dp_gate.snapshot())
        return registry

    # -- tracing ---------------------------------------------------------------

    def _trace_shed(
        self, query_ctx: "TraceContext | None", outcome: str, now: float
    ) -> None:
        """Record an admission rejection and close the query span."""
        if query_ctx is None:
            return
        self.tracer.event(
            query_ctx, "admission", at=now, kind="service",
            attrs={"outcome": outcome},
        )
        self.tracer.close_span(query_ctx, at=now, attrs={"outcome": outcome})

    def _trace_finish(
        self, request: QueuedRequest, at: float, attrs: dict
    ) -> None:
        """Close whatever spans the request still holds open, then its query."""
        if request.trace is None:
            return
        tracer = self.tracer
        if request.queue_span is not None:
            tracer.close_span(request.queue_span, at=at)
            request.queue_span = None
        if request.batch_span is not None:
            tracer.close_span(request.batch_span, at=at)
            request.batch_span = None
        tracer.close_span(request.trace, at=at, attrs=attrs)

    # -- planning / cost admission ---------------------------------------------

    def _cost_backlog(self) -> float:
        """Estimated simulated seconds admitted but not yet finished.

        Counts planned requests still in the queue *plus* the batch
        currently executing — it was popped from the queue, but its work is
        not done, so dropping it would let admission transiently overshoot
        the cost budget by up to one full batch.
        """
        return self._inflight_cost + sum(
            queued.plan.estimate.simulated_seconds
            for queued in self._queue.snapshot()
            if isinstance(queued.plan, Plan)
        )

    def _admission_plan(
        self, spec: QuerySpec, query_ctx: "TraceContext | None", now: float
    ) -> "Plan | None":
        """Resolve the statement's plan and enforce the cost budget.

        SLO'd statements are always planned, so an unsatisfiable SLO is
        refused — typed, :class:`PlanInfeasible` — before occupying a queue
        slot.  With ``cost_budget_seconds`` set, every statement is planned
        and the queue's estimated backlog is capped: an over-budget request
        is first re-planned in economy mode (the *downgrade* path, still
        honoring its declared SLO) and shed with :class:`Overloaded` only
        when even the economy plan does not fit.
        """
        if self._cost_budget is None and spec.slo.is_trivial:
            return None
        parties = len(self.federation.members)
        try:
            plan = self.planner.plan(spec, parties=parties)
        except PlanInfeasible:
            self.metrics.plan_infeasible += 1
            self._trace_shed(query_ctx, "plan-infeasible", now)
            raise
        if self._cost_budget is None:
            return plan
        backlog = self._cost_backlog()
        if backlog + plan.estimate.simulated_seconds <= self._cost_budget:
            return plan
        # The quality plan was feasible, so the economy objective ranks the
        # same non-empty candidate set — it cannot raise.
        economy = self.planner.plan(spec, parties=parties, mode=ECONOMY)
        if (
            economy.estimate.simulated_seconds < plan.estimate.simulated_seconds
            and backlog + economy.estimate.simulated_seconds <= self._cost_budget
        ):
            self.metrics.downgraded += 1
            if query_ctx is not None:
                self.tracer.event(
                    query_ctx, "downgraded", at=now, kind="service",
                    attrs={
                        "from_rounds": plan.estimate.rounds,
                        "to_rounds": economy.estimate.rounds,
                        "from_protocol": plan.protocol,
                        "to_protocol": economy.protocol,
                    },
                )
            return economy
        self.metrics.shed_cost += 1
        self._trace_shed(query_ctx, "shed-cost", now)
        raise Overloaded(
            f"estimated cost {plan.estimate.simulated_seconds:.4f}s would "
            f"push the {backlog:.4f}s backlog past the "
            f"{self._cost_budget:g}s budget",
            queue_depth=self._queue.depth,
            limit=self._queue.max_depth,
        )

    # -- submission ------------------------------------------------------------

    async def submit(
        self,
        statement: str,
        *,
        issuer: str = "anonymous",
        priority: int = 0,
        timeout: float | None = None,
    ) -> QueryOutcome:
        """Admit one statement and await its outcome.

        ``timeout`` is a relative deadline in service-clock seconds: a
        request still queued when it expires is shed with
        :class:`DeadlineExceeded`.  Once a request is dispatched into a
        batch its result is always delivered — the protocol ran and the
        exposure was charged, so discarding the public answer would waste
        both.  ``priority`` orders batch formation (higher first, FIFO
        within a level).  Service-level rejections raise
        :class:`~repro.service.errors.ServiceError` subclasses; per-query
        federation refusals (``SqlError``, ``PolicyViolation``,
        ``BudgetExceededError``) propagate as their original typed errors.
        """
        self.metrics.submitted += 1
        if self.closed:
            raise ServiceClosed("service is closed to new queries")
        # Malformed statements (and SLO clauses) never reach the queue.
        spec = parse_spec(statement)
        now = self.clock.now()
        query_ctx: "TraceContext | None" = None
        if self._tracing:
            trace = self.tracer.new_trace(
                name=statement,
                baggage={"statement": statement, "issuer": issuer},
            )
            query_ctx = self.tracer.open_span(
                trace, "query", at=now, kind="service",
                attrs={"issuer": issuer},
            )
        if timeout is not None and timeout <= 0:
            self.metrics.shed_deadline += 1
            self._trace_shed(query_ctx, "shed-deadline", now)
            raise DeadlineExceeded(f"timeout {timeout}s already expired")
        if self._rate_limit is not None and not self._bucket(issuer).try_take(now):
            self.metrics.shed_rate_limited += 1
            self._trace_shed(query_ctx, "shed-rate-limited", now)
            raise RateLimited(
                f"issuer {issuer!r} exceeded {self._rate_limit}/s "
                f"(burst {self._rate_burst})"
            )
        # Cache fast path: an already-public answer is re-served immediately
        # and never occupies a queue or batch slot.
        cached = self.federation.try_cached(statement, issuer=issuer)
        if cached is not None:
            self.metrics.cache_fast_hits += 1
            self.metrics.completed += 1
            self.metrics.latency.record(0.0)
            if query_ctx is not None:
                self.tracer.event(
                    query_ctx, "admission", at=now, kind="service",
                    attrs={"outcome": "cache-hit"},
                )
                self.tracer.close_span(
                    query_ctx, at=now,
                    attrs={"outcome": "cache-hit", "cached": True},
                )
            return cached
        plan = self._admission_plan(spec, query_ctx, now)
        # DP admission: a statement whose release can neither reuse an
        # existing answer nor fit its remaining (ε, δ) budget is refused
        # typed — BudgetExhausted, permanent like PlanInfeasible, unlike
        # Overloaded's retry-later — before it occupies a queue slot.
        if spec.slo.has_dp:
            dp_check = getattr(self.federation, "dp_admission_check", None)
            if dp_check is not None:
                try:
                    dp_check(spec, issuer=issuer)
                except (BudgetExhausted, DpError):
                    self.metrics.refused += 1
                    self._trace_shed(query_ctx, "budget-exhausted", now)
                    raise
        request = QueuedRequest(
            statement=statement,
            issuer=issuer,
            priority=priority,
            deadline=(now + timeout) if timeout is not None else None,
            admitted_at=now,
            seq=next(self._seq),
            future=asyncio.get_running_loop().create_future(),
            trace=query_ctx,
            plan=plan,
        )
        try:
            self._queue.push(request)
        except ServiceError:
            self.metrics.shed_overload += 1
            self._trace_shed(query_ctx, "shed-overload", now)
            raise
        self.metrics.admitted += 1
        if query_ctx is not None:
            self.tracer.event(
                query_ctx, "admission", at=now, kind="service",
                attrs={"outcome": "admitted"},
            )
            request.queue_span = self.tracer.open_span(
                query_ctx, "queue", at=now, kind="service"
            )
        self.metrics.queue_high_water = max(
            self.metrics.queue_high_water, self._queue.depth
        )
        self._ensure_runner()
        self._wakeup.set()
        return await request.future

    async def submit_many(
        self,
        statements: Iterable[str],
        *,
        issuer: str = "anonymous",
        priority: int = 0,
        timeout: float | None = None,
        return_exceptions: bool = False,
    ) -> "Sequence[QueryOutcome | BaseException]":
        """Submit a burst concurrently; results in statement order.

        All statements are admitted in the same event-loop iteration, so
        they coalesce into as few batches as capacity allows.  With
        ``return_exceptions=True`` shed/refused entries appear as exception
        *objects* at their positions instead of aborting the gather —
        the natural mode under deliberate overload.
        """
        return await asyncio.gather(
            *(
                self.submit(
                    statement, issuer=issuer, priority=priority, timeout=timeout
                )
                for statement in statements
            ),
            return_exceptions=return_exceptions,
        )

    # -- scheduler ------------------------------------------------------------

    def _bucket(self, issuer: str) -> TokenBucket:
        bucket = self._buckets.get(issuer)
        if bucket is None:
            assert self._rate_limit is not None
            bucket = TokenBucket(
                rate=self._rate_limit,
                burst=float(self._rate_burst),
                updated=self.clock.now(),
            )
            self._buckets[issuer] = bucket
        return bucket

    def _ensure_runner(self) -> None:
        if self._runner is None or self._runner.done():
            if self._runner is not None and not self._runner.cancelled():
                # Surface a crashed scheduler instead of silently restarting.
                error = self._runner.exception()
                if error is not None:
                    raise QueryFailed("scheduler crashed", cause=error)
            self._runner = asyncio.get_running_loop().create_task(
                self._run(), name="repro-query-service"
            )

    async def _run(self) -> None:
        try:
            while True:
                if not self._queue.depth:
                    if self._draining:
                        return
                    self._wakeup.clear()
                    await self._wakeup.wait()
                    continue
                # Let submitters scheduled in this loop iteration join the
                # forming batch (continuous batching's coalescing window).
                if self._batch_window > 0:
                    await asyncio.sleep(self._batch_window)
                else:
                    await asyncio.sleep(0)
                self._serve_cycle()
        finally:
            for request in self._queue.drain_all():
                self._fail(request, ServiceClosed("service stopped"))

    def _serve_cycle(self) -> None:
        """One scheduling cycle: shed, fast-path, then execute one batch."""
        now = self.clock.now()
        for request in self._queue.expire(now):
            self.metrics.shed_deadline += 1
            self._fail(
                request,
                DeadlineExceeded(
                    f"deadline expired after {now - request.admitted_at:.6f}s "
                    f"in queue"
                ),
            )
        # Dequeue-time cache fast path: an earlier batch may have answered a
        # statement that was already queued; serve those hits now so they do
        # not occupy batch slots.
        for request in self._queue.snapshot():
            try:
                cached = self.federation.try_cached(
                    request.statement, issuer=request.issuer
                )
            except Exception as refusal:  # e.g. quota exhausted since admission
                self._queue.remove(request)
                self.metrics.refused += 1
                self._fail(request, refusal)
                continue
            if cached is not None:
                self._queue.remove(request)
                self.metrics.cache_fast_hits += 1
                self._complete(request, cached, now)
        batch = self._queue.next_batch(self._max_batch)
        if not batch:
            return
        self.metrics.batches += 1
        self.metrics.batched_queries += len(batch)
        issuer = batch[0].issuer
        traces: "list[TraceContext | None] | None" = None
        if self._tracing:
            # Queueing ends here: rotate each request's queue span into a
            # batch span, and hand the execution layer a context whose time
            # offset places transport-clocked protocol spans (which start at
            # zero within the batch) onto the service timeline.
            batch_index = self.metrics.batches
            traces = []
            for request in batch:
                if request.trace is None:
                    traces.append(None)
                    continue
                if request.queue_span is not None:
                    self.tracer.close_span(request.queue_span, at=now)
                    request.queue_span = None
                request.batch_span = self.tracer.open_span(
                    request.trace,
                    "batch",
                    at=now,
                    kind="service",
                    attrs={"batch_index": batch_index, "batch_size": len(batch)},
                )
                traces.append(request.batch_span.with_offset(now))
        self._inflight_cost = sum(
            request.plan.estimate.simulated_seconds
            for request in batch
            if isinstance(request.plan, Plan)
        )
        try:
            try:
                settled = self.federation.execute_many_settled(
                    [request.statement for request in batch],
                    issuer=issuer,
                    traces=traces,
                    plans=[
                        request.plan if isinstance(request.plan, Plan) else None
                        for request in batch
                    ],
                )
            except Exception as exc:
                # Batch-level failure (e.g. an unrecoverable ring crash):
                # every request in the batch fails with a typed,
                # attributable error.
                for request in batch:
                    self.metrics.failed += 1
                    self._fail(
                        request,
                        QueryFailed(f"batch execution failed: {exc}", cause=exc),
                    )
                return
            # Advance simulated time by the batch's makespan: interleaved
            # queries complete together at the slowest query's finish line.
            self.clock.advance(
                max(
                    (
                        outcome.simulated_seconds
                        for outcome in settled
                        if isinstance(outcome, QueryOutcome)
                    ),
                    default=0.0,
                )
            )
            now = self.clock.now()
            for request, outcome in zip(batch, settled):
                if isinstance(outcome, QueryRefused):
                    self.metrics.refused += 1
                    self._fail(request, outcome.error)
                else:
                    self._record_accuracy(request, outcome)
                    self._complete(request, outcome, now)
        finally:
            self._inflight_cost = 0.0

    def _record_accuracy(
        self, request: QueuedRequest, outcome: QueryOutcome
    ) -> None:
        """Ledger one planned, executed statement's predicted-vs-actual.

        Cache hits are skipped (nothing ran, nothing to audit); measured
        LoP comes from the protocol trace when the execution kept one.
        """
        plan = request.plan
        if not isinstance(plan, Plan) or outcome.cached:
            return
        measured_lop = (
            average_lop(outcome.trace) if outcome.trace is not None else None
        )
        self.accuracy.record(
            plan,
            rounds=outcome.rounds,
            messages=outcome.messages,
            simulated_seconds=outcome.simulated_seconds,
            measured_lop=measured_lop,
        )
        if request.batch_span is not None:
            est = plan.estimate
            self.tracer.event(
                request.batch_span,
                "plan-accuracy",
                at=self.clock.now(),
                kind="service",
                attrs={
                    "predicted_rounds": est.rounds,
                    "actual_rounds": outcome.rounds,
                    "predicted_messages": est.messages,
                    "actual_messages": outcome.messages,
                    "predicted_seconds": est.simulated_seconds,
                    "actual_seconds": outcome.simulated_seconds,
                },
            )

    # -- resolution ------------------------------------------------------------

    def _complete(
        self, request: QueuedRequest, outcome: QueryOutcome, now: float
    ) -> None:
        self.metrics.completed += 1
        self.metrics.latency.record(max(0.0, now - request.admitted_at))
        self._trace_finish(
            request, now, {"outcome": "completed", "cached": outcome.cached}
        )
        if not request.future.done():
            request.future.set_result(outcome)

    def _fail(self, request: QueuedRequest, error: BaseException) -> None:
        self._trace_finish(
            request,
            self.clock.now(),
            {"outcome": "failed", "error": type(error).__name__},
        )
        if not request.future.done():
            request.future.set_exception(error)


__all__ = ["QueryService"]
