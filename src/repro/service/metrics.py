"""Service observability: counters, gauges and latency percentiles.

The serving layer's operational questions — is the queue backing up, how full
are the batches, what latency do clients see, how much load is being shed,
how often does the cache absorb a query — all answer from one
:class:`ServiceMetrics` record.  Snapshots export as a plain dict (embeddable
in benchmark JSON) or a JSONL line (appendable time series for dashboards).

Latencies use :class:`repro.experiments.telemetry.LatencyHistogram`, so under
the gateway's seeded simulated clock the p50/p95/p99 figures are bit-stable
across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..experiments.telemetry import LatencyHistogram


@dataclass
class ServiceMetrics:
    """Counters for one :class:`~repro.service.gateway.QueryService`."""

    #: Batch capacity, for the occupancy ratio.
    batch_capacity: int = 1

    # -- admission ----------------------------------------------------------
    submitted: int = 0
    admitted: int = 0
    shed_overload: int = 0
    shed_rate_limited: int = 0
    shed_deadline: int = 0
    shed_cost: int = 0  # estimated cost over budget, economy replan failed
    downgraded: int = 0  # admitted after an economy replan under cost pressure
    plan_infeasible: int = 0  # SLO no configuration can satisfy (typed refusal)

    # -- completion ---------------------------------------------------------
    completed: int = 0
    refused: int = 0  # per-query federation refusals (policy/budget/parse)
    failed: int = 0  # batch-level execution failures
    cache_fast_hits: int = 0  # served at admission/dequeue without a slot

    # -- batching -----------------------------------------------------------
    batches: int = 0
    batched_queries: int = 0
    queue_high_water: int = 0

    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    # -- derived ------------------------------------------------------------

    @property
    def shed(self) -> int:
        """Every request rejected by admission control or deadline expiry."""
        return (
            self.shed_overload
            + self.shed_rate_limited
            + self.shed_deadline
            + self.shed_cost
        )

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests that were shed."""
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def batch_occupancy(self) -> float:
        """Mean fraction of batch capacity actually used."""
        if not self.batches:
            return 0.0
        return self.batched_queries / (self.batches * max(1, self.batch_capacity))

    def snapshot(self, *, queue_depth: int = 0) -> dict[str, object]:
        """One flat, JSON-serializable view of the service's state."""
        quantiles = self.latency.summary()
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "refused": self.refused,
            "failed": self.failed,
            "cache_fast_hits": self.cache_fast_hits,
            "shed_overload": self.shed_overload,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_deadline": self.shed_deadline,
            "shed_cost": self.shed_cost,
            "downgraded": self.downgraded,
            "plan_infeasible": self.plan_infeasible,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 6),
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "batch_occupancy": round(self.batch_occupancy, 6),
            "queue_depth": queue_depth,
            "queue_high_water": self.queue_high_water,
            "latency_mean_s": round(quantiles["mean"], 9),
            "latency_p50_s": round(quantiles["p50"], 9),
            "latency_p95_s": round(quantiles["p95"], 9),
            "latency_p99_s": round(quantiles["p99"], 9),
            "latency_max_s": round(quantiles["max"], 9),
        }

    def jsonl_line(self, *, queue_depth: int = 0) -> str:
        """The snapshot as one JSONL record (stable key order)."""
        return json.dumps(self.snapshot(queue_depth=queue_depth), sort_keys=True)


__all__ = ["ServiceMetrics"]
