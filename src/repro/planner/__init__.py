"""Cost- and privacy-aware query planning (ISSUE 8).

Turns declarative per-statement SLOs — ``... WITH SLO(epsilon=1e-4,
max_lop=0.3, deadline=0.05)`` — into concrete protocol / parameter /
backend choices, using the paper's own analysis (Equations 4–6) composed
with measured calibration constants.  See ``docs/PLANNER.md``.
"""

from .accuracy import PredictionLedger
from .cost import NAIVE, PROBABILISTIC, SECURE_SUM, Calibration, CostEstimate, CostModel
from .errors import PlanInfeasible
from .plan import BATCH_KERNEL, ECONOMY, MODES, QUALITY, SESSION, Plan
from .planner import DEFAULT_EPSILON, QueryPlanner
from .spec import QuerySpec, Slo, SloError, parse_spec

__all__ = [
    "BATCH_KERNEL",
    "Calibration",
    "CostEstimate",
    "CostModel",
    "DEFAULT_EPSILON",
    "ECONOMY",
    "MODES",
    "NAIVE",
    "PROBABILISTIC",
    "Plan",
    "PlanInfeasible",
    "PredictionLedger",
    "QUALITY",
    "QuerySpec",
    "QueryPlanner",
    "SECURE_SUM",
    "SESSION",
    "Slo",
    "SloError",
    "parse_spec",
]
