"""The plan enumerator and chooser.

:class:`QueryPlanner` turns a parsed :class:`~repro.planner.spec.QuerySpec`
into one :class:`~repro.planner.plan.Plan`:

1. **Enumerate** candidate configurations.  For ranking statements that is
   the Figure 9 (p0, d) grid, plus the round-budget optimum from
   :func:`~repro.analysis.optimization.optimal_parameters` when the SLO
   implies a budget, plus — only when the SLO explicitly permits it — the
   single-round naive protocol.  Additive statements have exactly one
   strategy (mask-blinded secure sums), so enumeration degenerates.
2. **Filter** by feasibility against the declared SLO: Equation 4 rounds
   against ``max_rounds``, the Equation 6 expected-LoP bound against
   ``max_lop``, predicted simulated seconds against ``deadline``.
3. **Choose** deterministically.  ``quality`` (the default) minimizes
   ``(expected LoP, messages)``; ``economy`` — the gateway's downgrade
   objective under cost pressure — minimizes ``(messages, expected LoP)``.
   Ties break on ``(-p0, -d)`` so equal-cost plans prefer the paper's
   better-privacy corner, making the choice a pure function of
   (statement, SLO, parties, calibration).

The naive protocol is never chosen silently: it is enumerated only when
the SLO forces ``protocol=naive`` or declares a ``max_lop`` privacy budget
that its Equation 5 exposure fits.  An undeclared budget is not consent to
the worst-case protocol.

When nothing survives the filter, :class:`PlanInfeasible` is raised with
one deterministic reason line per rejected candidate family — that error
means *relax the SLO*, not *retry later*.
"""

from __future__ import annotations

import math

from ..analysis.optimization import OptimizationError, optimal_parameters
from ..core.driver import RunConfig
from ..core.kernel import kernel_refusal
from ..core.params import ProtocolParams
from ..federation.sql import ADDITIVE_AGGREGATES
from .cost import NAIVE, PROBABILISTIC, Calibration, CostEstimate, CostModel
from .errors import PlanInfeasible
from .plan import BATCH_KERNEL, MODES, QUALITY, SESSION, Plan
from .spec import QuerySpec, Slo, parse_spec

#: The paper's default error bound, used when the SLO declares none.
DEFAULT_EPSILON = 1e-3

#: The Figure 9 enumeration grid (matches ``analysis.optimization``'s
#: pareto grid so plans land on studied operating points).
P0_GRID = (0.25, 0.5, 0.75, 1.0)
D_GRID = (0.125, 0.25, 0.5, 0.75)


class QueryPlanner:
    """Choose protocol, parameters, and backend for dialect statements.

    Parameters
    ----------
    calibration:
        Measured per-unit cost constants; defaults to the reference
        container's.  See ``docs/PLANNER.md`` for the refit workflow.
    base_config:
        The :class:`RunConfig` the executing federation will derive
        per-query configs from.  The planner only inspects its transport
        features (via :func:`kernel_refusal`) to decide whether the batch
        kernel is available; a default config means "transport-free".
    """

    def __init__(
        self,
        calibration: Calibration | None = None,
        base_config: RunConfig | None = None,
    ) -> None:
        self.cost_model = CostModel(calibration)
        self.base_config = base_config if base_config is not None else RunConfig()
        self._kernel_refusal = kernel_refusal(self.base_config)

    # -- public API --------------------------------------------------------

    def plan(
        self,
        spec: QuerySpec | str,
        *,
        parties: int,
        mode: str = QUALITY,
    ) -> Plan:
        """The chosen :class:`Plan` for ``spec`` over ``parties`` nodes."""
        if isinstance(spec, str):
            spec = parse_spec(spec)
        if mode not in MODES:
            raise ValueError(f"unknown planner mode {mode!r}; expected {MODES}")
        statement = spec.statement
        if parties < 3:
            raise PlanInfeasible(
                f"the protocols require at least 3 parties, got {parties}",
                statement=statement.text,
                reasons=(f"federation has {parties} parties; the ring "
                         "protocols need n >= 3",),
            )
        if statement.operation in ADDITIVE_AGGREGATES:
            return self._plan_additive(spec, parties=parties, mode=mode)
        return self._plan_ranking(spec, parties=parties, mode=mode)

    # -- additive ----------------------------------------------------------

    def _plan_additive(self, spec: QuerySpec, *, parties: int, mode: str) -> Plan:
        statement, slo = spec.statement, spec.slo
        reasons: list[str] = []
        if slo.protocol is not None:
            reasons.append(
                f"{statement.operation} statements run mask-blinded secure "
                f"sums; protocol={slo.protocol} does not apply"
            )
        if slo.epsilon is not None:
            reasons.append(
                "secure sums are exact; an epsilon target does not apply"
            )
        if slo.backend == "kernel":
            reasons.append("secure sums have no batch-kernel path")
        if reasons:
            raise PlanInfeasible(
                f"no secure-sum plan satisfies the SLO for "
                f"{statement.text!r}",
                statement=statement.text,
                reasons=tuple(reasons),
            )
        estimate = self.cost_model.additive_estimate(
            n_parties=parties, operation=statement.operation
        )
        # Secure sums never advance the service clock and leak nothing the
        # masks don't hide, so any deadline / max_lop / max_rounds budget
        # is trivially satisfied.
        return Plan(
            statement=statement.text,
            operation=statement.operation,
            protocol=estimate.protocol,
            backend=SESSION,
            params=None,
            estimate=estimate,
            slo=slo,
            mode=mode,
            candidates_considered=1,
        )

    # -- ranking -----------------------------------------------------------

    def _plan_ranking(self, spec: QuerySpec, *, parties: int, mode: str) -> Plan:
        statement, slo = spec.statement, spec.slo
        epsilon = slo.epsilon if slo.epsilon is not None else DEFAULT_EPSILON
        round_budget = self._round_budget(slo, parties)
        reasons: list[str] = []
        candidates: list[tuple[str, ProtocolParams | None, CostEstimate]] = []

        if slo.protocol != NAIVE:
            for p0, d in self._probabilistic_grid(epsilon, round_budget):
                params = ProtocolParams.with_randomization(p0, d, epsilon=epsilon)
                estimate = self.cost_model.ranking_estimate(
                    n_parties=parties,
                    k=statement.k,
                    protocol=PROBABILISTIC,
                    params=params,
                )
                verdict = self._feasibility(estimate, slo, round_budget)
                if verdict is None:
                    candidates.append((PROBABILISTIC, params, estimate))
                else:
                    reasons.append(
                        f"probabilistic p0={p0:g} d={d:g}: {verdict}"
                    )

        naive_allowed = slo.protocol == NAIVE or slo.max_lop is not None
        if slo.protocol != PROBABILISTIC:
            estimate = self.cost_model.ranking_estimate(
                n_parties=parties,
                k=statement.k,
                protocol=NAIVE,
                params=ProtocolParams.paper_defaults(),
            )
            if not naive_allowed:
                reasons.append(
                    "naive: only eligible when the SLO forces protocol=naive "
                    "or declares a max_lop its exposure fits"
                )
            else:
                verdict = self._feasibility(estimate, slo, round_budget)
                if verdict is None:
                    candidates.append((NAIVE, None, estimate))
                else:
                    reasons.append(f"naive: {verdict}")

        if not candidates:
            raise PlanInfeasible(
                f"no plan satisfies the SLO ({slo.describe()}) for "
                f"{statement.text!r}",
                statement=statement.text,
                reasons=tuple(reasons),
            )

        considered = len(candidates) + len(reasons)
        protocol, params, estimate = min(
            candidates, key=lambda cand: self._rank_key(cand, mode)
        )
        if protocol == NAIVE:
            # The executing config still needs valid params; the session
            # ignores the schedule for naive runs but validates rounds.
            params = ProtocolParams.paper_defaults(rounds=1)
        return Plan(
            statement=statement.text,
            operation=statement.operation,
            protocol=protocol,
            backend=self._backend(slo, statement.text),
            params=params,
            estimate=estimate,
            slo=slo,
            mode=mode,
            candidates_considered=considered,
        )

    # -- internals ---------------------------------------------------------

    def _probabilistic_grid(
        self, epsilon: float, round_budget: int | None
    ) -> list[tuple[float, float]]:
        """The (p0, d) candidates: the Figure 9 grid + the budget optimum."""
        grid = [(p0, d) for p0 in P0_GRID for d in D_GRID]
        if round_budget is not None and round_budget >= 1:
            try:
                best = optimal_parameters(epsilon, round_budget)
            except OptimizationError:
                pass  # the grid's own reasons will explain infeasibility
            else:
                pair = (best.p0, best.d)
                if pair not in grid:
                    grid.append(pair)
        return grid

    def _round_budget(self, slo: Slo, parties: int) -> int | None:
        """The tightest round budget the SLO implies, if any.

        A simulated-seconds deadline bounds messages (the token is
        sequential: ``seconds = n * (rounds + 1) * hop``), hence rounds.
        """
        budgets: list[int] = []
        if slo.max_rounds is not None:
            budgets.append(slo.max_rounds)
        if slo.deadline is not None:
            hop = self.cost_model.calibration.hop_seconds
            budgets.append(int(math.floor(slo.deadline / (parties * hop))) - 1)
        return min(budgets) if budgets else None

    @staticmethod
    def _feasibility(
        estimate: CostEstimate, slo: Slo, round_budget: int | None
    ) -> str | None:
        """Why ``estimate`` violates ``slo``; ``None`` when feasible."""
        if round_budget is not None and estimate.rounds > round_budget:
            return (
                f"needs {estimate.rounds} rounds, budget is "
                f"{max(round_budget, 0)}"
            )
        if slo.max_lop is not None and estimate.expected_lop > slo.max_lop:
            return (
                f"expected LoP bound {estimate.expected_lop:.4f} exceeds "
                f"max_lop {slo.max_lop:g}"
            )
        if (
            slo.deadline is not None
            and estimate.simulated_seconds > slo.deadline
        ):
            return (
                f"predicted {estimate.simulated_seconds:.4f}s exceeds "
                f"deadline {slo.deadline:g}s"
            )
        return None

    @staticmethod
    def _rank_key(
        candidate: tuple[str, ProtocolParams | None, CostEstimate], mode: str
    ) -> tuple:
        protocol, params, estimate = candidate
        schedule = getattr(params, "schedule", None)
        p0 = getattr(schedule, "p0", 0.0) or 0.0
        d = getattr(schedule, "d", 0.0) or 0.0
        if mode == QUALITY:
            return (estimate.expected_lop, estimate.messages, -p0, -d)
        return (estimate.messages, estimate.expected_lop, -p0, -d)

    def _backend(self, slo: Slo, statement_text: str) -> str:
        if slo.backend == "session":
            return SESSION
        if slo.backend == "kernel":
            if self._kernel_refusal:
                raise PlanInfeasible(
                    f"the batch kernel cannot run this federation's "
                    f"configuration: {self._kernel_refusal}",
                    statement=statement_text,
                    reasons=(f"backend=kernel: {self._kernel_refusal}",),
                )
            return BATCH_KERNEL
        return SESSION if self._kernel_refusal else BATCH_KERNEL


__all__ = ["DEFAULT_EPSILON", "D_GRID", "P0_GRID", "QueryPlanner"]
