"""The SLO clause: declarative per-statement service objectives.

Extends the federation dialect (:mod:`repro.federation.sql`) with an
optional suffix::

    SELECT TOP 5 revenue FROM sales WITH SLO(epsilon=1e-4, max_lop=0.3)
    SELECT MAX(price) FROM lineitem WITH SLO(deadline=0.05, max_rounds=6)
    SELECT SUM(volume) FROM trades WITH SLO(deadline=1.0)

Supported keys (all optional; a bare statement means "no objectives"):

``epsilon``
    Target error bound of Equation 3/4: the protocol must reach precision
    ``>= 1 - epsilon``.  In ``(0, 1)``; defaults to the paper's ``1e-3``.
``precision``
    Sugar for ``epsilon = 1 - precision``; mutually exclusive with it.
``max_lop``
    Privacy budget: the Equation 6 *expected* loss-of-privacy bound of the
    chosen parameters must not exceed this.  In ``(0, 1]``.
``deadline``
    Latency budget in simulated seconds for the protocol run itself
    (queueing is the gateway's concern, not the plan's).
``max_rounds``
    Round budget (Equation 4 output must fit).
``protocol``
    Force ``probabilistic`` or ``naive`` instead of letting the planner
    choose.
``backend``
    Force the execution substrate: ``session`` (full transport
    simulation), ``kernel`` (vectorized batch kernel), or ``auto``.
``dp_epsilon``
    Differential-privacy budget for this statement's *release*: the
    answer is perturbed by a mechanism calibrated to ``dp_epsilon``
    (see :mod:`repro.privacy.dp`).  Finite and ``> 0``.  Distinct from
    ``epsilon``, which remains the Equation 3/4 precision bound.
``dp_delta``
    The ``delta`` of an (epsilon, delta) differential-privacy budget.
    In ``[0, 1)``; requires ``dp_epsilon``; omitted means ``0`` (pure
    epsilon-DP).

The clause is parsed *with* the statement: :func:`parse_spec` accepts any
dialect statement with or without a suffix and returns a
:class:`QuerySpec` — the parsed statement plus its :class:`Slo`.  Errors
raise :class:`SloError`, a subclass of the dialect's ``SqlError``, so
every existing refusal path classifies them correctly.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, fields

from ..federation.sql import FederatedStatement, SqlError, parse

#: The suffix shape: ``<statement> WITH SLO(key=value, ...)``.
_SLO_RE = re.compile(
    r"^(?P<body>.+?)\s+WITH\s+SLO\s*\(\s*(?P<clauses>[^)]*)\)\s*;?\s*$",
    re.IGNORECASE,
)
_CLAUSE_RE = re.compile(r"^\s*(?P<key>[A-Za-z_]+)\s*=\s*(?P<value>[^\s,]+)\s*$")

PROTOCOL_CHOICES = ("probabilistic", "naive")
BACKEND_CHOICES = ("auto", "session", "kernel")


class SloError(SqlError):
    """Raised for malformed or contradictory SLO clauses."""


@dataclass(frozen=True)
class Slo:
    """Declared objectives for one statement; ``None`` means unconstrained."""

    epsilon: float | None = None
    max_lop: float | None = None
    deadline: float | None = None
    max_rounds: int | None = None
    protocol: str | None = None
    backend: str | None = None
    dp_epsilon: float | None = None
    dp_delta: float | None = None

    def __post_init__(self) -> None:
        if self.epsilon is not None and not 0.0 < self.epsilon < 1.0:
            raise SloError(f"SLO epsilon must be in (0, 1), got {self.epsilon}")
        if self.max_lop is not None and not 0.0 < self.max_lop <= 1.0:
            raise SloError(f"SLO max_lop must be in (0, 1], got {self.max_lop}")
        if self.deadline is not None and self.deadline <= 0.0:
            raise SloError(f"SLO deadline must be positive, got {self.deadline}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise SloError(f"SLO max_rounds must be >= 1, got {self.max_rounds}")
        if self.protocol is not None and self.protocol not in PROTOCOL_CHOICES:
            raise SloError(
                f"SLO protocol must be one of {PROTOCOL_CHOICES}, "
                f"got {self.protocol!r}"
            )
        if self.backend is not None and self.backend not in BACKEND_CHOICES:
            raise SloError(
                f"SLO backend must be one of {BACKEND_CHOICES}, "
                f"got {self.backend!r}"
            )
        if self.dp_epsilon is not None and not (
            math.isfinite(self.dp_epsilon) and self.dp_epsilon > 0.0
        ):
            raise SloError(
                f"SLO dp_epsilon must be finite and > 0, got {self.dp_epsilon}"
            )
        if self.dp_delta is not None:
            if self.dp_epsilon is None:
                raise SloError("SLO dp_delta requires dp_epsilon")
            if not 0.0 <= self.dp_delta < 1.0:
                raise SloError(
                    f"SLO dp_delta must be in [0, 1), got {self.dp_delta}"
                )

    @property
    def has_dp(self) -> bool:
        """True when the statement requests a differentially-private release."""
        return self.dp_epsilon is not None

    @property
    def is_trivial(self) -> bool:
        """True when no objective is declared (a bare dialect statement)."""
        return all(getattr(self, f.name) is None for f in fields(self))

    def describe(self) -> str:
        """Canonical one-line rendering (deterministic; used by explain)."""
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) is not None
        ]
        return ", ".join(parts) if parts else "(none)"


@dataclass(frozen=True)
class QuerySpec:
    """A parsed statement plus its SLO.

    ``statement.text`` is the *bare* dialect statement (the cache and audit
    canonical form); ``text`` preserves the full submitted text including
    the SLO clause.
    """

    statement: FederatedStatement
    slo: Slo
    text: str


def _parse_value(key: str, raw: str) -> object:
    if key == "max_rounds":
        try:
            return int(raw)
        except ValueError:
            raise SloError(f"SLO {key} expects an integer, got {raw!r}") from None
    if key in ("epsilon", "precision", "max_lop", "deadline", "dp_epsilon", "dp_delta"):
        try:
            return float(raw)
        except ValueError:
            raise SloError(f"SLO {key} expects a number, got {raw!r}") from None
    return raw.lower()


def parse_slo_clauses(clauses: str) -> Slo:
    """Parse the inside of ``SLO(...)`` into an :class:`Slo`."""
    values: dict[str, object] = {}
    stripped = clauses.strip()
    parts = [p for p in stripped.split(",")] if stripped else []
    for part in parts:
        match = _CLAUSE_RE.match(part)
        if not match:
            raise SloError(
                f"malformed SLO clause {part.strip()!r}; expected key=value"
            )
        key = match.group("key").lower()
        if key not in (
            "epsilon",
            "precision",
            "max_lop",
            "deadline",
            "max_rounds",
            "protocol",
            "backend",
            "dp_epsilon",
            "dp_delta",
        ):
            raise SloError(f"unknown SLO key {key!r}")
        if key in values or (key == "precision" and "epsilon" in values) or (
            key == "epsilon" and "precision" in values
        ):
            raise SloError(f"duplicate or conflicting SLO key {key!r}")
        values[key] = _parse_value(key, match.group("value"))
    precision = values.pop("precision", None)
    if precision is not None:
        if not 0.0 < float(precision) < 1.0:  # type: ignore[arg-type]
            raise SloError(f"SLO precision must be in (0, 1), got {precision}")
        values["epsilon"] = 1.0 - float(precision)  # type: ignore[arg-type]
    return Slo(**values)  # type: ignore[arg-type]


def parse_spec(text: str) -> QuerySpec:
    """Parse a dialect statement with an optional ``WITH SLO(...)`` suffix."""
    if not text or not text.strip():
        raise SqlError("empty statement")
    match = _SLO_RE.match(text)
    if match:
        statement = parse(match.group("body"))
        slo = parse_slo_clauses(match.group("clauses"))
        return QuerySpec(statement=statement, slo=slo, text=text.strip())
    return QuerySpec(statement=parse(text), slo=Slo(), text=text.strip())


#: SLO keys owned by the differential-privacy layer, not the planner.
DP_SLO_KEYS = ("dp_epsilon", "dp_delta")


def strip_dp(spec: QuerySpec) -> str:
    """Rebuild ``spec``'s text with the DP keys removed.

    The DP layer perturbs the answer of an *inner* statement that carries
    every remaining objective (precision, deadline, protocol, ...); this
    returns that inner statement's canonical text.  A spec whose SLO holds
    nothing but DP keys collapses to the bare dialect statement.
    """
    kept = [
        (f.name, getattr(spec.slo, f.name))
        for f in fields(spec.slo)
        if f.name not in DP_SLO_KEYS and getattr(spec.slo, f.name) is not None
    ]
    if not kept:
        return spec.statement.text
    clauses = ", ".join(f"{name}={value}" for name, value in kept)
    return f"{spec.statement.text} WITH SLO({clauses})"


__all__ = [
    "BACKEND_CHOICES",
    "DP_SLO_KEYS",
    "PROTOCOL_CHOICES",
    "QuerySpec",
    "Slo",
    "SloError",
    "parse_slo_clauses",
    "parse_spec",
    "strip_dp",
]
