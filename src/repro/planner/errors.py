"""Typed planner failures.

The planner's refusal is different in kind from the service's load shedding:
``Overloaded`` means *retry later*; :class:`PlanInfeasible` means *no
protocol configuration this library knows can satisfy the declared SLO* —
retrying will never help, the caller must relax the SLO.  Gateways and the
federation's settled batch path surface it as its own type (alongside
``QueryRefused``) so clients can tell the two apart.

It subclasses :class:`ValueError` so pre-planner callers that caught broad
``ValueError`` (the dialect's ``SqlError`` idiom) keep working.
"""

from __future__ import annotations


class PlanInfeasible(ValueError):
    """No candidate plan satisfies the statement's SLO.

    ``statement`` is the offending statement text; ``reasons`` lists, one
    line per rejected candidate family, why each was rejected — the
    planner builds them deterministically, so the message is stable for a
    given (statement, SLO, federation size).
    """

    def __init__(
        self,
        message: str,
        *,
        statement: str | None = None,
        reasons: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.statement = statement
        self.reasons = reasons


__all__ = ["PlanInfeasible"]
