"""Predicted-vs-actual accounting: the cost model's audit trail.

Every plan the gateway executes gets recorded here against the measured
outcome.  :meth:`PredictionLedger.drift` is relative L1 error
(``sum |predicted - actual| / sum actual``) per metric — the quantity the
``planner-smoke`` CI job bounds — and :meth:`export` publishes the whole
ledger through a :class:`~repro.observability.metrics.MetricsRegistry` so
deployed planners are continuously auditable.

The LoP prediction is a *bound on the expectation* (Equation 6), not a
point estimate: a single run's measured average LoP is a finite-sample
estimate with real variance and may legitimately exceed it.  The ledger
therefore aggregates — mean measured LoP vs mean predicted bound across
all recorded runs — and :attr:`PredictionLedger.lop_bound_exceeded` flags
only an aggregate breach, the signal that would actually indict the model.

The audit is further scoped to single-extraction plans (``k == 1``: MAX,
MIN, TOP/BOTTOM 1).  Equation 6 bounds one data item's exposure, while the
Section 5.3 estimator scores each node's *peak* per-round exposure across
all k items it participates with — a maximum statistic the per-item
expectation does not dominate for k > 1 (measured: ~0.14 vs a 0.008 bound
at k=5, yet 0.005 vs the same bound at k=1).  Multi-value runs are still
recorded for the point metrics; their measured LoP is simply not a quantity
Eq. 6 claims to bound, so it never enters the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .plan import Plan

#: Metrics with point predictions (drift is meaningful for these).
POINT_METRICS = ("rounds", "messages", "latency")

#: Slack on the aggregate Eq. 6 comparison (floating-point headroom).
LOP_TOLERANCE = 1e-9


@dataclass
class _Accumulator:
    predictions: int = 0
    predicted_sum: float = 0.0
    actual_sum: float = 0.0
    abs_error_sum: float = 0.0

    def record(self, predicted: float, actual: float) -> None:
        self.predictions += 1
        self.predicted_sum += predicted
        self.actual_sum += actual
        self.abs_error_sum += abs(predicted - actual)

    @property
    def drift(self) -> float:
        """Relative L1 error; 0.0 before any prediction lands."""
        if self.actual_sum <= 0.0:
            return 0.0 if self.abs_error_sum == 0.0 else float("inf")
        return self.abs_error_sum / self.actual_sum


@dataclass
class PredictionLedger:
    """Accumulated predicted-vs-actual error across executed plans."""

    _metrics: dict[str, _Accumulator] = field(
        default_factory=lambda: {name: _Accumulator() for name in POINT_METRICS}
    )
    #: Plans recorded (cache hits are not recorded — nothing ran).
    recorded: int = 0
    #: Measured-LoP observations compared against the Eq. 6 bound
    #: (single-extraction runs only; see the module docstring).
    lop_checked: int = 0
    #: Sum of measured average LoP across checked runs.
    lop_measured_sum: float = 0.0
    #: Sum of the predicted expected-LoP bounds across checked runs.
    lop_bound_sum: float = 0.0
    _exported_recorded: int = 0

    def record(
        self,
        plan: "Plan",
        *,
        rounds: int,
        messages: int,
        simulated_seconds: float,
        measured_lop: float | None = None,
    ) -> None:
        """Record one executed plan against its measured outcome."""
        est = plan.estimate
        self._metrics["rounds"].record(float(est.rounds), float(rounds))
        self._metrics["messages"].record(float(est.messages), float(messages))
        self._metrics["latency"].record(
            est.simulated_seconds, simulated_seconds
        )
        self.recorded += 1
        if measured_lop is not None and est.extracted_values == 1:
            self.lop_checked += 1
            self.lop_measured_sum += measured_lop
            self.lop_bound_sum += est.expected_lop

    def drift(self, metric: str) -> float:
        """Relative L1 error for one of :data:`POINT_METRICS`."""
        return self._metrics[metric].drift

    @property
    def lop_mean_measured(self) -> float:
        return self.lop_measured_sum / self.lop_checked if self.lop_checked else 0.0

    @property
    def lop_mean_bound(self) -> float:
        return self.lop_bound_sum / self.lop_checked if self.lop_checked else 0.0

    @property
    def lop_bound_exceeded(self) -> bool:
        """True when the aggregate mean measured LoP breaches the mean bound."""
        return self.lop_measured_sum > self.lop_bound_sum + LOP_TOLERANCE * max(
            1, self.lop_checked
        )

    def snapshot(self) -> dict[str, Any]:
        """A flat, JSON-serializable view of the ledger."""
        out: dict[str, Any] = {
            "recorded": self.recorded,
            "lop_checked": self.lop_checked,
            "lop_mean_measured": self.lop_mean_measured,
            "lop_mean_bound": self.lop_mean_bound,
            "lop_bound_exceeded": self.lop_bound_exceeded,
        }
        for name, acc in self._metrics.items():
            out[f"{name}_predicted"] = acc.predicted_sum
            out[f"{name}_actual"] = acc.actual_sum
            out[f"{name}_drift"] = acc.drift
        return out

    def export(self, registry: Any) -> None:
        """Publish the ledger through a MetricsRegistry (duck-typed).

        Counters are incremented by the delta since the last export, so
        repeated exports to the same registry stay truthful.
        """
        predictions = registry.counter(
            "repro_planner_predictions_total",
            "Executed plans recorded against measured outcomes",
        )
        predictions.inc(self.recorded - self._exported_recorded)
        self._exported_recorded = self.recorded
        drift = registry.gauge(
            "repro_planner_drift",
            "Relative L1 error of planner predictions vs measured outcomes",
            label_names=("metric",),
        )
        for name, acc in self._metrics.items():
            drift.set(acc.drift, labels={"metric": name})
        lop = registry.gauge(
            "repro_planner_lop",
            "Mean measured average LoP vs the mean predicted Eq. 6 bound",
            label_names=("kind",),
        )
        lop.set(self.lop_mean_measured, labels={"kind": "measured_mean"})
        lop.set(self.lop_mean_bound, labels={"kind": "bound_mean"})
        registry.gauge(
            "repro_planner_lop_bound_exceeded",
            "1 when the aggregate measured LoP breaches the predicted bound",
        ).set(1.0 if self.lop_bound_exceeded else 0.0)


__all__ = ["LOP_TOLERANCE", "POINT_METRICS", "PredictionLedger"]
