"""The planner's cost model: analytic formulas times measured constants.

Everything the paper's analysis predicts, it predicts *exactly* on this
codebase, because the simulator implements the very model the analysis
assumes:

* **rounds** — Equation 4 (:func:`repro.core.params.minimum_rounds`),
  independent of the federation size;
* **messages** — one token hop per node per round plus the termination
  round: ``n * (rounds + 1)`` (Section 4.2, confirmed by the transport's
  per-message accounting and the kernel's closed-form reconstruction);
* **simulated latency** — the token is sequential, so simulated seconds
  are exactly ``messages x per-hop latency`` under the default constant
  latency model;
* **expected LoP** — the Equation 6 bound for the probabilistic protocol,
  the Equation 5 closed form for the naive one.

Only two quantities need *measured* calibration constants, because they
depend on encodings and hardware rather than on the protocol: bytes per
message (wire framing + k encoded values) and wall-clock seconds per
message (MT19937 seeding dominates; see ROADMAP).  :class:`Calibration`
carries defaults measured on the reference container and can be refit from
any executed :class:`~repro.core.results.ProtocolResult` via
:meth:`Calibration.refit` — the calibration workflow documented in
``docs/PLANNER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..analysis.privacy_bounds import expected_lop_bound, naive_average_lop
from ..core.params import ProtocolParams

#: Protocol names a plan can carry (driver names, plus the additive path).
PROBABILISTIC = "probabilistic"
NAIVE = "naive"
SECURE_SUM = "secure-sum"


@dataclass(frozen=True)
class Calibration:
    """Measured per-unit constants composing the analytic cost formulas.

    Defaults were measured on the in-memory transport with the default
    constant-latency model; :meth:`refit` re-derives the byte constants
    from a real run's traffic accounting, and ``wall_seconds_per_message``
    can be refit from any wall-clocked run (e.g. the telemetry collector's
    per-trial seconds divided by the trial's message count).
    """

    #: Per-hop simulated latency (the transport's ``constant_latency()``).
    hop_seconds: float = 0.001
    #: Wire bytes per token message, excluding the k-vector payload.
    message_overhead_bytes: float = 79.0
    #: Wire bytes per encoded k-vector entry.
    bytes_per_value: float = 7.0
    #: Bytes per secure-sum message (scalar + mask magnitude).
    additive_message_bytes: float = 97.0
    #: Wall-clock seconds per message on the session substrate (advisory;
    #: hardware-dependent, unlike everything else in this model).
    wall_seconds_per_message: float = 3e-5

    def refit(self, result: Any, k: int) -> "Calibration":
        """A copy with byte constants refit from one executed result.

        ``result`` is any object with ``stats.messages_total`` /
        ``stats.bytes_total`` (a :class:`~repro.core.results.ProtocolResult`);
        ``k`` is the query's k.  The per-value constant is kept and the
        overhead re-solved, which absorbs encoding drift without needing
        two probe runs.
        """
        messages = result.stats.messages_total
        if messages <= 0:
            raise ValueError("cannot refit calibration from a run with no messages")
        per_message = result.stats.bytes_total / messages
        return replace(
            self,
            message_overhead_bytes=max(0.0, per_message - self.bytes_per_value * k),
        )


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost and privacy of one candidate plan."""

    protocol: str
    n_parties: int
    rounds: int
    messages: int
    bytes: float
    #: Simulated protocol seconds (what the service clock advances by).
    simulated_seconds: float
    #: Advisory wall-clock estimate (hardware-dependent).
    wall_seconds: float
    #: Predicted expected average LoP: the Eq. 6 bound (probabilistic),
    #: the Eq. 5 closed form (naive), or 0.0 (mask-blinded secure sums).
    #: Eq. 6 bounds a *single* extraction; the Section 5.3 estimator takes
    #: each node's peak exposure over its k local items, which the per-item
    #: expectation does not dominate for k > 1 — so the prediction ledger
    #: audits this column only when ``extracted_values == 1``.
    expected_lop: float
    #: How many values the planned statement extracts (the query's k; 1
    #: for MAX/MIN and for additive scalars).
    extracted_values: int = 1


class CostModel:
    """Compose the analytic models with a :class:`Calibration`."""

    def __init__(self, calibration: Calibration | None = None) -> None:
        self.calibration = calibration or Calibration()

    # -- ranking ----------------------------------------------------------

    def ranking_estimate(
        self,
        *,
        n_parties: int,
        k: int,
        protocol: str,
        params: ProtocolParams,
    ) -> CostEstimate:
        """Predict one ranking run (probabilistic or naive protocol)."""
        if n_parties < 3:
            raise ValueError(f"the protocols require n >= 3, got {n_parties}")
        cal = self.calibration
        if protocol == PROBABILISTIC:
            rounds = params.resolved_rounds()
            schedule = params.schedule
            p0 = getattr(schedule, "p0", None)
            d = getattr(schedule, "d", None)
            if p0 is not None and d is not None and 0.0 < d < 1.0:
                lop = expected_lop_bound(p0, d)
            elif p0 is not None and p0 <= 0.0:
                # A never-randomizing schedule is the naive protocol in
                # disguise: exposure follows the Eq. 5 closed form.
                lop = naive_average_lop(n_parties)
            else:
                # Non-exponential schedules carry no closed-form bound;
                # be conservative.
                lop = 1.0
        elif protocol == NAIVE:
            rounds = 1
            lop = naive_average_lop(n_parties)
        else:
            raise ValueError(f"unknown ranking protocol {protocol!r}")
        messages = n_parties * (rounds + 1)
        return CostEstimate(
            protocol=protocol,
            n_parties=n_parties,
            rounds=rounds,
            messages=messages,
            bytes=messages * (cal.message_overhead_bytes + cal.bytes_per_value * k),
            simulated_seconds=messages * cal.hop_seconds,
            wall_seconds=messages * cal.wall_seconds_per_message,
            expected_lop=lop,
            extracted_values=k,
        )

    # -- additive ---------------------------------------------------------

    def additive_estimate(self, *, n_parties: int, operation: str) -> CostEstimate:
        """Predict a SUM/COUNT/AVG statement (mask-blinded secure sums).

        AVG runs two rings (sum + count).  Secure sums are charged zero
        exposure by the ledger, and the service clock does not advance for
        them (``QueryOutcome.simulated_seconds`` is 0.0 on the additive
        path), so the simulated-seconds prediction is zero by design even
        though messages are not.
        """
        if n_parties < 3:
            raise ValueError(f"secure sums require n >= 3, got {n_parties}")
        rings = 2 if operation == "AVG" else 1
        messages = rings * 2 * n_parties
        cal = self.calibration
        return CostEstimate(
            protocol=SECURE_SUM,
            n_parties=n_parties,
            rounds=1,
            messages=messages,
            bytes=messages * cal.additive_message_bytes,
            simulated_seconds=0.0,
            wall_seconds=messages * cal.wall_seconds_per_message,
            expected_lop=0.0,
        )


__all__ = [
    "Calibration",
    "CostEstimate",
    "CostModel",
    "NAIVE",
    "PROBABILISTIC",
    "SECURE_SUM",
]
