"""The plan object: one chosen execution strategy, explainable and exact.

A :class:`Plan` is what the planner returns and what the federation
executes: protocol + parameters + backend + the :class:`CostEstimate` that
justified the choice.  ``explain()`` renders it deterministically — same
statement, SLO, federation size and calibration always produce the same
bytes — which is what lets CI diff plans as golden artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import ProtocolParams
from .cost import PROBABILISTIC, SECURE_SUM, CostEstimate
from .spec import Slo

#: Plan execution backends (the driver's substrates, from the plan's side).
BATCH_KERNEL = "batch-kernel"
SESSION = "session"

#: Planner objectives: quality-first (default) or cost-first (the
#: gateway's downgrade mode under cost pressure).
QUALITY = "quality"
ECONOMY = "economy"
MODES = (QUALITY, ECONOMY)


def _fmt(value: float) -> str:
    """Deterministic numeric rendering: trim trailing zeros, keep precision."""
    text = f"{value:.6f}".rstrip("0").rstrip(".")
    return text if text else "0"


@dataclass(frozen=True)
class Plan:
    """One fully-determined execution strategy for one statement."""

    #: The bare dialect statement (no SLO suffix) this plan executes.
    statement: str
    operation: str
    #: ``probabilistic`` | ``naive`` | ``secure-sum``.
    protocol: str
    #: ``batch-kernel`` | ``session``.
    backend: str
    #: Protocol parameters for ranking plans; ``None`` on the additive path.
    params: ProtocolParams | None
    estimate: CostEstimate
    slo: Slo
    #: The objective that chose this plan (``quality`` or ``economy``).
    mode: str
    #: How many candidate configurations were enumerated and scored.
    candidates_considered: int

    @property
    def is_ranking(self) -> bool:
        return self.protocol != SECURE_SUM

    @property
    def p0(self) -> float | None:
        if self.params is None:
            return None
        return getattr(self.params.schedule, "p0", None)

    @property
    def d(self) -> float | None:
        if self.params is None:
            return None
        return getattr(self.params.schedule, "d", None)

    def to_dict(self) -> dict:
        """A flat, JSON-serializable view (for artifacts and the CLI)."""
        est = self.estimate
        return {
            "statement": self.statement,
            "operation": self.operation,
            "protocol": self.protocol,
            "backend": self.backend,
            "mode": self.mode,
            "p0": self.p0,
            "d": self.d,
            "rounds": est.rounds,
            "messages": est.messages,
            "bytes": est.bytes,
            "simulated_seconds": est.simulated_seconds,
            "wall_seconds": est.wall_seconds,
            "expected_lop": est.expected_lop,
            "parties": est.n_parties,
            "slo": self.slo.describe(),
            "candidates_considered": self.candidates_considered,
        }

    def explain(self) -> str:
        """Deterministic multi-line rendering of the chosen plan."""
        est = self.estimate
        lines = [
            f"statement         : {self.statement}",
            f"slo               : {self.slo.describe()}",
            f"mode              : {self.mode}",
            f"parties           : {est.n_parties}",
            f"protocol          : {self.protocol}",
            f"backend           : {self.backend}",
        ]
        if self.protocol == PROBABILISTIC and self.p0 is not None:
            lines.append(
                f"randomization     : p0={_fmt(self.p0)} d={_fmt(self.d or 0.0)}"
            )
        lines += [
            f"rounds            : {est.rounds}",
            f"est. messages     : {est.messages}",
            f"est. bytes        : {_fmt(est.bytes)}",
            f"est. latency (sim): {_fmt(est.simulated_seconds)}s",
            f"est. expected LoP : {_fmt(est.expected_lop)}",
            f"candidates scored : {self.candidates_considered}",
        ]
        return "\n".join(lines)


__all__ = ["BATCH_KERNEL", "ECONOMY", "MODES", "Plan", "QUALITY", "SESSION"]
