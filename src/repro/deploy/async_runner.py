"""The protocol over asyncio streams — a third, event-loop substrate.

Completes the transport-agnosticism story: the same local computation
modules run under the in-memory simulator (measured experiments), thread-
per-party TCP (:mod:`repro.deploy.runner`), and — here — a single asyncio
event loop with one stream server per party.  The initialization module is
seeded identically, so all three substrates produce bit-identical runs for
the same inputs (see ``tests/deploy/test_async_run.py``).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..core.session import build_algorithm  # deliberate reuse of the factory
from ..core.params import ProtocolParams
from ..database.query import TopKQuery
from ..network.message import Message, MessageType, result_message, token_message
from ..network.node import LocalAlgorithm
from ..network.ring import RingTopology
from .runner import DeployError
from .wire import MAX_FRAME_BYTES, PREFIX_BYTES


@dataclass
class _AsyncParty:
    """Per-party state inside the event loop."""

    node_id: str
    algorithm: LocalAlgorithm
    is_starter: bool
    total_rounds: int
    successor: "_AsyncParty | None" = None
    final_result: list[float] | None = None
    finished: asyncio.Event = field(default_factory=asyncio.Event)
    observations: list[tuple[int, str, tuple[float, ...]]] = field(
        default_factory=list
    )
    server: asyncio.AbstractServer | None = None
    address: tuple[str, int] | None = None

    async def handle_connection(
        self, reader: asyncio.StreamReader, _writer: asyncio.StreamWriter
    ) -> None:
        prefix = await reader.readexactly(PREFIX_BYTES)
        length = int.from_bytes(prefix, "big")
        if length > MAX_FRAME_BYTES:
            raise DeployError(f"oversized frame: {length} bytes")
        body = await reader.readexactly(length)
        _writer.close()
        await self.on_message(Message.decode(body))

    async def on_message(self, message: Message) -> None:
        vector = [float(v) for v in message.payload["vector"]]
        self.observations.append(
            (message.round, message.type.value, tuple(vector))
        )
        if message.type is MessageType.RESULT:
            if self.is_starter:
                return  # result came full circle
            self.final_result = vector
            await self.send(
                result_message(self.node_id, self._succ().node_id, message.round, vector)
            )
            self.finished.set()
            return
        round_number = message.round
        if self.is_starter:
            if round_number >= self.total_rounds:
                self.final_result = vector
                await self.send(
                    result_message(
                        self.node_id, self._succ().node_id, round_number + 1, vector
                    )
                )
                self.finished.set()
                return
            output = self.algorithm.compute(vector, round_number + 1)
            await self.send(
                token_message(
                    self.node_id, self._succ().node_id, round_number + 1, output
                )
            )
        else:
            output = self.algorithm.compute(vector, round_number)
            await self.send(
                token_message(self.node_id, self._succ().node_id, round_number, output)
            )

    def _succ(self) -> "_AsyncParty":
        if self.successor is None:
            raise DeployError(f"{self.node_id} has no successor configured")
        return self.successor

    async def send(self, message: Message) -> None:
        successor = self._succ()
        assert successor.address is not None
        _reader, writer = await asyncio.open_connection(*successor.address)
        body = message.encode()
        writer.write(len(body).to_bytes(PREFIX_BYTES, "big") + body)
        await writer.drain()
        writer.close()


async def _run_async(
    local_vectors: dict[str, list[float]],
    query: TopKQuery,
    params: ProtocolParams,
    protocol: str,
    seed: int | None,
    host: str,
    timeout: float,
):
    rng = random.Random(seed)
    rounds = params.resolved_rounds() if protocol == "probabilistic" else 1
    node_ids = sorted(local_vectors)
    ring = RingTopology.random(node_ids, rng)
    starter = rng.choice(node_ids)
    truncated = {
        n: sorted((float(v) for v in vs), reverse=True)[: query.k]
        for n, vs in local_vectors.items()
    }

    parties = {
        node_id: _AsyncParty(
            node_id=node_id,
            algorithm=build_algorithm(
                protocol, truncated[node_id], query, params, rng
            ),
            is_starter=(node_id == starter),
            total_rounds=rounds,
        )
        for node_id in node_ids
    }
    try:
        for party in parties.values():
            party.server = await asyncio.start_server(
                party.handle_connection, host, 0
            )
            party.address = party.server.sockets[0].getsockname()[:2]
        for node_id in node_ids:
            parties[node_id].successor = parties[ring.successor(node_id)]

        starter_party = parties[starter]
        output = starter_party.algorithm.compute(
            [float(v) for v in query.identity_vector()], 1
        )
        await starter_party.send(
            token_message(starter, ring.successor(starter), 1, output)
        )
        await asyncio.wait_for(
            asyncio.gather(*(p.finished.wait() for p in parties.values())),
            timeout=timeout,
        )
    finally:
        for party in parties.values():
            if party.server is not None:
                party.server.close()
                await party.server.wait_closed()

    final = parties[starter].final_result
    if final is None:
        raise DeployError("starter finished without a result")
    disagreeing = [
        n for n, p in parties.items() if p.final_result != final
    ]
    if disagreeing:
        raise DeployError(f"parties disagree on the result: {disagreeing}")
    from .runner import TcpRunResult

    return TcpRunResult(
        final_vector=list(final),
        ring_order=ring.members,
        starter=starter,
        addresses={n: parties[n].address for n in node_ids},
        per_party_results={n: list(parties[n].final_result or []) for n in node_ids},
        local_vectors=truncated,
        observations={n: list(parties[n].observations) for n in node_ids},
    )


def run_async_topk(
    local_vectors: dict[str, list[float]],
    query: TopKQuery,
    *,
    params: ProtocolParams | None = None,
    protocol: str = "probabilistic",
    seed: int | None = None,
    host: str = "127.0.0.1",
    timeout: float = 30.0,
):
    """Run one top-k query with every party as an asyncio stream server.

    Same contract and result type as :func:`repro.deploy.run_tcp_topk`
    (encryption is thread-runner-only for now).
    """
    if query.smallest:
        raise DeployError("run_async_topk expects a plain top-k query; negate first")
    if len(local_vectors) < 3:
        raise DeployError(
            f"the protocol requires n >= 3 parties, got {len(local_vectors)}"
        )
    params = params or ProtocolParams.paper_defaults()
    return asyncio.run(
        _run_async(local_vectors, query, params, protocol, seed, host, timeout)
    )
