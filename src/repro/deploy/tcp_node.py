"""One protocol party as a real TCP server thread.

Each party listens on its own localhost port, accepts one framed message per
connection, runs its local computation module, and forwards the output to
its successor's port — exactly the node-to-successor communication scheme of
Section 3.2, but over an actual network stack with real concurrency instead
of the in-memory simulator.

Channel protection: when a shared :class:`~repro.network.crypto.Keyring` is
supplied, every frame body is sealed for the (sender, receiver) link and
opened on receipt — the same cipher the simulator exercises.
"""

from __future__ import annotations

import random
import socket
import threading
import time

from ..network.crypto import Keyring
from ..network.message import Message, MessageType, result_message, token_message
from ..network.node import LocalAlgorithm
from .wire import WireError, recv_frame, send_frame


class TcpNodeError(RuntimeError):
    """Raised on deployment-level failures (bind, connect, protocol state)."""


class TcpParty:
    """A single organization's protocol endpoint."""

    def __init__(
        self,
        node_id: str,
        algorithm: LocalAlgorithm,
        *,
        host: str = "127.0.0.1",
        is_starter: bool = False,
        total_rounds: int = 1,
        keyring: Keyring | None = None,
        accept_timeout: float = 0.2,
        connect_timeout: float = 5.0,
        connect_retries: int = 3,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 2.0,
        retry_rng: random.Random | None = None,
    ) -> None:
        """``connect_timeout`` bounds each successor-connect attempt;
        ``connect_retries`` extra attempts follow a failed connect, spaced by
        exponential backoff with full jitter (``retry_base_delay`` doubling
        up to ``retry_max_delay``), so a ring whose peers start at different
        speeds converges instead of failing on the first slow starter.
        ``retry_rng`` seeds the jitter for deterministic tests.
        """
        if connect_timeout <= 0:
            raise ValueError(f"connect_timeout must be > 0, got {connect_timeout}")
        if connect_retries < 0:
            raise ValueError(f"connect_retries must be >= 0, got {connect_retries}")
        if retry_base_delay <= 0 or retry_max_delay < retry_base_delay:
            raise ValueError(
                "retry delays must satisfy 0 < retry_base_delay <= retry_max_delay"
            )
        self.node_id = node_id
        self.algorithm = algorithm
        self.is_starter = is_starter
        self.total_rounds = total_rounds
        self.keyring = keyring
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self._retry_rng = retry_rng if retry_rng is not None else random.Random()
        self.successor_address: tuple[str, int] | None = None
        #: Logical ids of the ring neighbours; set by the runner when the
        #: ring is wired.  Needed for per-link channel keys.
        self.successor_id: str | None = None
        self.predecessor_id: str | None = None
        self.final_result: list[float] | None = None
        self.finished = threading.Event()
        self.error: Exception | None = None
        #: Local passive log: every (round, kind, vector) this party received
        #: — the semi-honest adversary's view, and the basis of parity
        #: checks against the simulator.
        self.observations: list[tuple[int, str, tuple[float, ...]]] = []
        self._accept_timeout = accept_timeout
        self._stop = threading.Event()
        self._server = socket.create_server((host, 0))
        self._server.settimeout(accept_timeout)
        self._address: tuple[str, int] = self._server.getsockname()
        self._thread = threading.Thread(
            target=self._serve, name=f"tcp-party-{node_id}", daemon=True
        )

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    # -- lifecycle --------------------------------------------------------------

    def start_serving(self) -> None:
        self._thread.start()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop serving; safe to call repeatedly or before serving started.

        Closing a socket does not wake a thread already parked in
        ``accept()`` (it sleeps out its poll timeout), so shutdown first
        pokes the server with an empty wake-up connection — the serve loop
        sees the stop flag and exits within microseconds.
        """
        self._stop.set()
        if self._thread.is_alive():
            try:
                with socket.create_connection(self._address, timeout=1.0):
                    pass  # zero-byte connect: only purpose is waking accept()
            except OSError:
                pass
            self._thread.join(timeout=timeout)
        self._server.close()

    def _serve(self) -> None:
        try:
            while not self._stop.is_set():
                try:
                    connection, _peer = self._server.accept()
                except TimeoutError:
                    continue
                except OSError:
                    return  # server socket closed under us
                with connection:
                    try:
                        body = recv_frame(connection)
                    except WireError:
                        if self._stop.is_set():
                            return  # the shutdown wake-up connection
                        raise
                self._handle_raw(body)
        except (WireError, OSError, ValueError, TcpNodeError) as exc:
            if self._stop.is_set():
                return  # failures during teardown are not protocol errors
            self.error = exc
            self.finished.set()

    # -- protocol ----------------------------------------------------------------

    def kick_off(self, identity_vector: list[float]) -> None:
        """Starter only: compute and send the round-1 token."""
        if not self.is_starter:
            raise TcpNodeError(f"{self.node_id} is not the starting party")
        output = self.algorithm.compute(list(identity_vector), 1)
        self._send(token_message(self.node_id, self._successor(), 1, output))

    def _successor(self) -> str:
        if self.successor_id is None:
            raise TcpNodeError(f"{self.node_id} has no successor configured")
        return self.successor_id

    def _handle_raw(self, body: bytes) -> None:
        if self.keyring is not None:
            if self.predecessor_id is None:
                raise TcpNodeError(f"{self.node_id} has no predecessor configured")
            body = self.keyring.open(self.predecessor_id, self.node_id, body)
        message = Message.decode(body)
        vector = tuple(float(v) for v in message.payload.get("vector", ()))
        self.observations.append((message.round, message.type.value, vector))
        if message.type is MessageType.RESULT:
            self._handle_result(message)
        elif message.type is MessageType.TOKEN:
            self._handle_token(message)

    def _handle_token(self, message: Message) -> None:
        vector = [float(v) for v in message.payload["vector"]]
        round_number = message.round
        if self.is_starter:
            if round_number >= self.total_rounds:
                self.final_result = vector
                self._send(
                    result_message(
                        self.node_id, self._successor(), round_number + 1, vector
                    )
                )
                self.finished.set()
                return
            next_round = round_number + 1
            output = self.algorithm.compute(vector, next_round)
            self._send(
                token_message(self.node_id, self._successor(), next_round, output)
            )
        else:
            output = self.algorithm.compute(vector, round_number)
            self._send(
                token_message(self.node_id, self._successor(), round_number, output)
            )

    def _handle_result(self, message: Message) -> None:
        if self.is_starter:
            return  # result came full circle
        vector = [float(v) for v in message.payload["vector"]]
        self.final_result = vector
        self._send(
            result_message(self.node_id, self._successor(), message.round, vector)
        )
        self.finished.set()

    def _send(self, message: Message) -> None:
        if self.successor_address is None:
            raise TcpNodeError(f"{self.node_id} has no successor address")
        body = message.encode()
        if self.keyring is not None:
            body = self.keyring.seal(self.node_id, self._successor(), body)
        with self._connect_successor() as sock:
            send_frame(sock, body)

    def _connect_successor(self) -> socket.socket:
        """Connect to the successor, retrying with backoff + full jitter.

        A freshly-deployed ring has no ordering guarantee between "party A
        sends" and "party B finished binding": tolerate slow-starting peers
        by retrying refused/timed-out connects, sleeping a uniformly-jittered
        slice of an exponentially-growing window between attempts (full
        jitter avoids synchronized retry storms when a whole ring waits on
        one slow peer).
        """
        assert self.successor_address is not None
        last_error: OSError | None = None
        for attempt in range(self.connect_retries + 1):
            if self._stop.is_set():
                raise TcpNodeError(f"{self.node_id} is shutting down")
            try:
                return socket.create_connection(
                    self.successor_address, timeout=self.connect_timeout
                )
            except OSError as exc:
                last_error = exc
                if attempt == self.connect_retries:
                    break
                window = min(
                    self.retry_max_delay, self.retry_base_delay * (2**attempt)
                )
                time.sleep(self._retry_rng.uniform(0.0, window))
        raise TcpNodeError(
            f"{self.node_id} could not connect to successor at "
            f"{self.successor_address} after {self.connect_retries + 1} "
            f"attempt(s): {last_error}"
        ) from last_error
