"""Deploy and drive a full protocol run over localhost TCP.

This is the deployment-shaped counterpart of
:func:`repro.core.driver.run_protocol_on_vectors`: the same initialization
module (random ring, random starter, randomization parameters), but each
party is a real server thread with its own port, and the token travels as
framed bytes over actual sockets.  Intended for integration testing and for
demonstrating that the protocol logic is transport-agnostic; the simulator
remains the tool for measured experiments (it can account for every byte).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.session import build_algorithm  # deliberate reuse of the factory
from ..core.params import ProtocolParams
from ..core.vectors import merge_topk
from ..database.query import TopKQuery
from ..network.crypto import Keyring
from ..network.ring import RingTopology
from .tcp_node import TcpNodeError, TcpParty


class DeployError(RuntimeError):
    """Raised when a TCP deployment fails to complete."""


@dataclass
class TcpRunResult:
    """Outcome of a TCP-deployed protocol run."""

    final_vector: list[float]
    ring_order: tuple[str, ...]
    starter: str
    addresses: dict[str, tuple[str, int]]
    per_party_results: dict[str, list[float]]
    local_vectors: dict[str, list[float]]
    #: Per-party passive logs: (round, kind, vector) as received.
    observations: dict[str, list[tuple[int, str, tuple[float, ...]]]] = field(
        default_factory=dict
    )

    def true_topk(self, k: int, fill: float) -> list[float]:
        merged: list[float] = []
        for values in self.local_vectors.values():
            merged = merge_topk(merged, values, k)
        return merged + [fill] * (k - len(merged))

    def is_exact(self) -> bool:
        k = len(self.final_vector)
        truth = self.true_topk(k, self.final_vector[-1] if self.final_vector else 0.0)
        return self.final_vector == truth


def run_tcp_topk(
    local_vectors: dict[str, list[float]],
    query: TopKQuery,
    *,
    params: ProtocolParams | None = None,
    protocol: str = "probabilistic",
    seed: int | None = None,
    encrypt: bool = False,
    host: str = "127.0.0.1",
    timeout: float = 30.0,
    connect_timeout: float = 5.0,
    connect_retries: int = 3,
) -> TcpRunResult:
    """Run one top-k query with every party on its own TCP endpoint.

    Only plain (non-negated) top-k queries are supported here; min/bottom-k
    callers should negate values as :mod:`repro.core.driver` does.
    """
    if query.smallest:
        raise DeployError("run_tcp_topk expects a plain top-k query; negate first")
    if len(local_vectors) < 3:
        raise DeployError(f"the protocol requires n >= 3 parties, got {len(local_vectors)}")
    params = params or ProtocolParams.paper_defaults()
    rng = random.Random(seed)
    rounds = params.resolved_rounds() if protocol == "probabilistic" else 1

    node_ids = sorted(local_vectors)
    ring = RingTopology.random(node_ids, rng)
    starter = rng.choice(node_ids)
    keyring = Keyring() if encrypt else None

    truncated = {
        n: sorted((float(v) for v in vs), reverse=True)[: query.k]
        for n, vs in local_vectors.items()
    }

    parties: dict[str, TcpParty] = {}
    try:
        for node_id in node_ids:
            algorithm = build_algorithm(
                protocol, truncated[node_id], query, params, rng
            )
            parties[node_id] = TcpParty(
                node_id,
                algorithm,
                host=host,
                is_starter=(node_id == starter),
                total_rounds=rounds,
                keyring=keyring,
                connect_timeout=connect_timeout,
                connect_retries=connect_retries,
                # No retry_rng from the run RNG: jitter is timing-only, and
                # drawing here would shift the algorithm seed streams away
                # from the simulator's (breaking TCP/simulator parity).
            )
        for node_id in node_ids:
            successor = ring.successor(node_id)
            parties[node_id].successor_id = successor
            parties[node_id].successor_address = parties[successor].address
            parties[node_id].predecessor_id = ring.predecessor(node_id)
        for party in parties.values():
            party.start_serving()

        parties[starter].kick_off([float(v) for v in query.identity_vector()])

        for node_id in node_ids:
            if not parties[node_id].finished.wait(timeout=timeout):
                raise DeployError(
                    f"party {node_id!r} did not finish within {timeout}s"
                )
            error = parties[node_id].error
            if error is not None:
                raise DeployError(f"party {node_id!r} failed: {error}") from error
    finally:
        for party in parties.values():
            party.shutdown()

    final = parties[starter].final_result
    if final is None:
        raise DeployError("starter finished without a result")
    per_party = {
        n: list(parties[n].final_result or []) for n in node_ids
    }
    disagreeing = [n for n, vec in per_party.items() if vec != final]
    if disagreeing:
        raise DeployError(f"parties disagree on the result: {disagreeing}")
    return TcpRunResult(
        final_vector=list(final),
        ring_order=ring.members,
        starter=starter,
        addresses={n: parties[n].address for n in node_ids},
        per_party_results=per_party,
        local_vectors=truncated,
        observations={n: list(parties[n].observations) for n in node_ids},
    )


__all__ = ["DeployError", "TcpNodeError", "TcpRunResult", "run_tcp_topk"]
