"""Deployment substrates: the protocol over real sockets (threads or asyncio)."""

from .async_runner import run_async_topk
from .runner import DeployError, TcpRunResult, run_tcp_topk
from .tcp_node import TcpNodeError, TcpParty
from .wire import MAX_FRAME_BYTES, PREFIX_BYTES, WireError, recv_frame, send_frame

__all__ = [
    "DeployError",
    "MAX_FRAME_BYTES",
    "PREFIX_BYTES",
    "TcpNodeError",
    "TcpParty",
    "TcpRunResult",
    "WireError",
    "recv_frame",
    "run_async_topk",
    "run_tcp_topk",
    "send_frame",
]
