"""Length-prefixed framing for protocol messages over TCP.

The simulated transport passes :class:`~repro.network.message.Message`
objects directly; the TCP deployment sends their canonical encoding over a
socket, framed with a 4-byte big-endian length prefix so messages survive
TCP's stream semantics intact.
"""

from __future__ import annotations

import socket

#: Upper bound on a frame body; a top-k token is a few hundred bytes, so
#: anything huge indicates corruption or a protocol error.
MAX_FRAME_BYTES = 1 << 20

#: Width of the big-endian length prefix.  Public because every substrate
#: that speaks this framing (thread-per-party TCP here, asyncio streams in
#: :mod:`repro.deploy.async_runner`) must share one value or frames written
#: by one cannot be read by the other.
PREFIX_BYTES = 4

# Backwards-compatible private alias (pre-1.1 internal name).
_PREFIX_BYTES = PREFIX_BYTES


class WireError(RuntimeError):
    """Raised on framing violations or truncated streams."""


def send_frame(sock: socket.socket, body: bytes) -> None:
    """Send one framed message."""
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(len(body).to_bytes(_PREFIX_BYTES, "big") + body)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError(f"connection closed with {remaining} bytes pending")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Receive one framed message."""
    prefix = recv_exact(sock, _PREFIX_BYTES)
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"declared frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return recv_exact(sock, length)
