"""The paper's contribution: naive and probabilistic top-k selection protocols."""

from .driver import (
    ANONYMOUS_NAIVE,
    BACKENDS,
    KERNEL,
    NAIVE,
    PROBABILISTIC,
    PROTOCOLS,
    SESSION,
    DriverError,
    KernelUnsupported,
    RunConfig,
    derived_rounds,
    run_many_on_vectors,
    run_protocol_on_vectors,
    run_topk_queries,
    run_topk_query,
    with_protocol,
)
from .kernel import KernelRun, kernel_refusal, run_kernel_on_vectors
from .session import PreparedQuery, ProtocolSession, prepare_query_vectors
from .max_protocol import ProbabilisticMaxAlgorithm
from .naive import NaiveMaxAlgorithm, NaiveTopKAlgorithm
from .noise import HighBiasedNoise, LowBiasedNoise, NoiseStrategy, UniformNoise
from .params import ParamError, ProtocolParams, minimum_rounds
from .results import ProtocolResult
from .serialization import (
    SerializationError,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from .sampling import SamplingError, random_value_in
from .schedule import (
    PAPER_DEFAULT_SCHEDULE,
    ConstantCutoffSchedule,
    ExponentialSchedule,
    LinearSchedule,
    Schedule,
    ScheduleError,
)
from .topk_protocol import ProbabilisticTopKAlgorithm
from .vectors import (
    VectorError,
    is_sorted_desc,
    merge_topk,
    multiset_contains,
    multiset_difference,
    multiset_intersection_size,
    pad_to_k,
    validate_vector,
)

__all__ = [
    "ANONYMOUS_NAIVE",
    "BACKENDS",
    "ConstantCutoffSchedule",
    "DriverError",
    "ExponentialSchedule",
    "HighBiasedNoise",
    "KERNEL",
    "KernelRun",
    "KernelUnsupported",
    "LowBiasedNoise",
    "LinearSchedule",
    "NAIVE",
    "NaiveMaxAlgorithm",
    "NoiseStrategy",
    "NaiveTopKAlgorithm",
    "PAPER_DEFAULT_SCHEDULE",
    "PROBABILISTIC",
    "PROTOCOLS",
    "ParamError",
    "PreparedQuery",
    "ProbabilisticMaxAlgorithm",
    "ProbabilisticTopKAlgorithm",
    "ProtocolParams",
    "ProtocolResult",
    "ProtocolSession",
    "RunConfig",
    "SESSION",
    "SamplingError",
    "SerializationError",
    "Schedule",
    "ScheduleError",
    "UniformNoise",
    "VectorError",
    "derived_rounds",
    "is_sorted_desc",
    "kernel_refusal",
    "load_result",
    "merge_topk",
    "minimum_rounds",
    "multiset_contains",
    "multiset_difference",
    "multiset_intersection_size",
    "pad_to_k",
    "prepare_query_vectors",
    "random_value_in",
    "result_from_dict",
    "result_to_dict",
    "run_kernel_on_vectors",
    "run_many_on_vectors",
    "run_protocol_on_vectors",
    "run_topk_queries",
    "run_topk_query",
    "save_result",
    "validate_vector",
    "with_protocol",
]
