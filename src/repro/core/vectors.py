"""Ordered multiset (top-k vector) operations used by Algorithm 2.

The global vector "is an ordered multiset that may include duplicate values"
(Section 3.4).  We represent it as a list of floats sorted descending, always
exactly ``k`` long (the initialization module pads with the domain's lowest
value).  The operations here are the multiset union / set-difference /
merge-sort steps of Algorithm 2, factored out so they can be property-tested
in isolation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence


class VectorError(ValueError):
    """Raised when a top-k vector violates its invariants."""


def is_sorted_desc(values: Sequence[float]) -> bool:
    # A plain loop, not all(<genexpr>): this runs on every token hop of
    # every trial, and the generator frame costs more than the comparison.
    for i in range(len(values) - 1):
        if not values[i] >= values[i + 1]:
            return False
    return True


def validate_vector(vector: Sequence[float], k: int) -> None:
    """Assert the global-vector invariant: length k, sorted descending."""
    if len(vector) != k:
        raise VectorError(f"vector has length {len(vector)}, expected {k}")
    if not is_sorted_desc(vector):
        raise VectorError(f"vector is not sorted descending: {list(vector)}")


def merge_topk(
    vector: Sequence[float], values: Iterable[float], k: int
) -> list[float]:
    """Top-k of the multiset union (Algorithm 2's ``topK(G ∪ V_i)``).

    Equivalent to a merge-sort followed by truncation, as the paper suggests.
    """
    if k < 1:
        raise VectorError(f"k must be >= 1, got {k}")
    merged = sorted(list(vector) + list(values), reverse=True)
    return merged[:k]


def multiset_difference(
    minuend: Sequence[float], subtrahend: Sequence[float]
) -> list[float]:
    """Multiset difference (Algorithm 2's ``V_i' = G_i'(r) − G_{i-1}(r)``).

    Each occurrence in ``subtrahend`` cancels at most one occurrence in
    ``minuend``.  The result preserves descending order.
    """
    # Two-pointer walk over the descending-sorted operands instead of a
    # Counter: this is Algorithm 2's inner step, called once per token hop.
    sub = sorted(subtrahend, reverse=True)
    n = len(sub)
    i = 0
    result = []
    for value in sorted(minuend, reverse=True):
        while i < n and sub[i] > value:
            i += 1
        if i < n and sub[i] == value:
            i += 1
        else:
            result.append(value)
    return result


def multiset_contains(haystack: Sequence[float], needles: Sequence[float]) -> bool:
    """True when ``needles`` is a sub-multiset of ``haystack``."""
    have = Counter(haystack)
    need = Counter(needles)
    return all(have[value] >= count for value, count in need.items())


def multiset_intersection_size(a: Sequence[float], b: Sequence[float]) -> int:
    """``|A ∩ B|`` with multiplicity — the numerator of the precision metric."""
    ca, cb = Counter(a), Counter(b)
    return sum(min(ca[value], cb[value]) for value in ca)


def pad_to_k(values: Sequence[float], k: int, fill: float) -> list[float]:
    """Right-pad a short local vector with the domain's worst value.

    A node with fewer than k values still participates with a full-length
    vector; the pad values are the identity element and never win a merge.
    """
    if len(values) > k:
        raise VectorError(f"cannot pad {len(values)} values down to {k}")
    padded = sorted(values, reverse=True) + [fill] * (k - len(values))
    if not is_sorted_desc(padded):
        raise VectorError(f"fill value {fill} exceeds data values {list(values)}")
    return padded
