"""Resumable per-query protocol sessions for multi-query pipelining.

The classic driver (:mod:`repro.core.driver`) runs one ring protocol
end-to-end per call: with n nodes and r rounds every query pays n·r
sequential message latencies, and the ring sits idle at n−1 of its n
positions while the single token is in flight.  A :class:`ProtocolSession`
packages one query's entire run — ring construction, starter selection,
per-node algorithms, round hooks, failure recovery — as a *reactive* unit on
a shared :class:`~repro.network.transport.InMemoryTransport`: the session
emits a token, the transport delivers it, the receiving node computes and
re-emits, and between those deliveries the transport is free to carry other
queries' tokens.  Many independent queries therefore interleave on one
transport, tagged by query id, and a batch of Q queries completes in
simulated time close to the *maximum* of the per-query times rather than
their sum.

Determinism is unchanged: each session draws every random decision from its
own config's seeded RNG in exactly the order the classic driver did, so a
query's result is bit-identical whether it runs alone or pipelined with
others (the batch/sequential parity tests enforce this).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..database.query import Domain, TopKQuery
from ..network.message import Message, MessageType, result_message, token_message
from ..network.node import ProtocolNode
from ..network.ring import RingError, RingTopology
from ..network.transport import InMemoryTransport
from ..observability.trace import TraceContext
from .naive import NaiveTopKAlgorithm
from .results import ProtocolResult
from .topk_protocol import ProbabilisticTopKAlgorithm
from .vectors import pad_to_k, validate_vector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (driver imports us)
    from .params import ProtocolParams
    from .driver import RunConfig

#: Protocol identifiers used throughout the experiments.
PROBABILISTIC = "probabilistic"
NAIVE = "naive"
ANONYMOUS_NAIVE = "anonymous-naive"
PROTOCOLS = (PROBABILISTIC, NAIVE, ANONYMOUS_NAIVE)


class DriverError(RuntimeError):
    """Raised when a run is misconfigured or fails to terminate."""


#: Signature of a custom ring constructor: (node ids, run RNG) -> ring.
RingBuilder = Callable[[list[str], random.Random], RingTopology]


@dataclass(frozen=True)
class PreparedQuery:
    """One query's protocol-ready inputs.

    ``vectors`` and ``query`` are in the *internal* representation: min /
    bottom-k queries are negated into top-k form, and each node's values are
    reduced to its local top-k (the protocol's initial step, Section 3.4).
    ``original_query`` is the query as the caller posed it.
    """

    vectors: dict[str, list[float]]
    query: TopKQuery
    negated: bool
    original_query: TopKQuery


def prepare_query_vectors(
    local_vectors: dict[str, list[float]], query: TopKQuery
) -> PreparedQuery:
    """Normalize caller inputs into the protocol's internal representation."""
    if len(local_vectors) < 3:
        raise DriverError(
            f"the protocol requires n >= 3 nodes, got {len(local_vectors)}"
        )
    original_query = query
    vectors = {
        node: [float(v) for v in values] for node, values in local_vectors.items()
    }
    negated = query.smallest
    if negated:
        # Bottom-k reduces to top-k on negated values over the mirrored domain.
        vectors = {n: [-v for v in vs] for n, vs in vectors.items()}
        query = TopKQuery(
            table=query.table,
            attribute=query.attribute,
            k=query.k,
            domain=Domain(-query.domain.high, -query.domain.low, query.domain.integral),
            smallest=False,
        )
    # The protocol's initial step: sort locally, keep the local top-k.
    vectors = {n: sorted(vs, reverse=True)[: query.k] for n, vs in vectors.items()}
    return PreparedQuery(
        vectors=vectors, query=query, negated=negated, original_query=original_query
    )


def build_algorithm(
    protocol: str,
    values: list[float],
    query: TopKQuery,
    params: "ProtocolParams",
    rng: random.Random,
):
    """Construct one node's local computation module."""
    padded = pad_to_k(values, query.k, float(query.domain.low))
    if protocol == PROBABILISTIC:
        # Each node gets an independent RNG stream so one node's draws cannot
        # perturb another's (and runs stay reproducible under refactoring).
        node_rng = random.Random(rng.getrandbits(64))
        return ProbabilisticTopKAlgorithm(padded, query.k, params, query.domain, node_rng)
    return NaiveTopKAlgorithm(padded, query.k)


class ProtocolSession:
    """One query's resumable protocol run on a (possibly shared) transport.

    Construction performs every deterministic setup step in the exact RNG
    draw order of the classic driver: ring layout, starter selection, then
    per-node algorithm streams in canonical node order.  :meth:`start` emits
    the round-1 token; from then on the session is purely reactive — the
    transport's delivery loop drives token-in → local-compute → token-out
    until the starter's result broadcast completes.  The caller pumps the
    transport (``run_until_idle``), calls :meth:`recover` to handle crash /
    loss repair, and :meth:`finalize` to collect the
    :class:`~repro.core.results.ProtocolResult`.
    """

    def __init__(
        self,
        prepared: PreparedQuery,
        config: "RunConfig",
        transport: InMemoryTransport,
        *,
        query_id: str = "",
        trace: TraceContext | None = None,
    ) -> None:
        self.prepared = prepared
        self.config = config
        self.transport = transport
        self.query_id = query_id
        self.query = prepared.query
        self.accounting = transport.open_channel(query_id)
        #: Tracing state: the protocol-level span plus the currently-open
        #: round (or broadcast) span that hop events attach under.  All None
        #: when tracing is off, so the hot path pays one ``is None`` check.
        self.trace = trace
        self._trace_protocol_ctx: TraceContext | None = None
        self._trace_round_ctx: TraceContext | None = None
        self._trace_broadcast_ctx: TraceContext | None = None

        rng = config.rng()
        self._rng = rng
        params = config.params
        node_ids = sorted(prepared.vectors)
        self._node_ids = node_ids

        if config.protocol == PROBABILISTIC:
            self.total_rounds = params.resolved_rounds()
        else:
            self.total_rounds = 1  # the naive protocols are single-round

        if config.ring_builder is not None:
            ring = config.ring_builder(list(node_ids), rng)
            if sorted(ring.members) != node_ids:
                raise DriverError(
                    "ring_builder must arrange exactly the participating nodes"
                )
        else:
            ring = RingTopology.random(node_ids, rng)
        self.ring = ring
        self._initial_ring = ring

        if config.protocol == NAIVE:
            # Fixed starting scheme: the first node in canonical order starts.
            self.starter = node_ids[0]
        else:
            # Randomized starting scheme (initialization module, Section 3.3).
            self.starter = rng.choice(node_ids)

        self.nodes: dict[str, ProtocolNode] = {}
        for node_id in node_ids:
            algorithm = build_algorithm(
                config.protocol, prepared.vectors[node_id], self.query, params, rng
            )
            self.nodes[node_id] = ProtocolNode(
                node_id,
                algorithm,
                transport,
                is_starter=(node_id == self.starter),
                total_rounds=self.total_rounds,
                query_id=query_id,
            )
        self._apply_ring(ring)

        self.snapshots: dict[int, list[float]] = {}
        self.ring_history: dict[int, tuple[str, ...]] = {1: ring.members}
        self.nodes[self.starter].round_hook = self._on_round_complete
        self._started = False
        self.abandoned = False

    # -- wiring ---------------------------------------------------------------

    def _apply_ring(self, current: RingTopology) -> None:
        # Crashed nodes may have been spliced out; only rewire members.
        for node_id in self._node_ids:
            if node_id in current:
                self.nodes[node_id].successor = current.successor(node_id)

    def _on_round_complete(self, round_number: int) -> None:
        # Called by the starter when the token comes back around.  Snapshot
        # the end-of-round global vector, then optionally remap the ring for
        # the next round (Section 4.3 collusion countermeasure).  Reads the
        # *channel* event log so interleaved queries never cross-talk.
        incoming = self.accounting.event_log.inputs_of(self.starter).get(round_number)
        if incoming is not None:
            self.snapshots[round_number] = [float(v) for v in incoming]
        if self.config.params.remap_each_round and round_number < self.total_rounds:
            self.ring = self.ring.remap(self._rng)
            self._apply_ring(self.ring)
            self.ring_history[round_number + 1] = self.ring.members
        if self.trace is not None and self._trace_round_ctx is not None:
            # Close the round that just completed; the next round (or the
            # result broadcast) opens at the same simulated instant — the
            # delivery that closed this round.  After the final round the
            # round context goes dormant, so recovery replays of the last
            # token never respawn round spans.
            tracer = self.trace.tracer
            now = self.transport.now
            tracer.close_span(self._trace_round_ctx, at=now)
            if round_number < self.total_rounds:
                self._trace_round_ctx = tracer.open_span(
                    self._trace_protocol_ctx,
                    "round",
                    at=now,
                    kind="round",
                    attrs={"round": round_number + 1},
                )
            else:
                self._trace_round_ctx = None
                self._trace_broadcast_ctx = tracer.open_span(
                    self._trace_protocol_ctx,
                    "broadcast",
                    at=now,
                    kind="round",
                    attrs={"round": round_number + 1},
                )

    def _trace_delivery(self, message: Message, now: float) -> None:
        # Transport tap: runs after channel accounting, before the receiving
        # node's handler — so the hop that closes a round is recorded under
        # that round's span before the round hook rotates spans.
        if message.type is MessageType.RESULT:
            parent = self._trace_broadcast_ctx
            hop_type = "result"
        else:
            parent = self._trace_round_ctx
            hop_type = "token"
        if parent is None:
            return
        tracer = self.trace.tracer
        attrs = {
            "sender": message.sender,
            "receiver": message.receiver,
            "round": message.round,
            "type": hop_type,
        }
        if tracer.capture_values:
            attrs["vector"] = [float(v) for v in message.payload["vector"]]
        tracer.event(parent, "hop", at=now, kind="message", attrs=attrs)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Emit the round-1 token; delivery is driven by the transport."""
        if self.abandoned:
            raise DriverError("session was abandoned")
        if self._started:
            raise DriverError("session already started")
        self._started = True
        config = self.config
        if config.initial_vector is not None:
            start_vector = [float(v) for v in config.initial_vector]
            validate_vector(start_vector, self.query.k)
            if any(v not in self.query.domain for v in start_vector):
                raise DriverError("initial_vector contains out-of-domain values")
        else:
            start_vector = [float(v) for v in self.query.identity_vector()]
        if self.trace is not None:
            tracer = self.trace.tracer
            now = self.transport.now
            self._trace_protocol_ctx = tracer.open_span(
                self.trace,
                "protocol",
                at=now,
                kind="protocol",
                attrs={
                    "protocol": config.protocol,
                    "nodes": len(self._node_ids),
                    "rounds": self.total_rounds,
                    "starter": self.starter,
                    "k": self.query.k,
                    "ring": list(self._initial_ring.members),
                },
            )
            self._trace_round_ctx = tracer.open_span(
                self._trace_protocol_ctx,
                "round",
                at=now,
                kind="round",
                attrs={"round": 1},
            )
            self.accounting.on_delivery = self._trace_delivery
        self.nodes[self.starter].start(start_vector)

    @property
    def finished(self) -> bool:
        """True once the starter holds the final result."""
        return self.nodes[self.starter].final_result is not None

    def abandon(self) -> None:
        """Withdraw this query from its transport mid-flight.

        The serving layer (:mod:`repro.service`) sheds queries whose
        deadline expires; an expired query pipelined with live ones must
        stop consuming transport deliveries *without* disturbing its batch
        mates.  Abandoning unregisters every node handler on this session's
        channel, so any in-flight token for this query is dropped on
        delivery (counted in ``transport.dropped``) instead of triggering
        further computation, while other channels' traffic is untouched.
        Idempotent; an abandoned session can never be finalized.
        """
        if self.abandoned:
            return
        self.abandoned = True
        for node_id in self._node_ids:
            self.transport.unregister(node_id, channel=self.query_id)
        if self.trace is not None and self._trace_protocol_ctx is not None:
            tracer = self.trace.tracer
            now = self.transport.now
            for ctx in (self._trace_round_ctx, self._trace_broadcast_ctx):
                if ctx is not None:
                    tracer.close_span(ctx, at=now, attrs={"abandoned": True})
            tracer.close_span(
                self._trace_protocol_ctx, at=now, attrs={"abandoned": True}
            )
            self.accounting.on_delivery = None

    def recover(self) -> None:
        """Ring-repair recovery (Section 3.2) and loss retransmission.

        A crash-stopped node swallows the token and the protocol stalls.  The
        paper's remedy: "the ring can be reconstructed from scratch or simply
        by connecting the predecessor and successor of the failed node."  We
        take the splice approach: drop every crashed node from the ring,
        rewire the survivors, and have the starting node re-emit its output
        for the round that stalled (survivors that already processed it
        simply treat the replayed token per their local algorithm —
        correctness is unaffected because outputs never exceed the true
        top-k and insertion is idempotent).  A crashed *starting* node is
        unrecoverable by splicing (the paper's from-scratch rebuild covers
        it) and reported loudly.

        Lossy links (a drop probability with no crash) use the same machinery
        minus the splice: the starter retransmits the stalled round's token,
        with a bounded retry budget so a pathological loss rate still fails
        loudly.
        """
        if self.abandoned:
            return  # nothing to repair; the query was withdrawn
        failures = self.config.failures
        if failures is None:
            return
        nodes, starter, transport = self.nodes, self.starter, self.transport
        lossy = getattr(failures, "drop_probability", 0.0) > 0.0
        attempts = 0
        while nodes[starter].final_result is None:
            crashed = [n for n in self.ring.members if failures.is_crashed(n)]
            if not crashed and not lossy:
                return  # nothing to repair; let the caller report the stall
            if failures.is_crashed(starter):
                raise DriverError(
                    "the starting node crashed; the ring must be rebuilt from "
                    "scratch with a fresh initialization"
                )
            attempts += 1
            # Each retransmission restarts one stalled round, so the budget
            # scales with the round count; it only bounds pathological loss
            # rates, not normal operation.
            retry_budget = max(len(nodes), 16, 8 * nodes[starter].total_rounds)
            if attempts > retry_budget:
                raise DriverError("ring repair / retransmission did not converge")
            try:
                for failed in crashed:
                    self.ring = self.ring.repair(failed)
            except RingError as exc:
                raise DriverError(f"cannot repair ring: {exc}") from exc
            self._apply_ring(self.ring)
            # Values inserted into the lost token segment are gone; survivors
            # must be allowed to contribute again, and must *forget* the
            # insertions the replay erases (those of the stalled round) or
            # they would mis-attribute equal surviving values as their own.
            # The starter's stalled-round insertion is the exception: it is
            # embodied in the replayed vector itself.
            stalled_round = nodes[starter].rounds_completed + 1
            for node_id, node in nodes.items():
                if not failures.is_crashed(node_id):
                    rearm = getattr(node.algorithm, "rearm", None)
                    if rearm is not None:
                        rearm(None if node_id == starter else stalled_round)
            # Replay exactly what the starter last emitted for the stalled
            # round; the node-side copy survives even when the transport
            # dropped the send before any log saw it.
            if (
                nodes[starter].last_sent_vector is not None
                and nodes[starter].last_sent_round == stalled_round
            ):
                vector = list(nodes[starter].last_sent_vector)
            else:
                vector = [float(v) for v in self.query.identity_vector()]
            transport.send(
                token_message(
                    starter,
                    self.ring.successor(starter),
                    stalled_round,
                    vector,
                    query=self.query_id,
                )
            )
            transport.run_until_idle()

        # The token phase finished; make sure the result broadcast also
        # survived (it too can be eaten by a crash or a lossy link).
        final = nodes[starter].final_result
        rebroadcasts = 0
        while True:
            survivors = [
                n for n in self.ring.members if not failures.is_crashed(n)
            ]
            if all(nodes[n].final_result is not None for n in survivors):
                return
            rebroadcasts += 1
            if rebroadcasts > max(len(nodes), 16):
                raise DriverError("result broadcast did not converge")
            try:
                for failed in [
                    n for n in self.ring.members if failures.is_crashed(n)
                ]:
                    self.ring = self.ring.repair(failed)
            except RingError as exc:
                raise DriverError(f"cannot repair ring: {exc}") from exc
            self._apply_ring(self.ring)
            transport.send(
                result_message(
                    starter,
                    self.ring.successor(starter),
                    nodes[starter].rounds_completed + 1,
                    list(final),
                    query=self.query_id,
                )
            )
            transport.run_until_idle()

    def finalize(self) -> ProtocolResult:
        """Validate termination and assemble the result for this query."""
        if self.abandoned:
            raise DriverError(
                "session was abandoned (deadline expired); it has no result"
            )
        config = self.config
        final = self.nodes[self.starter].final_result
        if final is None:
            raise DriverError("protocol did not terminate with a result")
        survivors = [
            n
            for n in self._node_ids
            if config.failures is None or not config.failures.is_crashed(n)
        ]
        missing = [n for n in survivors if self.nodes[n].final_result is None]
        if missing:
            raise DriverError(f"nodes never learned the final result: {missing}")

        if self.trace is not None and self._trace_protocol_ctx is not None:
            tracer = self.trace.tracer
            end = self.accounting.last_delivery_at
            if self._trace_broadcast_ctx is not None:
                tracer.close_span(self._trace_broadcast_ctx, at=end)
                self._trace_broadcast_ctx = None
            tracer.close_span(self._trace_protocol_ctx, at=end)
            self.accounting.on_delivery = None

        result = ProtocolResult(
            query=self.query,
            protocol=config.protocol,
            final_vector=final,
            ring_order=self._initial_ring.members,
            starter=self.starter,
            local_vectors={
                n: sorted(v, reverse=True) for n, v in self.prepared.vectors.items()
            },
            round_snapshots=self.snapshots,
            event_log=self.accounting.event_log,
            stats=self.accounting.stats,
            ring_history=self.ring_history,
            simulated_seconds=self.accounting.last_delivery_at,
            schedule=(
                config.params.schedule if config.protocol == PROBABILISTIC else None
            ),
        )
        result.negated = self.prepared.negated
        result.original_query = self.prepared.original_query
        return result
