"""The naive deterministic protocol (Section 3.1) — the paper's baseline.

A single round in which every node replaces the incoming global vector with
the true merged top-k of the vector and its own values.  The paper discusses
two variants that differ only in how the starting node is chosen:

* **naive** — fixed starting node; the starter suffers *provable exposure*
  (its successor sees its value verbatim) and nodes near the start leak with
  probability ~1/i.
* **anonymous naive** — a randomized starting scheme; the same average loss
  of privacy but no worst-case victim, because an adversary cannot tell who
  started the ring.

Both reuse the same local computation below; the starting-node policy lives
in the driver.
"""

from __future__ import annotations

from .vectors import merge_topk, validate_vector


class NaiveTopKAlgorithm:
    """Deterministic local computation: always return the real merged top-k.

    Setting the randomization probability to zero reduces the probabilistic
    protocol to exactly this (Section 3.3), which is also how the correctness
    tests cross-check the two implementations.
    """

    def __init__(self, local_values: list[float], k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(local_values) > k:
            raise ValueError(
                f"local vector holds {len(local_values)} values; at most k={k} "
                "may participate (sort-and-truncate locally first)"
            )
        self.k = k
        self.local_values = sorted((float(v) for v in local_values), reverse=True)

    def compute(self, incoming: list[float], round_number: int) -> list[float]:
        validate_vector(incoming, self.k)
        return merge_topk(incoming, self.local_values, self.k)


class NaiveMaxAlgorithm(NaiveTopKAlgorithm):
    """The k=1 special case: pass on ``max(incoming, own value)``."""

    def __init__(self, local_value: float) -> None:
        super().__init__([float(local_value)], k=1)
