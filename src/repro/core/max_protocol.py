"""Algorithm 1: the randomized local algorithm for privacy-preserving max.

Executed by node *i* at round *r* on the incoming global value
``g_{i-1}(r)`` and the node's own value ``v_i``:

* if ``g_{i-1}(r) >= v_i`` — pass the global value on unchanged (the node
  exposes nothing);
* otherwise, with probability ``P_r(r) = p0 * d^(r-1)`` return a uniform
  random value from ``[g_{i-1}(r), v_i)``, and with probability
  ``1 - P_r(r)`` return ``v_i``.

The three properties the paper proves of this choice (Section 3.3):

1. an adversary observing the output cannot attribute a value or range to
   the node with certainty — the output may be a random value, the
   predecessor's value, or ``v_i``;
2. the global value is monotonically non-decreasing along the ring, so later
   nodes can usually just pass it on;
3. injected randomness is always *below* ``v_i``, hence below the global max,
   so it is guaranteed to be displaced before the protocol terminates.
"""

from __future__ import annotations

import random

from ..database.query import Domain
from .params import ProtocolParams


class ProbabilisticMaxAlgorithm:
    """Per-node state and local computation for the max protocol (k = 1)."""

    def __init__(
        self,
        local_value: float,
        params: ProtocolParams,
        domain: Domain,
        rng: random.Random,
    ) -> None:
        self.local_value = float(local_value)
        self.params = params
        self.domain = domain
        self.rng = rng
        #: Diagnostic counters, used by tests and the experiment harness.
        self.randomized_rounds: list[int] = []
        self.revealed_round: int | None = None

    def compute(self, incoming: list[float], round_number: int) -> list[float]:
        if len(incoming) != 1:
            raise ValueError(f"max protocol carries a scalar, got {incoming}")
        g_prev = incoming[0]
        if g_prev >= self.local_value:
            # Case 1: nothing to hide, nothing to add.
            return [g_prev]
        # Case 2: our value is the current maximum.
        p_r = self.params.probability(round_number)
        if self.rng.random() < p_r:
            self.randomized_rounds.append(round_number)
            noise = self.params.noise.draw(
                self.rng, g_prev, self.local_value, integral=self.domain.integral
            )
            return [noise]
        if self.revealed_round is None:
            self.revealed_round = round_number
        return [self.local_value]
