"""Randomization-probability schedules (Equation 2 and ablation variants).

The paper drives the protocol with an exponentially decaying randomization
probability ``P_r(r) = p0 * d^(r-1)`` (Equation 2).  Section 7 notes that
"given the probabilistic scheme, it is possible to design other forms of
randomization probability"; the linear and constant-cutoff schedules here
exist for exactly that ablation (benchmarked in ``benchmarks/``).

All schedules map a 1-based round number to a probability in [0, 1] and must
be (weakly) decreasing so that the protocol converges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class ScheduleError(ValueError):
    """Raised for invalid schedule parameters."""


@dataclass(frozen=True)
class ExponentialSchedule:
    """The paper's schedule: ``P_r(r) = p0 * d^(r-1)`` (Equation 2).

    ``p0`` is the initial randomization probability, ``d`` the dampening
    factor.  ``p0 = 0`` reduces the protocol to the naive deterministic one
    (Section 3.3).
    """

    p0: float = 1.0
    d: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.p0 <= 1.0:
            raise ScheduleError(f"p0 must be in [0, 1], got {self.p0}")
        if not 0.0 < self.d <= 1.0:
            raise ScheduleError(f"d must be in (0, 1], got {self.d}")

    def probability(self, round_number: int) -> float:
        if round_number < 1:
            raise ScheduleError(f"rounds are 1-based, got {round_number}")
        return self.p0 * self.d ** (round_number - 1)

    def cumulative_randomization(self, rounds: int) -> float:
        """``prod_{j=1..r} P_r(j) = p0^r * d^(r(r-1)/2)``.

        This is the failure term of the correctness bound (Equation 3): the
        probability that a max-holder randomized in every one of ``rounds``
        rounds.
        """
        if rounds < 0:
            raise ScheduleError("rounds must be non-negative")
        if rounds == 0:
            return 1.0
        if self.p0 == 0.0:
            return 0.0
        log_term = rounds * math.log(self.p0) if self.p0 < 1.0 else 0.0
        log_term += (rounds * (rounds - 1) / 2) * math.log(self.d) if self.d < 1.0 else 0.0
        return math.exp(log_term)


@dataclass(frozen=True)
class LinearSchedule:
    """Ablation: ``P_r(r) = max(0, p0 - slope*(r-1))``."""

    p0: float = 1.0
    slope: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.p0 <= 1.0:
            raise ScheduleError(f"p0 must be in [0, 1], got {self.p0}")
        if self.slope <= 0.0:
            raise ScheduleError("slope must be positive for convergence")

    def probability(self, round_number: int) -> float:
        if round_number < 1:
            raise ScheduleError(f"rounds are 1-based, got {round_number}")
        return max(0.0, self.p0 - self.slope * (round_number - 1))


@dataclass(frozen=True)
class ConstantCutoffSchedule:
    """Ablation: ``P_r(r) = p0`` for ``r <= cutoff``, 0 afterwards."""

    p0: float = 0.5
    cutoff: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.p0 < 1.0:
            raise ScheduleError(
                f"p0 must be in [0, 1) (p0=1 would never converge), got {self.p0}"
            )
        if self.cutoff < 0:
            raise ScheduleError("cutoff must be non-negative")

    def probability(self, round_number: int) -> float:
        if round_number < 1:
            raise ScheduleError(f"rounds are 1-based, got {round_number}")
        return self.p0 if round_number <= self.cutoff else 0.0


#: Union of all supported schedules (anything with a ``probability`` method).
Schedule = ExponentialSchedule | LinearSchedule | ConstantCutoffSchedule

#: The paper's default parameters, selected by the Figure 9 tradeoff study.
PAPER_DEFAULT_SCHEDULE = ExponentialSchedule(p0=1.0, d=0.5)
