"""Persist and reload protocol results for offline analysis.

Reproduction work accumulates thousands of runs; archiving full traces lets
privacy analyses be re-run later (or by reviewers) without re-simulating.
The format is plain JSON: the public result, the run metadata, and the
event-log observations.  Everything the :mod:`repro.privacy` estimators
need round-trips; live-only objects (the schedule instance, the stats
counters beyond totals) are summarized.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..database.query import Domain, TopKQuery
from ..network.events import EventLog
from ..network.message import Message, MessageType
from ..network.stats import TrafficStats
from .results import ProtocolResult
from .schedule import ExponentialSchedule

FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a trace document cannot be parsed."""


def result_to_dict(result: ProtocolResult) -> dict[str, Any]:
    """A JSON-serializable document for one protocol run."""
    query = result.query
    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "query": {
            "table": query.table,
            "attribute": query.attribute,
            "k": query.k,
            "domain": {
                "low": query.domain.low,
                "high": query.domain.high,
                "integral": query.domain.integral,
            },
            "smallest": query.smallest,
        },
        "protocol": result.protocol,
        "final_vector": list(result.final_vector),
        "ring_order": list(result.ring_order),
        "starter": result.starter,
        "local_vectors": {n: list(v) for n, v in result.local_vectors.items()},
        "round_snapshots": {
            str(r): list(v) for r, v in result.round_snapshots.items()
        },
        "ring_history": {
            str(r): list(order) for r, order in result.ring_history.items()
        },
        "simulated_seconds": result.simulated_seconds,
        "negated": result.negated,
        "observations": [
            {
                "round": o.round,
                "sender": o.sender,
                "receiver": o.receiver,
                "vector": list(o.vector),
                "kind": o.kind,
            }
            for o in result.event_log
        ],
        "stats": result.stats.summary(),
    }
    if isinstance(result.schedule, ExponentialSchedule):
        document["schedule"] = {
            "type": "exponential",
            "p0": result.schedule.p0,
            "d": result.schedule.d,
        }
    return document


def result_from_dict(document: dict[str, Any]) -> ProtocolResult:
    """Rebuild a :class:`ProtocolResult` from :func:`result_to_dict` output."""
    try:
        version = document["format_version"]
        if version != FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        q = document["query"]
        query = TopKQuery(
            table=q["table"],
            attribute=q["attribute"],
            k=q["k"],
            domain=Domain(
                q["domain"]["low"], q["domain"]["high"], q["domain"]["integral"]
            ),
            smallest=q["smallest"],
        )
        event_log = EventLog()
        for obs in document["observations"]:
            # Rebuild through Message so Observation invariants hold.
            message = Message(
                sender=obs["sender"],
                receiver=obs["receiver"],
                round=obs["round"],
                type=MessageType(obs["kind"]),
                payload={"vector": obs["vector"]},
            )
            event_log.record(message)
        stats = TrafficStats()
        stats.messages_total = int(document["stats"]["messages_total"])
        stats.bytes_total = int(document["stats"]["bytes_total"])
        schedule = None
        if "schedule" in document:
            s = document["schedule"]
            if s.get("type") != "exponential":
                raise SerializationError(f"unknown schedule type {s.get('type')!r}")
            schedule = ExponentialSchedule(p0=s["p0"], d=s["d"])
        return ProtocolResult(
            query=query,
            protocol=document["protocol"],
            final_vector=[float(v) for v in document["final_vector"]],
            ring_order=tuple(document["ring_order"]),
            starter=document["starter"],
            local_vectors={
                n: [float(v) for v in vs]
                for n, vs in document["local_vectors"].items()
            },
            round_snapshots={
                int(r): [float(v) for v in vs]
                for r, vs in document["round_snapshots"].items()
            },
            event_log=event_log,
            stats=stats,
            ring_history={
                int(r): tuple(order)
                for r, order in document["ring_history"].items()
            },
            simulated_seconds=float(document["simulated_seconds"]),
            negated=bool(document["negated"]),
            schedule=schedule,
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SerializationError):
            raise
        raise SerializationError(f"malformed trace document: {exc}") from exc


def save_result(result: ProtocolResult, path: Path | str) -> Path:
    """Write one run's trace as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=1, sort_keys=True))
    return path


def load_result(path: Path | str) -> ProtocolResult:
    """Read a trace written by :func:`save_result`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: not valid JSON: {exc}") from exc
    return result_from_dict(document)
