"""Results of a protocol run, with everything the evaluation needs attached.

A :class:`ProtocolResult` carries the public outcome (the final top-k
vector), the run's bookkeeping (ring order, starter, per-round global
snapshots, traffic stats) and — for *evaluation only* — the ground-truth
local vectors.  In a real deployment the ground truth never leaves the nodes;
here it feeds the precision metric and the loss-of-privacy estimators, which
need an omniscient view to score what an adversary could have inferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..database.query import TopKQuery
from ..network.events import EventLog
from ..network.stats import TrafficStats
from .vectors import merge_topk, multiset_intersection_size


@dataclass
class ProtocolResult:
    """Outcome and full trace of one protocol run."""

    query: TopKQuery
    protocol: str
    final_vector: list[float]
    ring_order: tuple[str, ...]
    starter: str
    #: Ground-truth local top-k vector per node (evaluation only).
    local_vectors: dict[str, list[float]]
    #: End-of-round global vectors, ``round -> g(r)``, as received back by
    #: the starting node.
    round_snapshots: dict[int, list[float]] = field(default_factory=dict)
    event_log: EventLog = field(default_factory=EventLog)
    stats: TrafficStats = field(default_factory=TrafficStats)
    #: Ring order per round when per-round remapping is on (round -> order).
    ring_history: dict[int, tuple[str, ...]] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    #: True when the run operated on negated values (min/bottom-k queries).
    #: All trace fields (vectors, snapshots, event log) — and ``query``
    #: itself — are in the internal, negated representation;
    #: :meth:`answer` converts back and ``original_query`` is the query as
    #: the caller posed it.
    negated: bool = False
    original_query: TopKQuery | None = None
    #: The randomization schedule the run used.  It is public protocol
    #: metadata (every party must know it), which is why adversary models
    #: may read it when computing posteriors.
    schedule: object | None = None

    @property
    def n_nodes(self) -> int:
        return len(self.ring_order)

    @property
    def rounds_executed(self) -> int:
        return max(self.round_snapshots, default=0)

    def true_topk(self) -> list[float]:
        """Ground-truth global top-k over all participating local vectors."""
        result: list[float] = []
        for values in self.local_vectors.values():
            result = merge_topk(result, values, self.query.k)
        if len(result) < self.query.k:
            fill = self.query.domain.low
            result = result + [fill] * (self.query.k - len(result))
        return result

    def precision(self) -> float:
        """The paper's metric (Section 5.4): ``|R ∩ TopK| / k``."""
        truth = self.true_topk()
        hits = multiset_intersection_size(self.final_vector, truth)
        return hits / self.query.k

    def answer(self) -> list[float]:
        """The user-facing result.

        For plain top-k queries this is ``final_vector`` (descending).  For
        min/bottom-k queries the protocol ran on negated values; the answer
        is negated back and sorted ascending.
        """
        if not self.negated:
            return list(self.final_vector)
        return sorted(-v for v in self.final_vector)

    def precision_at_round(self, round_number: int) -> float:
        """Precision of the global vector at the end of ``round_number``.

        Rounds beyond the last executed one hold the final value (the vector
        no longer changes once the protocol has converged and terminated);
        rounds before the first snapshot score against the identity vector.
        """
        if not self.round_snapshots:
            raise ValueError("run recorded no round snapshots")
        eligible = [r for r in self.round_snapshots if r <= round_number]
        if not eligible:
            vector = self.query.identity_vector()
        else:
            vector = self.round_snapshots[max(eligible)]
        truth = self.true_topk()
        return multiset_intersection_size(vector, truth) / self.query.k

    def is_exact(self) -> bool:
        return self.precision() == 1.0
