"""Protocol parameters (the paper's Table 1, plus implementation knobs).

Table 1 lists the experiment parameters: ``n`` (number of nodes), ``k``
(top-k parameter), ``p0`` (initial randomization probability) and ``d``
(dampening factor).  :class:`ProtocolParams` bundles the randomization
schedule with the remaining protocol-level knobs: the number of rounds (or
the target error bound from which it is derived, Equation 4), the top-k
minimum random range ``delta`` (Algorithm 2), and ring-management options.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .noise import NoiseStrategy, UniformNoise
from .schedule import ExponentialSchedule, Schedule, ScheduleError


class ParamError(ValueError):
    """Raised for inconsistent protocol parameters."""


def minimum_rounds(p0: float, d: float, epsilon: float) -> int:
    """Equation 4: smallest r with ``1 - p0 * d^(r(r-1)/2) >= 1 - epsilon``.

    Derivation: ``p0 * d^(r(r-1)/2) <= eps`` iff
    ``r(r-1) >= 2 * ln(eps/p0) / ln(d)`` (the inequality flips because
    ``ln d < 0``), i.e. ``r >= (1 + sqrt(1 + 8*ln(eps/p0)/ln(d))) / 2``.
    The result scales as ``O(sqrt(log(1/eps)))`` and is independent of the
    number of nodes (Section 4.2).
    """
    if not 0.0 < epsilon < 1.0:
        raise ParamError(f"epsilon must be in (0, 1), got {epsilon}")
    if p0 <= 0.0:
        return 1  # deterministic protocol: one round always suffices
    if not 0.0 < d < 1.0:
        raise ParamError(f"d must be in (0, 1) to converge, got {d}")
    if p0 <= epsilon:
        # Already within the error bound after a single round.
        return 1
    ratio = 8.0 * math.log(epsilon / p0) / math.log(d)  # positive
    r = (1.0 + math.sqrt(1.0 + ratio)) / 2.0
    return max(1, math.ceil(r))


@dataclass(frozen=True)
class ProtocolParams:
    """Everything a protocol run needs besides the query and the databases.

    Attributes
    ----------
    schedule:
        Randomization-probability schedule; the paper's Equation 2 with
        ``(p0, d) = (1, 1/2)`` by default (chosen by the Figure 9 tradeoff).
    rounds:
        Number of protocol rounds.  ``None`` derives it from ``epsilon`` via
        Equation 4 (exponential schedules only).
    epsilon:
        Target error bound for the derived round count.
    delta:
        Algorithm 2's minimum width of the random-value range.  Must be
        positive; at least 1 for integral domains so the range always
        contains an integer.
    remap_each_round:
        Re-randomize the ring mapping between rounds (Section 4.3 collusion
        countermeasure).
    insert_once:
        Algorithm 2's "a node only does this once" rule: after a node has
        returned its real merged top-k it passes the vector on in later
        rounds.  Disable to let nodes re-insert (ablation).
    noise:
        Where injected random values land inside the admissible range
        (Section 7's randomized-algorithm design axis); the paper's uniform
        strategy by default.
    """

    schedule: Schedule = field(default_factory=ExponentialSchedule)
    rounds: int | None = None
    epsilon: float = 1e-3
    delta: float = 1.0
    remap_each_round: bool = False
    insert_once: bool = True
    noise: NoiseStrategy = field(default_factory=UniformNoise)

    def __post_init__(self) -> None:
        if self.rounds is not None and self.rounds < 1:
            raise ParamError(f"rounds must be >= 1, got {self.rounds}")
        if not 0.0 < self.epsilon < 1.0:
            raise ParamError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.delta <= 0.0:
            raise ParamError(f"delta must be positive, got {self.delta}")

    @classmethod
    def paper_defaults(cls, **overrides: object) -> "ProtocolParams":
        """(p0, d) = (1, 1/2), epsilon = 0.001 — the paper's defaults."""
        params = cls(schedule=ExponentialSchedule(p0=1.0, d=0.5), epsilon=1e-3)
        return replace(params, **overrides) if overrides else params

    @classmethod
    def with_randomization(
        cls, p0: float, d: float, **overrides: object
    ) -> "ProtocolParams":
        """Shorthand used pervasively by the experiment harness."""
        params = cls(schedule=ExponentialSchedule(p0=p0, d=d))
        return replace(params, **overrides) if overrides else params

    def resolved_rounds(self) -> int:
        """The actual round count: explicit, or Equation 4 from epsilon."""
        if self.rounds is not None:
            return self.rounds
        if isinstance(self.schedule, ExponentialSchedule):
            return minimum_rounds(self.schedule.p0, self.schedule.d, self.epsilon)
        raise ParamError(
            "rounds must be given explicitly for non-exponential schedules"
        )

    def probability(self, round_number: int) -> float:
        """Randomization probability for ``round_number`` (1-based)."""
        try:
            return self.schedule.probability(round_number)
        except ScheduleError as exc:
            raise ParamError(str(exc)) from exc
