"""Random-value generation for the randomized local algorithms.

Both Algorithm 1 and Algorithm 2 draw uniform random values from half-open
ranges ``[low, high)``.  On integral domains (the paper's experiments use the
integer domain [1, 10000]) the draw must itself be an integer, or injected
noise would be trivially distinguishable from real values — which would hand
an adversary a perfect test for "this output is the node's real value" and
destroy the privacy argument.
"""

from __future__ import annotations

import math
import random


class SamplingError(ValueError):
    """Raised when a random range is empty."""


def random_value_in(
    rng: random.Random, low: float, high: float, *, integral: bool
) -> float:
    """Uniform draw from ``[low, high)``.

    ``integral=True`` draws an integer; the range must then contain at least
    one integer.  Algorithm 1 guarantees ``low < high`` whenever it asks for a
    draw (it only randomizes when ``g_{i-1}(r) < v_i``), and Algorithm 2's
    ``delta`` keeps its range non-empty; an empty range here is a protocol
    bug, reported loudly.
    """
    if low >= high:
        raise SamplingError(f"empty random range [{low}, {high})")
    if integral:
        lo = math.ceil(low)
        hi = math.ceil(high) - 1  # largest integer strictly below high
        if hi < lo:
            raise SamplingError(
                f"no integer in random range [{low}, {high})"
            )
        return float(rng.randint(lo, hi))
    value = rng.uniform(low, high)
    # uniform() may return high on pathological rounding; fold it back.
    if value >= high:
        value = low
    return value
