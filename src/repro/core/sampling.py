"""Random-value generation for the randomized local algorithms.

Both Algorithm 1 and Algorithm 2 draw uniform random values from half-open
ranges ``[low, high)``.  On integral domains (the paper's experiments use the
integer domain [1, 10000]) the draw must itself be an integer, or injected
noise would be trivially distinguishable from real values — which would hand
an adversary a perfect test for "this output is the node's real value" and
destroy the privacy argument.

The second half of this module is the vectorized replay substrate for the
batch kernel (:mod:`repro.core.batch`): a numpy reimplementation of CPython's
``random.Random`` seeding (MT19937 ``init_by_array``) that materializes the
first output words of thousands of independent RNG streams at once, plus a
:class:`WordPool` that serves those words back through the exact draw
algorithms CPython uses (``random()``, ``getrandbits``, ``randint``'s
rejection sampling).  Bit-identical replay is the contract: every word a pool
hands out equals what ``random.Random(seed)`` would have produced, verified
stream-for-stream by the parity tests.
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict

import numpy as np


class SamplingError(ValueError):
    """Raised when a random range is empty."""


def random_value_in(
    rng: random.Random, low: float, high: float, *, integral: bool
) -> float:
    """Uniform draw from ``[low, high)``.

    ``integral=True`` draws an integer; the range must then contain at least
    one integer.  Algorithm 1 guarantees ``low < high`` whenever it asks for a
    draw (it only randomizes when ``g_{i-1}(r) < v_i``), and Algorithm 2's
    ``delta`` keeps its range non-empty; an empty range here is a protocol
    bug, reported loudly.
    """
    if low >= high:
        raise SamplingError(f"empty random range [{low}, {high})")
    if integral:
        lo = math.ceil(low)
        hi = math.ceil(high) - 1  # largest integer strictly below high
        if hi < lo:
            raise SamplingError(
                f"no integer in random range [{low}, {high})"
            )
        return float(rng.randint(lo, hi))
    value = rng.uniform(low, high)
    # uniform() may return high on pathological rounding; fold it back.
    if value >= high:
        value = low
    return value


# -- vectorized MT19937 streams ------------------------------------------------
#
# CPython seeds ``random.Random(seed)`` by splitting the (non-negative) seed
# into 32-bit words and feeding them to the reference MT19937
# ``init_by_array``; every generator output is then a tempered word of the
# twisted state.  Both halves are pure 32-bit integer arithmetic, so they
# vectorize directly over a *batch axis of streams*: the state becomes a
# ``(624, S)`` uint32 matrix and each reference-loop step updates one row for
# all S streams at once.  uint32 gives mod-2**32 for free.

_MT_N = 624
_MT_M1 = np.uint32(1664525)
_MT_M2 = np.uint32(1566083941)
_MT_UPPER = np.uint32(0x80000000)
_MT_LOWER = np.uint32(0x7FFFFFFF)
_MT_MATRIX = np.uint32(0x9908B0DF)

#: Streams per vectorization chunk.  The 1247 sequential ``init_by_array``
#: steps each touch one (chunk,)-row, so the chunk trades numpy dispatch
#: overhead (small chunks) against cache pressure from the 624 x chunk
#: state (large chunks); ~8k is the measured sweet spot on this container.
_MT_CHUNK = 8192

#: The maximum words obtainable from a single partial twist: ``mt[i + 397]``
#: must stay inside the untwisted tail, so only the first 227 outputs are
#: available without a second (full) twist pass.
MAX_HARVEST_WORDS = _MT_N - 397


def _mt_base_state() -> np.ndarray:
    """The reference ``init_genrand(19650218)`` state shared by every seed."""
    mt = np.empty(_MT_N, dtype=np.uint64)
    mt[0] = 19650218
    for i in range(1, _MT_N):
        prev = int(mt[i - 1])
        mt[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
    return mt.astype(np.uint32)


_MT_INIT = _mt_base_state()


def _mt_words_chunk(seeds: np.ndarray, words: int) -> np.ndarray:
    """``init_by_array`` + partial twist + temper for one chunk of seeds."""
    count = seeds.shape[0]
    key0 = (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    key1 = (seeds >> np.uint64(32)).astype(np.uint32)
    # Seeds below 2**32 have key length 1 (key0 repeats); larger seeds have
    # key length 2, where odd steps add key1 plus the key index 1.
    long_key = seeds >= np.uint64(1 << 32)
    add_even = key0
    add_odd = np.where(long_key, key1 + np.uint32(1), key0)

    mt = np.empty((_MT_N, count), dtype=np.uint32)
    tmp = np.empty(count, dtype=np.uint32)

    # init_by_array loop 1: 624 steps of
    #   mt[i] = (mt[i] ^ ((mt[i-1] ^ (mt[i-1] >> 30)) * 1664525)) + key[j] + j
    # starting from the shared init_genrand state; i wraps 623 -> 1.
    prev = np.full(count, _MT_INIT[0], dtype=np.uint32)
    for step in range(_MT_N - 1):
        i = step + 1
        row = mt[i]
        np.right_shift(prev, 30, out=row)
        row ^= prev
        row *= _MT_M1
        row ^= _MT_INIT[i]
        row += add_even if step % 2 == 0 else add_odd
        prev = row
    mt[0] = mt[_MT_N - 1]
    prev = mt[0]
    row = mt[1]  # wrap step 623 writes i=1 with key index 623 % keylen
    np.right_shift(prev, 30, out=tmp)
    tmp ^= prev
    tmp *= _MT_M1
    row ^= tmp
    row += add_odd
    prev = row

    # init_by_array loop 2: 623 steps of
    #   mt[i] = (mt[i] ^ ((mt[i-1] ^ (mt[i-1] >> 30)) * 1566083941)) - i
    for step in range(_MT_N - 2):
        i = step + 2
        row = mt[i]
        np.right_shift(prev, 30, out=tmp)
        tmp ^= prev
        tmp *= _MT_M2
        row ^= tmp
        row -= np.uint32(i)
        prev = row
    mt[0] = mt[_MT_N - 1]
    prev = mt[0]
    row = mt[1]
    np.right_shift(prev, 30, out=tmp)
    tmp ^= prev
    tmp *= _MT_M2
    row ^= tmp
    row -= np.uint32(1)
    mt[0] = _MT_UPPER

    # Partial twist: the first ``words`` outputs only need state words up to
    # index words + 397, so the remaining twist (and any reseeding of the
    # tail) never runs.  All rows twist in one 2D pass.
    y = mt[:words] & _MT_UPPER
    y |= mt[1 : words + 1] & _MT_LOWER
    out = (y & np.uint32(1)) * _MT_MATRIX
    y >>= np.uint32(1)
    out ^= y
    out ^= mt[397 : words + 397]

    # Temper (vectorized over every word at once).
    out ^= out >> np.uint32(11)
    out ^= (out << np.uint32(7)) & np.uint32(0x9D2C5680)
    out ^= (out << np.uint32(15)) & np.uint32(0xEFC60000)
    out ^= out >> np.uint32(18)
    return np.ascontiguousarray(out.T)


#: LRU of harvested stream prefixes, keyed by seed.  Per-node seeds are
#: derived deterministically from the run seed, so re-running a query —
#: benchmark reps, parity sweeps, a statement re-executed after a cache
#: epoch bump — asks for exactly the same streams again; the ~1.2k-step
#: ``init_by_array`` replay is the batch kernel's dominant setup cost, and
#: a hit skips it entirely.  Bounded: 8192 entries of <= 227 words is
#: under 8 MB.
_PREFIX_CACHE: "OrderedDict[int, np.ndarray]" = OrderedDict()
PREFIX_CACHE_ENTRIES = 8192
_prefix_hits = 0
_prefix_misses = 0


def prefix_cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the stream-prefix cache (for tests/benches)."""
    return {
        "hits": _prefix_hits,
        "misses": _prefix_misses,
        "entries": len(_PREFIX_CACHE),
    }


def prefix_cache_clear() -> None:
    """Drop every cached prefix and zero the counters."""
    global _prefix_hits, _prefix_misses
    _PREFIX_CACHE.clear()
    _prefix_hits = 0
    _prefix_misses = 0


def mt19937_words(seeds: "np.ndarray | list[int]", words: int) -> np.ndarray:
    """First ``words`` output words of ``random.Random(seed)`` per seed.

    ``seeds`` must be non-negative and below 2**64 (the batch kernel only
    seeds node streams from ``getrandbits(64)`` draws).  Returns a
    ``(len(seeds), words)`` uint32 array whose row ``s`` equals the raw
    ``genrand_uint32`` sequence of ``random.Random(int(seeds[s]))``.

    Streams seen before (same seed, same or shorter prefix) are served from
    the module's LRU prefix cache instead of re-running ``init_by_array``;
    fresh seeds harvest exactly as before and populate it.  The cache holds
    copies, so callers may use the returned array freely.
    """
    global _prefix_hits, _prefix_misses
    if not 0 < words <= MAX_HARVEST_WORDS:
        raise ValueError(
            f"words must be in [1, {MAX_HARVEST_WORDS}], got {words}"
        )
    seeds = np.asarray(seeds, dtype=np.uint64)
    count = seeds.shape[0]
    out = np.empty((count, words), dtype=np.uint32)
    cache = _PREFIX_CACHE
    miss_rows: list[int] = []
    for row, seed in enumerate(map(int, seeds.tolist())):
        cached = cache.get(seed)
        if cached is not None and cached.shape[0] >= words:
            out[row] = cached[:words]
            cache.move_to_end(seed)
            _prefix_hits += 1
        else:
            miss_rows.append(row)
            _prefix_misses += 1
    if not miss_rows:
        return out
    miss = np.asarray(miss_rows, dtype=np.int64)
    miss_seeds = seeds[miss]
    for start in range(0, miss.shape[0], _MT_CHUNK):
        stop = min(start + _MT_CHUNK, miss.shape[0])
        out[miss[start:stop]] = _mt_words_chunk(miss_seeds[start:stop], words)
    for row, seed in zip(miss_rows, map(int, miss_seeds.tolist())):
        existing = cache.get(seed)
        if existing is None or existing.shape[0] < words:
            cache[seed] = out[row].copy()
        cache.move_to_end(seed)
    while len(cache) > PREFIX_CACHE_ENTRIES:
        cache.popitem(last=False)
    return out


#: ``random()`` builds a 53-bit double from two words exactly like CPython:
#: ``((a >> 5) * 67108864.0 + (b >> 6)) * (1.0 / 9007199254740992.0)``.
_RANDOM_SCALE = 1.0 / 9007199254740992.0


def words_to_unit_floats(w0: np.ndarray, w1: np.ndarray) -> np.ndarray:
    """CPython's ``random()`` from two raw words (element-wise)."""
    a = (w0 >> np.uint32(5)).astype(np.float64)
    b = (w1 >> np.uint32(6)).astype(np.float64)
    return (a * 67108864.0 + b) * _RANDOM_SCALE


class WordPool:
    """Pre-harvested output words for many independent ``Random`` streams.

    Serves the draw primitives the batch kernel replays — ``random()``,
    ``randint`` — against a ``(streams, words)`` harvest, advancing a per-
    stream cursor.  A stream that outruns its harvest demotes itself to a
    real ``random.Random`` fast-forwarded past the consumed words (consuming
    ``32 * cursor`` bits replays them exactly), so overflow costs speed, not
    correctness.
    """

    def __init__(
        self,
        seeds: "list[int] | np.ndarray",
        words: int,
    ) -> None:
        self.seeds = seeds
        self.words = words
        count = len(seeds)
        self._matrix = mt19937_words(seeds, words)
        self._flat = self._matrix.reshape(-1)
        self.cursor = np.zeros(count, dtype=np.int64)
        #: Streams demoted to a live ``random.Random`` after overflow.
        self._scalar: dict[int, random.Random] = {}
        self._demoted = np.zeros(count, dtype=bool)

    def _demote(self, stream: int, at_cursor: int) -> random.Random:
        rng = self._scalar.get(stream)
        if rng is None:
            rng = random.Random(int(self.seeds[stream]))
            if at_cursor:
                rng.getrandbits(32 * at_cursor)
            self._scalar[stream] = rng
            self._demoted[stream] = True
        return rng

    def _split(self, who: np.ndarray, need: int) -> tuple[np.ndarray | None, list[int]]:
        """Partition ``who`` into harvest-served and scalar-served streams.

        ``need`` is the minimum word count the caller is about to consume;
        streams that cannot honor it from the harvest (or were demoted
        earlier) go to the scalar side, demoting on first touch.  Returns
        ``(fast_mask, slow_streams)``; a ``None`` mask means every stream is
        harvest-served (the hot path — no mask allocation at all).  Streams
        within one ``who`` must be distinct.
        """
        over = self.cursor[who] + need > self.words
        if self._scalar:
            over |= self._demoted[who]
        if not over.any():
            return None, []
        slow = [int(s) for s in who[over]]
        for s in slow:
            self._demote(s, int(self.cursor[s]))
        return ~over, slow

    def take_block(
        self, who: np.ndarray, width: int
    ) -> tuple["np.ndarray | None", "np.ndarray | None"]:
        """Peek the next ``width`` raw words of every stream in ``who``.

        Returns ``(block, fast_mask)`` where ``block`` has one row per
        harvest-served stream (``who[fast_mask]``) and ``fast_mask`` is
        ``None`` when every stream is served.  Cursors do NOT advance —
        the caller works out how many words each draw sequence actually
        consumed and reports it via :meth:`advance`.  Streams that cannot
        honor ``width`` words are left untouched (no demotion): the caller
        serves them through the scalar draw path at its own pace.
        """
        over = self.cursor[who] + width > self.words
        if self._scalar:
            over |= self._demoted[who]
        if not over.any():
            base = who * self.words + self.cursor[who]
            return self._flat[base[:, None] + np.arange(width)], None
        fast_mask = ~over
        fast = who[fast_mask]
        if not fast.shape[0]:
            return None, fast_mask
        base = fast * self.words + self.cursor[fast]
        return self._flat[base[:, None] + np.arange(width)], fast_mask

    def advance(self, who: np.ndarray, consumed: np.ndarray) -> None:
        """Commit ``consumed`` words per stream after a :meth:`take_block`."""
        self.cursor[who] += consumed

    def scalar_rng(self, stream: int) -> random.Random:
        """Live ``Random`` for one stream, demoting it at its current cursor."""
        return self._demote(stream, int(self.cursor[stream]))

    def random(self, who: np.ndarray) -> np.ndarray:
        """One ``random()`` draw per stream in ``who`` (2 words each)."""
        mask, slow = self._split(who, 2)
        if mask is None:
            base = who * self.words + self.cursor[who]
            w0 = self._flat[base]
            w1 = self._flat[base + 1]
            self.cursor[who] += 2
            return words_to_unit_floats(w0, w1)
        out = np.empty(who.shape[0], dtype=np.float64)
        fast = who[mask]
        if fast.shape[0]:
            base = fast * self.words + self.cursor[fast]
            w0 = self._flat[base]
            w1 = self._flat[base + 1]
            self.cursor[fast] += 2
            out[mask] = words_to_unit_floats(w0, w1)
        if slow:
            values = {s: self._scalar[s].random() for s in slow}
            for i, stream in enumerate(who):
                s = int(stream)
                if s in values:
                    out[i] = values[s]
        return out

    def randint(self, who: np.ndarray, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """One ``randint(low, high)`` per stream, replaying the rejection loop.

        ``low``/``high`` are int64 arrays aligned with ``who``; every width
        must fit 32 bits (``high - low + 1 < 2**32``), which the batch
        kernel's eligibility rules guarantee via the domain span.
        """
        width = high - low + 1
        out = np.empty(who.shape[0], dtype=np.int64)
        # CPython's _randbelow: k = width.bit_length(); draw getrandbits(k)
        # (one word, top k bits) until the value lands below width.
        shift = np.uint32(32) - np.frexp(width.astype(np.float64))[1].astype(np.uint32)
        pending = np.arange(who.shape[0])
        while pending.shape[0]:
            streams = who[pending]
            mask, slow = self._split(streams, 1)
            if mask is None:
                rows = pending
                fast = streams
            else:
                rows = pending[mask]
                fast = streams[mask]
            if fast.shape[0]:
                base = fast * self.words + self.cursor[fast]
                draws = self._flat[base] >> shift[rows]
                self.cursor[fast] += 1
                accepted = draws < width[rows]
                out[rows[accepted]] = draws[accepted]
                still = rows[~accepted]
            else:
                still = rows
            if slow:
                slow_set = set(slow)
                for row in pending:
                    s = int(who[row])
                    if s in slow_set:
                        out[row] = self._scalar[s].randint(
                            int(low[row]), int(high[row])
                        ) - int(low[row])
            pending = still
        return low + out
