"""Algorithm 2: the randomized local algorithm for privacy-preserving top-k.

Executed by node *i* at round *r* on the incoming global vector
``G_{i-1}(r)`` and the node's local top-k vector ``V_i``:

1. compute the *real* current top-k ``G_i'(r) = topK(G_{i-1}(r) ∪ V_i)``;
2. ``V_i' = G_i'(r) − G_{i-1}(r)`` (multiset difference) — the node's values
   that actually contribute; ``m = |V_i'|``;
3. ``m = 0``: pass ``G_{i-1}(r)`` on unchanged;
4. ``m > 0``: with probability ``1 − P_r(r)`` return the real ``G_i'(r)``
   (at most once per run — afterwards the node passes vectors on);
   with probability ``P_r(r)`` keep the first ``k − m`` values of
   ``G_{i-1}(r)`` and fill the last ``m`` slots with a sorted list of random
   values drawn from
   ``[min(G_i'(r)[k] − δ, G_{i-1}(r)[k−m+1]),  G_i'(r)[k])``.

The random range is the crux: its upper end is *strictly below* the smallest
value of the real current top-k, so every injected value is guaranteed to be
displaced by the node's own (or a larger) real value in a later round; its
lower end pushes the global vector as high as possible to shield downstream
nodes.  With ``m = k`` this degenerates to replacing the whole vector with
random values between ``G_{i-1}(r)[1]`` and ``V_i[k]`` exactly as the paper
describes.  When ``k = 1`` the algorithm reduces to Algorithm 1.

A reproduction finding worth recording: the paper's "only does this once"
rule is *load-bearing for correctness*, not merely a privacy optimization.
A node that naively re-runs the merge in a later round cannot distinguish
its own previously-inserted values inside ``G_{i-1}(r)`` from equal values
owned by other nodes, so the multiset union ``G ∪ V_i`` double-counts them
and the global vector silently fills with duplicates.  The optional
re-insertion mode (``insert_once=False``) therefore tracks the multiset of
values this node has already inserted and excludes copies of them that are
still present in the incoming vector before merging.
"""

from __future__ import annotations

import random
from collections import Counter

from ..database.query import Domain
from .params import ProtocolParams
from .vectors import merge_topk, multiset_difference, validate_vector


class ProbabilisticTopKAlgorithm:
    """Per-node state and local computation for the general top-k protocol."""

    def __init__(
        self,
        local_values: list[float],
        k: int,
        params: ProtocolParams,
        domain: Domain,
        rng: random.Random,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(local_values) > k:
            raise ValueError(
                f"local vector holds {len(local_values)} values; the node must "
                f"participate with its local top-{k} only"
            )
        self.k = k
        self.local_values = sorted((float(v) for v in local_values), reverse=True)
        self.params = params
        self.domain = domain
        self.rng = rng
        self.has_inserted = False
        #: Multiset of own values already inserted into the global vector;
        #: used by the re-insertion mode to avoid double-counting itself.
        self._inserted: Counter = Counter()
        #: The same insertions keyed by the round they happened in; crash
        #: recovery needs to surgically forget one round's insertions.
        self._inserted_by_round: dict[int, Counter] = {}
        #: Diagnostic counters for tests and the experiment harness.
        self.randomized_rounds: list[int] = []
        self.revealed_round: int | None = None

    def rearm(self, discard_round: int | None = None) -> None:
        """Allow the node to contribute again after a token loss.

        Crash recovery replays the starting node's emission for the stalled
        round, which erases every insertion other nodes performed *in that
        round* — so the driver passes ``discard_round`` and this node forgets
        those insertions (they are provably not in the replayed vector, so
        keeping them would make the node mis-attribute another party's equal
        value as its own surviving copy and never re-insert).  Insertions
        from completed rounds persist in the replayed vector and stay
        tracked, which prevents double-counting them.
        """
        self.has_inserted = False
        if discard_round is None:
            return
        lost = self._inserted_by_round.pop(discard_round, None)
        if lost:
            self._inserted.subtract(lost)
            self._inserted = +self._inserted  # drop zero/negative entries

    def _mergeable_values(self, g_prev: list[float]) -> list[float]:
        """Own values eligible for the merge.

        Each own copy already present in the incoming vector — and known to
        have been inserted by this node — is excluded, otherwise the multiset
        union would count it twice.  (Under the paper's insert-once rule the
        node normally never merges again after inserting, so this tracking
        only activates after a crash-recovery re-arm or in the explicit
        re-insertion mode.)
        """
        if not self._inserted:
            return self.local_values
        in_vector = Counter(g_prev)
        mine_unaccounted = Counter(self._inserted)
        eligible = []
        for value in self.local_values:
            if mine_unaccounted[value] > 0 and in_vector[value] > 0:
                mine_unaccounted[value] -= 1
                in_vector[value] -= 1
                continue  # my copy is already circulating
            eligible.append(value)
        return eligible

    def compute(self, incoming: list[float], round_number: int) -> list[float]:
        validate_vector(incoming, self.k)
        g_prev = list(incoming)
        if self.params.insert_once and self.has_inserted:
            # The paper's "a node only does this once" rule: after revealing
            # its real merged top-k, the node passes vectors on unchanged.
            return g_prev
        real_topk = merge_topk(g_prev, self._mergeable_values(g_prev), self.k)
        contributed = multiset_difference(real_topk, g_prev)
        m = len(contributed)
        if m == 0:
            # Case 1: nothing of ours belongs in the current top-k.
            return g_prev
        p_r = self.params.probability(round_number)
        if self.rng.random() >= p_r:
            self.has_inserted = True
            self._inserted.update(contributed)
            per_round = self._inserted_by_round.setdefault(round_number, Counter())
            per_round.update(contributed)
            if self.revealed_round is None:
                self.revealed_round = round_number
            return real_topk
        self.randomized_rounds.append(round_number)
        return self._randomized_output(g_prev, real_topk, m)

    def _randomized_output(
        self, g_prev: list[float], real_topk: list[float], m: int
    ) -> list[float]:
        """The probability-``P_r`` branch of Algorithm 2."""
        k = self.k
        kth_real = real_topk[k - 1]  # G_i'(r)[k], 1-based in the paper
        anchor = g_prev[k - m]  # G_{i-1}(r)[k-m+1], 1-based in the paper
        low = min(kth_real - self.params.delta, anchor)
        low = max(low, self.domain.low)  # never inject out-of-domain values
        high = kth_real
        if low >= high:
            # Possible only when kth_real crowds the domain floor; the range
            # the paper prescribes is empty, so the only correct-and-safe
            # noise is the domain floor itself (still < any real contributor).
            noise = [self.domain.low] * m
        else:
            noise = [
                self.params.noise.draw(
                    self.rng, low, high, integral=self.domain.integral
                )
                for _ in range(m)
            ]
        head = g_prev[: k - m]
        tail = sorted(noise, reverse=True)
        output = head + tail
        # The noise is < G_i'(r)[k] <= g_prev[k-m] (the smallest kept head
        # value), so the spliced vector is sorted by construction; validate
        # rather than silently repair.
        validate_vector(output, k)
        return output
