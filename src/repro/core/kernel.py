"""Message-free fast path for the ring protocols.

The transport substrate (:mod:`repro.network.transport`) earns its keep when
a run needs what only a simulated network can provide: encryption
round-trips, latency models, failure injection, multi-query interleaving.
The Monte Carlo trials behind the paper's figures need none of that — they
run thousands of failure-free, unencrypted, single-query protocols and read
back values, rounds, counters and the event log.  On that workload the
simulation stack is pure overhead: every hop constructs a ``Message``
(JSON-validating its payload), pushes it through a delivery heap, serializes
it for byte accounting, and records it into two stats/event-log pairs.

This module executes the same protocols as a tight in-process loop over the
ring: no ``Message`` objects, no serialization, no heap, no per-delivery
double accounting.  It is not an approximation.  The kernel replays the
exact RNG draw order of :class:`~repro.core.session.ProtocolSession` — ring
mapping, starter selection, per-node algorithm streams in canonical node
order, Eq. 2 coin flips and noise draws in token order, per-round remaps —
and reconstructs the byte accounting from the wire format's arithmetic
instead of serializing, so the :class:`~repro.core.results.ProtocolResult`
is **bit-identical** to the transport-backed path under the same seed:
final vector, snapshots, ring history, traffic stats, simulated clock, and
every event-log observation (message ids aside, which are process-global).

Configs the kernel cannot honor exactly are refused loudly
(:class:`KernelUnsupported`): encryption, custom latency models, and any
real failure injector.  Callers that need those pin ``backend="session"``.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.events import EventLog, Observation
from ..network.failures import NullFailureInjector
from ..network.message import next_message_id
from ..network.ring import RingTopology
from ..network.stats import TrafficStats
from ..observability.trace import TraceContext
from .results import ProtocolResult
from .session import (
    NAIVE,
    PROBABILISTIC,
    DriverError,
    PreparedQuery,
    build_algorithm,
    prepare_query_vectors,
)
from .vectors import validate_vector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (driver imports us)
    from ..database.query import TopKQuery
    from .driver import RunConfig

__all__ = [
    "KernelPhaseSample",
    "KernelRun",
    "KernelUnsupported",
    "execute",
    "kernel_refusal",
    "run_kernel_on_vectors",
    "set_phase_sink",
]


class KernelUnsupported(DriverError):
    """The config needs the transport substrate; run ``backend="session"``."""


#: The transport's default link delay (``constant_latency()``).  The kernel
#: advances its clock by this per hop, in the same float-addition order the
#: transport would, so ``simulated_seconds`` stays bit-identical.
_LATENCY = 0.001

# -- wire-format arithmetic ---------------------------------------------------
#
# ``Message.encode`` is a sort_keys/compact json.dumps of
# ``{payload: {vector: [...]}, receiver, round, sender, type}`` (single-query
# traffic has no ``query`` field).  Its byte length therefore decomposes into
# a fixed template plus the variable parts: the two JSON-quoted endpoint ids,
# the round's digits, the type string, and the vector body
# ``[v1,...,vm]`` = ``1 + m + sum(len(repr(v)))`` (json renders floats with
# ``float.__repr__``, and the whole body is ASCII).  The fixed part is
# measured from a probe encoding rather than hand-counted.
_PROBE = json.dumps(
    {
        "payload": {"vector": [0.5]},
        "receiver": "r",
        "round": 1,
        "sender": "s",
        "type": "t",
    },
    separators=(",", ":"),
    sort_keys=True,
)
_FIXED = (
    len(_PROBE)
    - len(json.dumps("r"))
    - len(json.dumps("s"))
    - len("1")
    - len("t")
    - (2 + len(repr(0.5)))
)
_TOKEN_LEN = len("token")
_RESULT_LEN = len("result")

#: JSON-encoded lengths of node ids, cached process-wide: trial harnesses
#: reuse the same ids ("node0".."nodeN") across thousands of runs.
_ID_LEN_CACHE: dict[str, int] = {}


def _id_len(node_id: str) -> int:
    length = _ID_LEN_CACHE.get(node_id)
    if length is None:
        length = _ID_LEN_CACHE[node_id] = len(json.dumps(node_id))
    return length


def _vector_bytes(vector: tuple[float, ...]) -> int:
    """Encoded length of the payload's ``[v1,...,vm]`` body."""
    total = 1 + len(vector)
    for v in vector:
        total += len(repr(v))
    return total


# -- lazy event log -----------------------------------------------------------

class _LazyKernelLog(EventLog):
    """Event log that materializes :class:`Observation` objects on first read.

    The kernel's hot loop records each ring pass as one compact tuple
    ``(kind, round, walk order, vectors)`` instead of building a frozen
    dataclass per hop.  Most figure workloads (precision, rounds,
    communication cost) never read the log at all, so the per-observation
    construction — and the process-global message-id draws — happen only
    when an adversary view, ``inputs_of``, or serialization first touches
    it.  Once materialized, the observations are cached and bit-identical
    to what the transport-backed path records (message ids aside).
    """

    def __init__(
        self,
        passes: list[tuple[str, int, tuple[str, ...], object]],
        query_id: str = "",
    ):
        self._passes = passes
        self._query = query_id
        self._cache: list[Observation] | None = None

    @property
    def _observations(self) -> list[Observation]:
        cache = self._cache
        if cache is None:
            cache = self._cache = self._materialize()
        return cache

    def _materialize(self) -> list[Observation]:
        obs_list: list[Observation] = []
        append = obs_list.append
        obs_new = Observation.__new__
        set_dict = object.__setattr__
        query_id = self._query
        for kind, round_number, order, vectors in self._passes:
            n = len(order)
            for j in range(n):
                # ``order`` is the ring walk from the starter, so hop j goes
                # order[j] -> order[j+1] and the pass closes at order[0].
                obs = obs_new(Observation)
                set_dict(
                    obs,
                    "__dict__",
                    {
                        "round": round_number,
                        "sender": order[j],
                        "receiver": order[j + 1] if j + 1 < n else order[0],
                        "vector": vectors if kind == "result" else vectors[j],
                        "msg_id": next_message_id(),
                        "kind": kind,
                        "query": query_id,
                    },
                )
                append(obs)
        return obs_list


# -- per-phase profiling ------------------------------------------------------

@dataclass(frozen=True)
class KernelPhaseSample:
    """Where one kernel run spent its time (``--timing`` observability)."""

    setup_seconds: float
    ring_seconds: float
    round_loop_seconds: float
    finalize_seconds: float
    rounds: int
    nodes: int


#: When set, every kernel run reports a :class:`KernelPhaseSample` here.
#: ``None`` (the default) keeps ``time.perf_counter`` off the hot path.
_phase_sink: Callable[[KernelPhaseSample], None] | None = None


def set_phase_sink(
    sink: Callable[[KernelPhaseSample], None] | None,
) -> Callable[[KernelPhaseSample], None] | None:
    """Install a phase-sample sink; returns the previous one (for restoring)."""
    global _phase_sink
    previous = _phase_sink
    _phase_sink = sink
    return previous


def phase_sink() -> Callable[[KernelPhaseSample], None] | None:
    """The installed phase sink, if any.

    The trial runner checks this: per-phase profiling is a property of the
    *scalar* kernel's run structure, so profiled chunks stay on the solo
    path instead of the batch engine.
    """
    return _phase_sink


# -- execution ----------------------------------------------------------------

@dataclass(frozen=True)
class KernelRun:
    """One kernel execution: the result plus the per-node algorithm objects.

    ``algorithms`` (node id -> local computation module) exposes the
    diagnostic counters — ``randomized_rounds``, ``revealed_round`` — that
    the session path keeps on its nodes; the parity tests compare them.
    """

    result: ProtocolResult
    algorithms: dict[str, object]


def kernel_refusal(config: "RunConfig") -> str | None:
    """Why the kernel cannot run ``config`` bit-identically; None if it can.

    The kernel has no wire, no delivery clock beyond the constant default,
    and no drop/crash machinery, so it refuses rather than approximate.
    """
    if config.encrypt:
        return "encryption needs the transport's cipher round-trip"
    if config.latency is not None:
        return "custom latency models need the transport's delivery clock"
    failures = config.failures
    if failures is not None and not isinstance(failures, NullFailureInjector):
        return "failure injection needs transport drops and ring repair"
    return None


def _synthesize_trace(
    trace: TraceContext,
    *,
    protocol: str,
    total_rounds: int,
    starter: str,
    k: int,
    initial_ring: RingTopology,
    n: int,
    log_passes: list[tuple[str, int, tuple[str, ...], object]],
) -> None:
    """Emit the spans a traced :class:`ProtocolSession` run would record.

    The kernel never delivers a message, so spans are reconstructed after
    the fact from the per-pass log: one protocol span, one span per round,
    one hop event per (synthetic) delivery, and a broadcast span for the
    result circulation.  Open/close order and the ``clock += _LATENCY``
    float-addition chain both replicate the transport-backed path exactly,
    so under the same seed the two backends export byte-identical JSONL.
    """
    tracer = trace.tracer
    capture = tracer.capture_values
    t = 0.0
    protocol_ctx = tracer.open_span(
        trace,
        "protocol",
        at=t,
        kind="protocol",
        attrs={
            "protocol": protocol,
            "nodes": n,
            "rounds": total_rounds,
            "starter": starter,
            "k": k,
            "ring": list(initial_ring.members),
        },
    )
    round_ctx = tracer.open_span(
        protocol_ctx, "round", at=t, kind="round", attrs={"round": 1}
    )
    broadcast_ctx: TraceContext | None = None
    for kind, round_number, order, vectors in log_passes:
        parent = broadcast_ctx if kind == "result" else round_ctx
        for j in range(n):
            t += _LATENCY
            attrs = {
                "sender": order[j],
                "receiver": order[j + 1] if j + 1 < n else order[0],
                "round": round_number,
                "type": kind,
            }
            if capture:
                hop_vector = vectors if kind == "result" else vectors[j]
                attrs["vector"] = [float(v) for v in hop_vector]
            tracer.event(parent, "hop", at=t, kind="message", attrs=attrs)
        if kind == "token":
            tracer.close_span(round_ctx, at=t)
            if round_number < total_rounds:
                round_ctx = tracer.open_span(
                    protocol_ctx,
                    "round",
                    at=t,
                    kind="round",
                    attrs={"round": round_number + 1},
                )
            else:
                broadcast_ctx = tracer.open_span(
                    protocol_ctx,
                    "broadcast",
                    at=t,
                    kind="round",
                    attrs={"round": round_number + 1},
                )
    if broadcast_ctx is not None:
        tracer.close_span(broadcast_ctx, at=t)
    tracer.close_span(protocol_ctx, at=t)


def execute(
    prepared: PreparedQuery,
    config: "RunConfig",
    *,
    trace: TraceContext | None = None,
    query_id: str = "",
) -> KernelRun:
    """Run one protocol on the fast path; bit-identical to a session run.

    ``query_id`` tags the run the way the multi-query transport does: each
    message grows by the JSON ``query`` field, and the event log and
    per-query stats carry the tag.  The empty default is the classic
    single-query traffic.
    """
    reason = kernel_refusal(config)
    if reason is not None:
        raise KernelUnsupported(
            f"kernel backend cannot honor this config exactly: {reason}; "
            'use backend="session"'
        )

    sink = _phase_sink
    timed = sink is not None
    t0 = time.perf_counter() if timed else 0.0

    # Setup, in the session's exact RNG draw order: run RNG, round count,
    # then (ring, starter) and per-node algorithm streams below.
    rng = config.rng()
    params = config.params
    query = prepared.query
    node_ids = sorted(prepared.vectors)
    if config.protocol == PROBABILISTIC:
        total_rounds = params.resolved_rounds()
    else:
        total_rounds = 1  # the naive protocols are single-round

    t1 = time.perf_counter() if timed else 0.0

    if config.ring_builder is not None:
        ring = config.ring_builder(list(node_ids), rng)
        if sorted(ring.members) != node_ids:
            raise DriverError(
                "ring_builder must arrange exactly the participating nodes"
            )
    else:
        ring = RingTopology.random(node_ids, rng)
    initial_ring = ring
    if config.protocol == NAIVE:
        # Fixed starting scheme: the first node in canonical order starts.
        starter = node_ids[0]
    else:
        # Randomized starting scheme (initialization module, Section 3.3).
        starter = rng.choice(node_ids)

    t2 = time.perf_counter() if timed else 0.0

    algorithms = {
        node_id: build_algorithm(
            config.protocol, prepared.vectors[node_id], query, params, rng
        )
        for node_id in node_ids
    }
    if config.initial_vector is not None:
        start_vector = [float(v) for v in config.initial_vector]
        validate_vector(start_vector, query.k)
        if any(v not in query.domain for v in start_vector):
            raise DriverError("initial_vector contains out-of-domain values")
    else:
        start_vector = [float(v) for v in query.identity_vector()]

    t3 = time.perf_counter() if timed else 0.0

    n = len(node_ids)
    # Every ring pass has each node send once and receive once, so the
    # endpoint-id bytes per pass are a constant, and a round's total is
    # ``n * (template + round digits + type) + id bytes + per-hop vectors``.
    ids_bytes = 2 * sum(_id_len(node_id) for node_id in node_ids)
    # Tagged (multi-query) traffic pays ``,"query":<json id>`` per message.
    query_extra = 9 + len(json.dumps(query_id)) if query_id else 0
    clock = 0.0
    bytes_total = 0
    # One compact record per ring pass; the lazy event log expands them
    # into per-hop observations only if the log is ever read.
    log_passes: list[tuple[str, int, tuple[str, ...], object]] = []
    log_pass = log_passes.append
    snapshots: dict[int, list[float]] = {}
    ring_history: dict[int, tuple[str, ...]] = {1: ring.members}
    remap = params.remap_each_round
    #: (ring members, passes made on that ring) — per-link counts fall out
    #: of this at the end without touching a Counter on the hot path.
    ring_passes: list[tuple[tuple[str, ...], int]] = [(ring.members, 0)]
    # Per-hop vector caches.  ``changed`` tracks whether any compute ran
    # since the last hop: when it did not, the vector object is untouched
    # and both the observation tuple and its encoded length carry over.
    # When it did, equal content still implies equal reprs — except for
    # pairs that compare equal with different reprs: 0.0 vs -0.0, and int
    # vs float (integral noise draws enter the vector as ints).  Any zero
    # disables the content cache; any non-float forces a recount and a
    # float coercion, because the session's receiving node re-reads every
    # payload as floats (``ProtocolNode._handle_token``) — on the wire an
    # int lives for exactly one hop.
    prev_tuple: tuple[float, ...] | None = None
    prev_vec_bytes = 0
    changed = True
    # Under the paper's insert-once rule, a node that has revealed passes
    # every later token on unchanged; ``compute`` would validate, copy and
    # return with zero RNG draws, so skipping the call is bit-identical.
    skip_inserted = params.insert_once and config.protocol == PROBABILISTIC

    # Round loop.  Token-passing order is the ring walk from the starter;
    # each hop is one delivery: observe, account, then the receiver computes
    # (except the starter, who closes the round).  The starter's compute for
    # the *next* round happens after the end-of-round snapshot and remap,
    # exactly as the session's round hook sequences it.
    vector = algorithms[starter].compute(list(start_vector), 1)
    for round_number in range(1, total_rounds + 1):
        order = ring.walk_from(starter)
        ring_passes[-1] = (ring_passes[-1][0], ring_passes[-1][1] + 1)
        bytes_total += (
            n * (_FIXED + len(str(round_number)) + _TOKEN_LEN + query_extra)
            + ids_bytes
        )
        hop_vectors: list[tuple[float, ...]] = []
        record_hop = hop_vectors.append
        # ``order`` starts at the starter, so hop j delivers to order[j+1];
        # receivers order[1..n-1] compute, and the closing hop back to the
        # starter (who already computed this round) is delivery only.
        for j in range(1, n):
            clock += _LATENCY
            if changed:
                sent = tuple(vector)
                coerce = False
                for v in sent:
                    if type(v) is not float:
                        coerce = True
                        break
                if coerce or sent != prev_tuple or 0.0 in sent:
                    sent_bytes = _vector_bytes(sent)
                else:
                    sent_bytes = prev_vec_bytes
                bytes_total += sent_bytes
                record_hop(sent)
                if coerce:
                    vector = [float(v) for v in sent]
                    prev_tuple = tuple(vector)
                    prev_vec_bytes = _vector_bytes(prev_tuple)
                else:
                    prev_tuple = sent
                    prev_vec_bytes = sent_bytes
                changed = False
            else:
                bytes_total += prev_vec_bytes
                record_hop(prev_tuple)
            algorithm = algorithms[order[j]]
            if not skip_inserted or not algorithm.has_inserted:
                vector = algorithm.compute(vector, round_number)
                changed = True
        clock += _LATENCY
        if changed:
            sent = tuple(vector)
            coerce = False
            for v in sent:
                if type(v) is not float:
                    coerce = True
                    break
            if coerce or sent != prev_tuple or 0.0 in sent:
                sent_bytes = _vector_bytes(sent)
            else:
                sent_bytes = prev_vec_bytes
            bytes_total += sent_bytes
            record_hop(sent)
            if coerce:
                vector = [float(v) for v in sent]
                prev_tuple = tuple(vector)
                prev_vec_bytes = _vector_bytes(prev_tuple)
            else:
                prev_tuple = sent
                prev_vec_bytes = sent_bytes
            changed = False
        else:
            bytes_total += prev_vec_bytes
            record_hop(prev_tuple)
        log_pass(("token", round_number, order, hop_vectors))
        snapshots[round_number] = list(vector)
        if round_number < total_rounds:
            if remap:
                ring = ring.remap(rng)
                ring_history[round_number + 1] = ring.members
                ring_passes.append((ring.members, 0))
            algorithm = algorithms[starter]
            if not skip_inserted or not algorithm.has_inserted:
                vector = algorithm.compute(vector, round_number + 1)
                changed = True

    # Result broadcast: the final vector circulates once along the current
    # ring in round ``total_rounds + 1``; nobody computes on it.
    final_vector = list(vector)
    final_tuple = tuple(vector)
    result_round = total_rounds + 1
    bytes_total += (
        n * (_FIXED + len(str(result_round)) + _RESULT_LEN + query_extra)
        + ids_bytes
        + n * _vector_bytes(final_tuple)
    )
    ring_passes[-1] = (ring_passes[-1][0], ring_passes[-1][1] + 1)
    log_pass(("result", result_round, ring.walk_from(starter), final_tuple))
    for _ in range(n):
        clock += _LATENCY

    t4 = time.perf_counter() if timed else 0.0

    if trace is not None:
        _synthesize_trace(
            trace,
            protocol=config.protocol,
            total_rounds=total_rounds,
            starter=starter,
            k=query.k,
            initial_ring=initial_ring,
            n=n,
            log_passes=log_passes,
        )

    event_log = _LazyKernelLog(log_passes, query_id)

    per_link: Counter = Counter()
    for members, passes in ring_passes:
        if passes:
            for i, sender in enumerate(members):
                per_link[(sender, members[(i + 1) % n])] += passes
    stats = TrafficStats(
        messages_total=n * (total_rounds + 1),
        bytes_total=bytes_total,
        per_link=per_link,
        per_round=Counter({r: n for r in range(1, total_rounds + 2)}),
        per_type=Counter({"token": n * total_rounds, "result": n}),
        per_query=Counter({query_id: n * (total_rounds + 1)}),
    )
    result = ProtocolResult(
        query=query,
        protocol=config.protocol,
        final_vector=final_vector,
        ring_order=initial_ring.members,
        starter=starter,
        local_vectors={
            node: sorted(v, reverse=True) for node, v in prepared.vectors.items()
        },
        round_snapshots=snapshots,
        event_log=event_log,
        stats=stats,
        ring_history=ring_history,
        simulated_seconds=clock,
        schedule=(params.schedule if config.protocol == PROBABILISTIC else None),
    )
    result.negated = prepared.negated
    result.original_query = prepared.original_query

    if timed:
        t5 = time.perf_counter()
        sink(
            KernelPhaseSample(
                setup_seconds=(t1 - t0) + (t3 - t2),
                ring_seconds=t2 - t1,
                round_loop_seconds=t4 - t3,
                finalize_seconds=t5 - t4,
                rounds=total_rounds,
                nodes=n,
            )
        )
    return KernelRun(result=result, algorithms=algorithms)


def run_kernel_on_vectors(
    local_vectors: dict[str, list[float]],
    query: "TopKQuery",
    config: "RunConfig | None" = None,
    *,
    trace: TraceContext | None = None,
) -> ProtocolResult:
    """Fast-path counterpart of :func:`~repro.core.driver.run_protocol_on_vectors`."""
    if config is None:
        from .driver import RunConfig

        config = RunConfig()
    prepared = prepare_query_vectors(local_vectors, query)
    return execute(prepared, config, trace=trace).result
