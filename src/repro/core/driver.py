"""Protocol driver: initialization module, round loop, and public entry points.

This wires the paper's components together (Section 3.2): the ring topology,
the node-to-successor communication scheme, the per-node local computation
module, and the initialization module that picks the starting node and the
randomization parameters.

The driver is deliberately synchronous-deterministic: given a seeded RNG it
produces a bit-identical run, which is what the experiment harness and the
property-based tests rely on.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from ..database.database import PrivateDatabase, common_query
from ..database.query import Domain, TopKQuery
from ..network.crypto import Keyring
from ..network.failures import FailureInjector
from ..network.message import result_message, token_message
from ..network.node import ProtocolNode
from ..network.ring import RingError, RingTopology
from ..network.transport import InMemoryTransport, LatencyModel
from .naive import NaiveTopKAlgorithm
from .params import ParamError, ProtocolParams
from .results import ProtocolResult
from .topk_protocol import ProbabilisticTopKAlgorithm
from .vectors import pad_to_k, validate_vector

#: Protocol identifiers used throughout the experiments.
PROBABILISTIC = "probabilistic"
NAIVE = "naive"
ANONYMOUS_NAIVE = "anonymous-naive"
PROTOCOLS = (PROBABILISTIC, NAIVE, ANONYMOUS_NAIVE)


class DriverError(RuntimeError):
    """Raised when a run is misconfigured or fails to terminate."""


#: Signature of a custom ring constructor: (node ids, run RNG) -> ring.
RingBuilder = Callable[[list[str], random.Random], RingTopology]


@dataclass(frozen=True)
class RunConfig:
    """Deployment-level options for one protocol run."""

    protocol: str = PROBABILISTIC
    params: ProtocolParams = field(default_factory=ProtocolParams.paper_defaults)
    encrypt: bool = False
    latency: LatencyModel | None = None
    failures: FailureInjector | None = None
    seed: int | None = None
    #: Custom ring construction, e.g. the Section 4.3 trust-aware layout
    #: (:func:`repro.network.trust.build_trusted_ring`).  Receives the node
    #: ids and the run RNG; must return a ring over exactly those ids.
    #: ``None`` uses the paper's uniformly random mapping.
    ring_builder: "RingBuilder | None" = None
    #: Seed for the global vector instead of the domain identity — must be
    #: *public* information (e.g. a previous epoch's result, see
    #: :mod:`repro.extensions.monitoring`).  Callers are responsible for the
    #: seed's values actually being held by participants, or the final
    #: result may contain stale entries nothing can displace.
    initial_vector: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise DriverError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOLS}"
            )

    def rng(self) -> random.Random:
        return random.Random(self.seed)


def run_topk_query(
    databases: list[PrivateDatabase],
    query: TopKQuery,
    config: RunConfig | None = None,
) -> ProtocolResult:
    """Answer ``query`` across ``databases`` with the configured protocol.

    This is the main public entry point.  It validates the well-matched-schema
    precondition, extracts each node's local top-k vector, and delegates to
    :func:`run_protocol_on_vectors`.
    """
    config = config or RunConfig()
    common_query(databases, query)
    owners = [db.owner for db in databases]
    if len(set(owners)) != len(owners):
        raise DriverError(f"duplicate database owners: {owners}")
    local_vectors = {db.owner: db.local_topk(query) for db in databases}
    return run_protocol_on_vectors(local_vectors, query, config)


def run_protocol_on_vectors(
    local_vectors: dict[str, list[float]],
    query: TopKQuery,
    config: RunConfig | None = None,
) -> ProtocolResult:
    """Run the protocol when each party's local top-k vector is already known.

    ``local_vectors`` maps node id to that node's values for the queried
    attribute (any number, any order); each node participates with its local
    top-k of them, per the protocol's initial step ("each node first sorts
    its values and takes the local set of topk values", Section 3.4).  The
    experiment harness uses this entry point directly with synthetic
    workloads.
    """
    config = config or RunConfig()
    if len(local_vectors) < 3:
        raise DriverError(
            f"the protocol requires n >= 3 nodes, got {len(local_vectors)}"
        )
    original_query = query
    vectors = {node: [float(v) for v in values] for node, values in local_vectors.items()}
    negated = query.smallest
    if negated:
        # Bottom-k reduces to top-k on negated values over the mirrored domain.
        vectors = {n: [-v for v in vs] for n, vs in vectors.items()}
        query = TopKQuery(
            table=query.table,
            attribute=query.attribute,
            k=query.k,
            domain=Domain(-query.domain.high, -query.domain.low, query.domain.integral),
            smallest=False,
        )
    # The protocol's initial step: sort locally, keep the local top-k.
    vectors = {n: sorted(vs, reverse=True)[: query.k] for n, vs in vectors.items()}
    result = _run_internal(vectors, query, config)
    result.negated = negated
    result.original_query = original_query
    return result


def _build_algorithm(
    protocol: str,
    values: list[float],
    query: TopKQuery,
    params: ProtocolParams,
    rng: random.Random,
):
    padded = pad_to_k(values, query.k, float(query.domain.low))
    if protocol == PROBABILISTIC:
        # Each node gets an independent RNG stream so one node's draws cannot
        # perturb another's (and runs stay reproducible under refactoring).
        node_rng = random.Random(rng.getrandbits(64))
        return ProbabilisticTopKAlgorithm(padded, query.k, params, query.domain, node_rng)
    return NaiveTopKAlgorithm(padded, query.k)


def _run_internal(
    local_vectors: dict[str, list[float]],
    query: TopKQuery,
    config: RunConfig,
) -> ProtocolResult:
    rng = config.rng()
    params = config.params
    node_ids = sorted(local_vectors)

    if config.protocol == PROBABILISTIC:
        rounds = params.resolved_rounds()
    else:
        rounds = 1  # the naive protocols are single-round by construction

    if config.ring_builder is not None:
        ring = config.ring_builder(list(node_ids), rng)
        if sorted(ring.members) != node_ids:
            raise DriverError(
                "ring_builder must arrange exactly the participating nodes"
            )
    else:
        ring = RingTopology.random(node_ids, rng)
    keyring = Keyring() if config.encrypt else None
    transport = InMemoryTransport(
        latency=config.latency, keyring=keyring, failures=config.failures
    )

    if config.protocol == NAIVE:
        # Fixed starting scheme: the first node in canonical order starts.
        starter = node_ids[0]
    else:
        # Randomized starting scheme (initialization module, Section 3.3).
        starter = rng.choice(node_ids)

    nodes: dict[str, ProtocolNode] = {}
    for node_id in node_ids:
        algorithm = _build_algorithm(
            config.protocol, local_vectors[node_id], query, params, rng
        )
        nodes[node_id] = ProtocolNode(
            node_id,
            algorithm,
            transport,
            is_starter=(node_id == starter),
            total_rounds=rounds,
        )

    state = _RunState(ring=ring)

    def apply_ring(current: RingTopology) -> None:
        # Crashed nodes may have been spliced out; only rewire members.
        for node_id in node_ids:
            if node_id in current:
                nodes[node_id].successor = current.successor(node_id)

    apply_ring(ring)

    snapshots: dict[int, list[float]] = {}
    ring_history: dict[int, tuple[str, ...]] = {1: ring.members}

    def on_round_complete(round_number: int) -> None:
        # Called by the starter when the token comes back around.  Snapshot
        # the end-of-round global vector, then optionally remap the ring for
        # the next round (Section 4.3 collusion countermeasure).
        incoming = transport.event_log.inputs_of(starter).get(round_number)
        if incoming is not None:
            snapshots[round_number] = [float(v) for v in incoming]
        if params.remap_each_round and round_number < rounds:
            state.ring = state.ring.remap(rng)
            apply_ring(state.ring)
            ring_history[round_number + 1] = state.ring.members

    if config.initial_vector is not None:
        start_vector = [float(v) for v in config.initial_vector]
        validate_vector(start_vector, query.k)
        if any(v not in query.domain for v in start_vector):
            raise DriverError("initial_vector contains out-of-domain values")
    else:
        start_vector = [float(v) for v in query.identity_vector()]

    nodes[starter].round_hook = on_round_complete
    nodes[starter].start(start_vector)
    transport.run_until_idle()
    _recover_from_failures(
        nodes, state, transport, config, query, starter, apply_ring
    )

    final = nodes[starter].final_result
    if final is None:
        raise DriverError("protocol did not terminate with a result")
    survivors = [
        n
        for n in node_ids
        if config.failures is None or not config.failures.is_crashed(n)
    ]
    missing = [n for n in survivors if nodes[n].final_result is None]
    if missing:
        raise DriverError(f"nodes never learned the final result: {missing}")

    return ProtocolResult(
        query=query,
        protocol=config.protocol,
        final_vector=final,
        ring_order=ring.members,
        starter=starter,
        local_vectors={n: sorted(v, reverse=True) for n, v in local_vectors.items()},
        round_snapshots=snapshots,
        event_log=transport.event_log,
        stats=transport.stats,
        ring_history=ring_history,
        simulated_seconds=transport.now,
        schedule=params.schedule if config.protocol == PROBABILISTIC else None,
    )


@dataclass
class _RunState:
    """Mutable ring reference shared between the round hook and the driver."""

    ring: RingTopology


def _recover_from_failures(
    nodes: dict[str, ProtocolNode],
    state: _RunState,
    transport: InMemoryTransport,
    config: RunConfig,
    query: TopKQuery,
    starter: str,
    apply_ring,
) -> None:
    """Ring-repair recovery (Section 3.2) and loss retransmission.

    A crash-stopped node swallows the token and the protocol stalls.  The
    paper's remedy: "the ring can be reconstructed from scratch or simply by
    connecting the predecessor and successor of the failed node."  We take
    the splice approach: drop every crashed node from the ring, rewire the
    survivors, and have the starting node re-emit its output for the round
    that stalled (survivors that already processed it simply treat the
    replayed token per their local algorithm — correctness is unaffected
    because outputs never exceed the true top-k and insertion is
    idempotent).  A crashed *starting* node is unrecoverable by splicing
    (the paper's from-scratch rebuild covers it) and reported loudly.

    Lossy links (a drop probability with no crash) use the same machinery
    minus the splice: the starter retransmits the stalled round's token, with
    a bounded retry budget so a pathological loss rate still fails loudly.
    """
    failures = config.failures
    if failures is None:
        return
    lossy = getattr(failures, "drop_probability", 0.0) > 0.0
    attempts = 0
    while nodes[starter].final_result is None:
        crashed = [n for n in state.ring.members if failures.is_crashed(n)]
        if not crashed and not lossy:
            return  # nothing to repair; let the caller report the stall
        if failures.is_crashed(starter):
            raise DriverError(
                "the starting node crashed; the ring must be rebuilt from "
                "scratch with a fresh initialization"
            )
        attempts += 1
        # Each retransmission restarts one stalled round, so the budget
        # scales with the round count; it only bounds pathological loss
        # rates, not normal operation.
        retry_budget = max(len(nodes), 16, 8 * nodes[starter].total_rounds)
        if attempts > retry_budget:
            raise DriverError(
                "ring repair / retransmission did not converge"
            )
        try:
            for failed in crashed:
                state.ring = state.ring.repair(failed)
        except RingError as exc:
            raise DriverError(f"cannot repair ring: {exc}") from exc
        apply_ring(state.ring)
        # Values inserted into the lost token segment are gone; survivors
        # must be allowed to contribute again, and must *forget* the
        # insertions the replay erases (those of the stalled round) or they
        # would mis-attribute equal surviving values as their own.  The
        # starter's stalled-round insertion is the exception: it is embodied
        # in the replayed vector itself.
        stalled_round = nodes[starter].rounds_completed + 1
        for node_id, node in nodes.items():
            if not failures.is_crashed(node_id):
                rearm = getattr(node.algorithm, "rearm", None)
                if rearm is not None:
                    rearm(None if node_id == starter else stalled_round)
        # Replay exactly what the starter last emitted for the stalled
        # round; the node-side copy survives even when the transport dropped
        # the send before any log saw it.
        if (
            nodes[starter].last_sent_vector is not None
            and nodes[starter].last_sent_round == stalled_round
        ):
            vector = list(nodes[starter].last_sent_vector)
        else:
            vector = [float(v) for v in query.identity_vector()]
        transport.send(
            token_message(
                starter, state.ring.successor(starter), stalled_round, vector
            )
        )
        transport.run_until_idle()

    # The token phase finished; make sure the result broadcast also survived
    # (it too can be eaten by a crash or a lossy link).
    final = nodes[starter].final_result
    rebroadcasts = 0
    while True:
        survivors = [n for n in state.ring.members if not failures.is_crashed(n)]
        if all(nodes[n].final_result is not None for n in survivors):
            return
        rebroadcasts += 1
        if rebroadcasts > max(len(nodes), 16):
            raise DriverError("result broadcast did not converge")
        try:
            for failed in [n for n in state.ring.members if failures.is_crashed(n)]:
                state.ring = state.ring.repair(failed)
        except RingError as exc:
            raise DriverError(f"cannot repair ring: {exc}") from exc
        apply_ring(state.ring)
        transport.send(
            result_message(
                starter,
                state.ring.successor(starter),
                nodes[starter].rounds_completed + 1,
                list(final),
            )
        )
        transport.run_until_idle()


def derived_rounds(params: ProtocolParams) -> int:
    """Expose the Equation 4 round derivation for callers and reports."""
    try:
        return params.resolved_rounds()
    except ParamError as exc:
        raise DriverError(str(exc)) from exc


def with_protocol(config: RunConfig, protocol: str) -> RunConfig:
    """A copy of ``config`` running a different protocol (for comparisons)."""
    return replace(config, protocol=protocol)
