"""Protocol driver: initialization module, round loop, and public entry points.

This wires the paper's components together (Section 3.2): the ring topology,
the node-to-successor communication scheme, the per-node local computation
module, and the initialization module that picks the starting node and the
randomization parameters.

The round loop itself lives in :mod:`repro.core.session` as a resumable
:class:`~repro.core.session.ProtocolSession`, so that many independent
queries can interleave their tokens on one shared transport (the multi-query
pipelining path used by ``Federation.execute_many``).  The single-query entry
points below run one session on a dedicated transport and are bit-identical
to the pre-session driver: given a seeded RNG a run produces a bit-identical
result, which is what the experiment harness and the property-based tests
rely on.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from ..database.database import PrivateDatabase, common_query
from ..database.query import TopKQuery
from ..network.crypto import Keyring
from ..network.failures import FailureInjector
from ..network.transport import (
    DEFAULT_MAX_DELIVERIES,
    InMemoryTransport,
    LatencyModel,
)
from ..observability.runtime import current_tracer
from ..observability.trace import TraceContext
from .batch import execute_many as execute_batch
from .kernel import KernelUnsupported, kernel_refusal, run_kernel_on_vectors
from .params import ParamError, ProtocolParams
from .results import ProtocolResult
from .session import (
    ANONYMOUS_NAIVE,
    NAIVE,
    PROBABILISTIC,
    PROTOCOLS,
    DriverError,
    ProtocolSession,
    RingBuilder,
    prepare_query_vectors,
)

__all__ = [
    "ANONYMOUS_NAIVE",
    "AUTO",
    "BACKENDS",
    "KERNEL",
    "NAIVE",
    "PROBABILISTIC",
    "PROTOCOLS",
    "SESSION",
    "DriverError",
    "KernelUnsupported",
    "RingBuilder",
    "RunConfig",
    "derived_rounds",
    "run_many_on_vectors",
    "run_protocol_on_vectors",
    "run_topk_queries",
    "run_topk_query",
    "with_protocol",
]

#: Execution backends for single-query runs.  ``SESSION`` is the transport-
#: backed simulation (encryption, latency, failures, full accounting);
#: ``KERNEL`` is the message-free fast path (:mod:`repro.core.kernel`),
#: bit-identical on the configs it accepts and refusing the rest.
SESSION = "session"
KERNEL = "kernel"
BACKENDS = (SESSION, KERNEL)
#: Batch-entry-point default: the vectorized kernel when every config is
#: transport-free, the session path otherwise (see :func:`run_many_on_vectors`).
AUTO = "auto"


@dataclass(frozen=True)
class RunConfig:
    """Deployment-level options for one protocol run."""

    protocol: str = PROBABILISTIC
    params: ProtocolParams = field(default_factory=ProtocolParams.paper_defaults)
    encrypt: bool = False
    latency: LatencyModel | None = None
    failures: FailureInjector | None = None
    seed: int | None = None
    #: Custom ring construction, e.g. the Section 4.3 trust-aware layout
    #: (:func:`repro.network.trust.build_trusted_ring`).  Receives the node
    #: ids and the run RNG; must return a ring over exactly those ids.
    #: ``None`` uses the paper's uniformly random mapping.
    ring_builder: "RingBuilder | None" = None
    #: Seed for the global vector instead of the domain identity — must be
    #: *public* information (e.g. a previous epoch's result, see
    #: :mod:`repro.extensions.monitoring`).  Callers are responsible for the
    #: seed's values actually being held by participants, or the final
    #: result may contain stale entries nothing can displace.
    initial_vector: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise DriverError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOLS}"
            )

    def rng(self) -> random.Random:
        return random.Random(self.seed)


def _transport_for(config: RunConfig) -> InMemoryTransport:
    return InMemoryTransport(
        latency=config.latency,
        keyring=Keyring() if config.encrypt else None,
        failures=config.failures,
    )


def run_topk_query(
    databases: list[PrivateDatabase],
    query: TopKQuery,
    config: RunConfig | None = None,
    *,
    trace: "TraceContext | None" = None,
) -> ProtocolResult:
    """Answer ``query`` across ``databases`` with the configured protocol.

    This is the main public entry point.  It validates the well-matched-schema
    precondition, extracts each node's local top-k vector, and delegates to
    :func:`run_protocol_on_vectors`.
    """
    config = config or RunConfig()
    common_query(databases, query)
    owners = [db.owner for db in databases]
    if len(set(owners)) != len(owners):
        raise DriverError(f"duplicate database owners: {owners}")
    local_vectors = {db.owner: db.local_topk(query) for db in databases}
    _record_extraction(databases, query, trace)
    return run_protocol_on_vectors(local_vectors, query, config, trace=trace)


def _record_extraction(
    databases: Sequence[PrivateDatabase],
    query: TopKQuery,
    trace: "TraceContext | None",
) -> None:
    """Mark the node-local extraction step on an already-open trace span.

    The event is deterministic — engine names and row counts, never wall
    clock — so traced exports stay byte-identical per seed.  It is only
    recorded under a *parent* span (the batch/service path): before the
    protocol's root span exists an event would itself become a root and
    break the one-root-per-trace connectivity invariant the trace checker
    enforces.  Wall-clock extraction timing flows through the extraction
    sink (:func:`repro.experiments.telemetry.profile_extraction`) instead.
    """
    if trace is None or not trace.tracer.enabled or trace.span_id is None:
        return
    engines = sorted({db.table(query.table).engine_name for db in databases})
    rows = sum(len(db.table(query.table)) for db in databases)
    trace.tracer.event(
        trace,
        "local_extract",
        at=0.0,
        attrs={
            "engine": "/".join(engines),
            "parties": len(databases),
            "rows": rows,
        },
    )


def _trace_for_query(
    query: TopKQuery, config: RunConfig, nodes: int
) -> "TraceContext | None":
    """New trace from the process-wide tracer, or None when tracing is off.

    Called before backend dispatch so both backends allocate ids and baggage
    identically — a precondition of the byte-identical-export guarantee.
    """
    tracer = current_tracer()
    if tracer is None or not tracer.enabled:
        return None
    return tracer.new_trace(
        name=f"{query.table}.{query.attribute} top-{query.k}",
        baggage={
            "protocol": config.protocol,
            "k": str(query.k),
            "nodes": str(nodes),
        },
    )


def run_protocol_on_vectors(
    local_vectors: dict[str, list[float]],
    query: TopKQuery,
    config: RunConfig | None = None,
    *,
    backend: str = SESSION,
    trace: "TraceContext | None" = None,
) -> ProtocolResult:
    """Run the protocol when each party's local top-k vector is already known.

    ``local_vectors`` maps node id to that node's values for the queried
    attribute (any number, any order); each node participates with its local
    top-k of them, per the protocol's initial step ("each node first sorts
    its values and takes the local set of topk values", Section 3.4).  The
    experiment harness uses this entry point directly with synthetic
    workloads.

    ``backend`` selects the execution substrate: :data:`SESSION` (default)
    simulates the full transport; :data:`KERNEL` runs the message-free fast
    path, bit-identical under the same seed but refusing configs it cannot
    honor exactly (encryption, latency models, failure injectors).
    """
    if backend not in BACKENDS:
        raise DriverError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    config = config or RunConfig()
    if trace is None:
        trace = _trace_for_query(query, config, len(local_vectors))
    if backend == KERNEL:
        return run_kernel_on_vectors(local_vectors, query, config, trace=trace)
    prepared = prepare_query_vectors(local_vectors, query)
    transport = _transport_for(config)
    session = ProtocolSession(prepared, config, transport, trace=trace)
    session.start()
    transport.run_until_idle()
    session.recover()
    return session.finalize()


def run_many_on_vectors(
    jobs: Sequence[tuple[dict[str, list[float]], TopKQuery, RunConfig]],
    *,
    traces: "Sequence[TraceContext | None] | None" = None,
    backend: str = AUTO,
) -> list[ProtocolResult]:
    """Run many independent queries as one batch.

    Each job is ``(local_vectors, query, config)``.  ``backend`` selects the
    execution substrate:

    * :data:`AUTO` (default) — the vectorized batch kernel
      (:mod:`repro.core.batch`) whenever every config is free of transport
      obligations (no encryption, latency model, or failure injector);
      otherwise the shared-transport session path.
    * :data:`KERNEL` — the vectorized batch kernel unconditionally; configs
      it cannot honor exactly raise
      :class:`~repro.core.kernel.KernelUnsupported`.
    * :data:`SESSION` — the transport simulation: all sessions start at
      simulated time zero and interleave their tokens by delivery timestamp,
      so the batch completes in simulated time close to the slowest query
      rather than the sum of all queries (the ring-pipelining win).

    Every query draws its randomness from its *own* config's seed, in the
    same order the single-query path does, so each result is bit-identical
    to running that query alone with the same config — values, rounds and
    privacy exposure included, on either substrate.  (Byte accounting
    differs from solo runs by the few bytes of the per-message query tag.)

    Transport-level settings (``encrypt``, ``latency``, ``failures``) must
    be shared across the batch, since one transport carries all queries.
    """
    if backend not in (AUTO, *BACKENDS):
        raise DriverError(
            f"unknown backend {backend!r}; expected one of {(AUTO, *BACKENDS)}"
        )
    jobs = list(jobs)
    if not jobs:
        return []
    if traces is not None and len(traces) != len(jobs):
        raise DriverError(
            f"got {len(jobs)} jobs but {len(traces)} trace contexts"
        )
    if traces is None:
        traces = [
            _trace_for_query(query, config, len(vectors))
            for vectors, query, config in jobs
        ]
    base = jobs[0][2]
    for _vectors, _query, config in jobs:
        if (
            config.encrypt != base.encrypt
            or config.latency is not base.latency
            or config.failures is not base.failures
        ):
            raise DriverError(
                "batched queries must share transport settings "
                "(encrypt, latency, failures)"
            )
    if backend == AUTO:
        # Transport settings are shared (validated above), so one refusal
        # check covers the batch.
        backend = SESSION if kernel_refusal(base) else KERNEL
    if backend == KERNEL:
        return execute_batch(jobs, traces=traces)
    transport = _transport_for(base)
    sessions = [
        ProtocolSession(
            prepare_query_vectors(vectors, query),
            config,
            transport,
            query_id=f"q{index}",
            trace=traces[index],
        )
        for index, (vectors, query, config) in enumerate(jobs)
    ]
    for session in sessions:
        session.start()
    # Scale the runaway bound with the number of interleaved queries so a
    # legitimately large batch is not misdiagnosed as a non-quiescing run.
    transport.run_until_idle(
        max_deliveries=DEFAULT_MAX_DELIVERIES * len(sessions)
    )
    results = []
    for session in sessions:
        session.recover()
        results.append(session.finalize())
    return results


def run_topk_queries(
    databases: list[PrivateDatabase],
    queries: Sequence[TopKQuery],
    configs: Sequence[RunConfig],
    *,
    traces: "Sequence[TraceContext | None] | None" = None,
    backend: str = AUTO,
) -> list[ProtocolResult]:
    """Batch counterpart of :func:`run_topk_query`: one config per query.

    Validates the schema precondition per query, extracts local vectors, and
    pipelines all runs on one shared transport via
    :func:`run_many_on_vectors`; ``backend`` is forwarded there.
    """
    if len(queries) != len(configs):
        raise DriverError(
            f"got {len(queries)} queries but {len(configs)} configs"
        )
    if traces is not None and len(traces) != len(queries):
        raise DriverError(
            f"got {len(queries)} jobs but {len(traces)} trace contexts"
        )
    owners = [db.owner for db in databases]
    if len(set(owners)) != len(owners):
        raise DriverError(f"duplicate database owners: {owners}")
    jobs = []
    for index, (query, config) in enumerate(zip(queries, configs)):
        common_query(databases, query)
        jobs.append(
            ({db.owner: db.local_topk(query) for db in databases}, query, config)
        )
        if traces is not None:
            _record_extraction(databases, query, traces[index])
    return run_many_on_vectors(jobs, traces=traces, backend=backend)


def derived_rounds(params: ProtocolParams) -> int:
    """Expose the Equation 4 round derivation for callers and reports."""
    try:
        return params.resolved_rounds()
    except ParamError as exc:
        raise DriverError(str(exc)) from exc


def with_protocol(config: RunConfig, protocol: str) -> RunConfig:
    """A copy of ``config`` running a different protocol (for comparisons)."""
    return replace(config, protocol=protocol)
