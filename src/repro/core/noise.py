"""Pluggable noise strategies for the randomized local algorithms.

Section 7: "given the probabilistic scheme, it is possible to design other
forms of randomization probability and randomized algorithms.  We are
interested in conducting a theoretical analysis for discovering the optimal
randomized algorithm."  The *where the noise lands* inside the admissible
range ``[low, high)`` is exactly such a design axis:

* :class:`UniformNoise` — the paper's choice; every admissible value equally
  likely, so observing noise reveals nothing about where in the range it
  came from.
* :class:`HighBiasedNoise` — mass pushed toward the top of the range; the
  global value climbs faster (helping downstream nodes hide) at the cost of
  noise that correlates with the hider's value.
* :class:`LowBiasedNoise` — mass pushed toward the bottom; maximally
  uninformative about the hider's value but slows the climb.

All strategies draw from the half-open ``[low, high)`` and respect integral
domains.  The ablation bench ``test_bench_ablation_noise`` measures the
resulting precision/privacy tradeoff.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .sampling import SamplingError, random_value_in


def _map_unit_draw(
    u: float, low: float, high: float, *, integral: bool
) -> float:
    """Map a unit-interval draw onto [low, high), honouring integral domains."""
    if not 0.0 <= u < 1.0:
        raise SamplingError(f"unit draw out of range: {u}")
    if integral:
        lo = math.ceil(low)
        hi = math.ceil(high) - 1
        if hi < lo:
            raise SamplingError(f"no integer in random range [{low}, {high})")
        return float(lo + int(u * (hi - lo + 1)))
    value = low + u * (high - low)
    return value if value < high else low


@dataclass(frozen=True)
class UniformNoise:
    """The paper's strategy: uniform over the admissible range."""

    def draw(
        self, rng: random.Random, low: float, high: float, *, integral: bool
    ) -> float:
        return random_value_in(rng, low, high, integral=integral)


@dataclass(frozen=True)
class HighBiasedNoise:
    """Noise biased toward the top of the range.

    Draws the maximum of ``order`` uniform variates, i.e. a Beta(order, 1)
    unit draw — with ``order=2`` the expected position is 2/3 of the range
    instead of 1/2.
    """

    order: int = 2

    def __post_init__(self) -> None:
        if self.order < 1:
            raise SamplingError(f"order must be >= 1, got {self.order}")

    def draw(
        self, rng: random.Random, low: float, high: float, *, integral: bool
    ) -> float:
        if low >= high:
            raise SamplingError(f"empty random range [{low}, {high})")
        u = max(rng.random() for _ in range(self.order))
        return _map_unit_draw(u, low, high, integral=integral)


@dataclass(frozen=True)
class LowBiasedNoise:
    """Noise biased toward the bottom of the range (min of ``order`` draws)."""

    order: int = 2

    def __post_init__(self) -> None:
        if self.order < 1:
            raise SamplingError(f"order must be >= 1, got {self.order}")

    def draw(
        self, rng: random.Random, low: float, high: float, *, integral: bool
    ) -> float:
        if low >= high:
            raise SamplingError(f"empty random range [{low}, {high})")
        u = min(rng.random() for _ in range(self.order))
        return _map_unit_draw(u, low, high, integral=integral)


#: Anything with the ``draw`` signature above.
NoiseStrategy = UniformNoise | HighBiasedNoise | LowBiasedNoise


# -- vectorized batch draws ---------------------------------------------------
#
# The batch kernel (:mod:`repro.core.batch`) executes one noise column for a
# subset of per-node RNG streams at a time.  These helpers replay the exact
# word order the scalar ``draw`` methods consume from each stream — one
# ``random()`` is two 32-bit words, one ``randint`` attempt is one word — so
# a stream served by the vectorized path stays bit-identical to the same
# stream served scalar.

def draw_noise_batch(
    strategy: "NoiseStrategy",
    pool,
    who,
    low,
    high,
    *,
    integral: bool,
):
    """One ``strategy.draw`` per stream in ``who``; float64 array of values.

    ``pool`` is a :class:`repro.core.sampling.WordPool`; ``low``/``high``
    are per-stream float64 arrays describing each stream's admissible
    ``[low, high)`` range.  Callers guarantee ``low < high`` row-wise (the
    batch kernel handles degenerate ranges before drawing) and, for
    integral domains, that the integer range is non-empty.
    """
    import numpy as np

    kind = type(strategy)
    if kind is UniformNoise:
        if integral:
            lo = np.ceil(low).astype(np.int64)
            hi = np.ceil(high).astype(np.int64) - 1
            return pool.randint(who, lo, hi).astype(np.float64)
        u = pool.random(who)
        value = low + (high - low) * u
        return np.where(value < high, value, low)
    # Biased strategies: max/min of ``order`` sequential unit draws, then
    # the same range mapping ``_map_unit_draw`` applies scalar-side.
    u = pool.random(who)
    if kind is HighBiasedNoise:
        for _ in range(strategy.order - 1):
            u = np.maximum(u, pool.random(who))
    else:
        for _ in range(strategy.order - 1):
            u = np.minimum(u, pool.random(who))
    if integral:
        lo = np.ceil(low)
        hi = np.ceil(high) - 1.0
        return lo + np.floor(u * (hi - lo + 1.0))
    value = low + u * (high - low)
    return np.where(value < high, value, low)
