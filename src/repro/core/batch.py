"""Vectorized batch kernel: whole trial batches as numpy array ops.

The scalar kernel (:mod:`repro.core.kernel`) already strips the transport
away, but it still walks every ring hop in pure Python — per-trial cost is
dominated by interpreter dispatch, not arithmetic.  The figures' Monte Carlo
sweeps run thousands of structurally identical trials, so this module turns
the trial axis into a numpy batch axis: Eq. 2 coin flips, noise draws,
k-vector merges, per-round ring remaps and the closed-form byte accounting
all execute as array operations over ``trials x rounds``.

It is not an approximation.  Phase A replays every trial's *run* RNG
(``config.rng()``) — ring shuffle, starter choice, per-node stream seeds,
remap shuffles — by harvesting raw MT19937 output words and feeding them
through CPython's exact draw algorithms (:class:`~repro.core.sampling.
WordPool`, :class:`_RunPool`).  Phase B then executes all trials
cell-by-cell over the ring schedule, drawing each node-stream's coins and
noise values in the scalar draw order, so every :class:`ProtocolResult` is
**bit-identical** to both the scalar kernel and the transport-backed
session under the same seed: final vector, snapshots, ring history, traffic
stats, simulated clock, and every event-log observation (message ids aside,
which are process-global).

Jobs the vectorized engine cannot replay exactly fall back *per item* to the
scalar kernel (same results, scalar speed): non-probabilistic protocols,
re-insertion mode, custom noise strategies, custom rings, seeded initial
vectors, and data/domain shapes whose byte accounting or draw replay has
scalar-only edge cases (domains spanning zero, non-integer data on integral
domains, values below the domain floor).  Config-level refusals (encryption,
latency, failures) are the driver's job — it routes those to the session
backend or raises :class:`~repro.core.kernel.KernelUnsupported`.
"""

from __future__ import annotations

import json
from collections import Counter
from itertools import chain
from typing import TYPE_CHECKING

import numpy as np

from ..network.events import EventLog
from ..network.ring import RingTopology
from ..network.stats import TrafficStats
from .kernel import (
    _FIXED,
    _RESULT_LEN,
    _TOKEN_LEN,
    _LazyKernelLog,
    _id_len,
    _synthesize_trace,
    execute as execute_scalar,
    kernel_refusal,
)
from .noise import HighBiasedNoise, LowBiasedNoise, UniformNoise, draw_noise_batch
from .results import ProtocolResult
from .sampling import MAX_HARVEST_WORDS, WordPool, words_to_unit_floats
from .session import PROBABILISTIC, prepare_query_vectors

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (driver imports us)
    from ..database.query import TopKQuery
    from ..observability.trace import TraceContext
    from .driver import RunConfig

__all__ = ["execute_many"]

#: The transport's constant link delay; see ``kernel._LATENCY``.
_LATENCY = 0.001

_NOISE_KINDS = {UniformNoise: "uniform", HighBiasedNoise: "high", LowBiasedNoise: "low"}

#: float64 holds integers exactly below 2**52; beyond that the whole-number
#: and ceil arithmetic the integral replay relies on can round.
_EXACT_INT_BOUND = float(2**52)

#: ``searchsorted`` thresholds for digit counts of whole-valued floats;
#: ``repr`` stays in positional notation strictly below 1e16.
_POW10 = 10.0 ** np.arange(17)


# -- run-RNG replay -----------------------------------------------------------

class _RunPool:
    """The per-trial run RNG (``config.rng()``), batched across trials.

    One ``getrandbits(32 * words)`` call per trial harvests the raw output
    words *and* leaves the live ``Random`` object positioned exactly past
    them, so a trial that outruns its harvest continues scalar from its own
    object with no replay bookkeeping.  Unlike node streams, run RNGs may be
    seeded with ``None`` — harvesting through the live object (instead of
    reseeding numpy-side) keeps those trials exact too.
    """

    def __init__(self, rngs: list, words: int) -> None:
        self._rngs = rngs
        self._words = words
        count = len(rngs)
        nbytes = 4 * words
        harvest = np.empty((count, words), dtype=np.uint32)
        for t, rng in enumerate(rngs):
            raw = rng.getrandbits(32 * words).to_bytes(nbytes, "little")
            harvest[t] = np.frombuffer(raw, dtype="<u4")
        self._flat = harvest.reshape(-1)
        self._cursor = np.zeros(count, dtype=np.int64)
        self._all = np.arange(count)

    def _word(self, rows: np.ndarray) -> np.ndarray:
        """Next raw 32-bit word for every trial in ``rows``."""
        cur = self._cursor[rows]
        self._cursor[rows] = cur + 1
        fast = cur < self._words
        if fast.all():
            return self._flat[rows * self._words + cur]
        out = np.empty(rows.shape[0], dtype=np.uint32)
        out[fast] = self._flat[rows[fast] * self._words + cur[fast]]
        for i in np.nonzero(~fast)[0]:
            out[i] = self._rngs[int(rows[i])].getrandbits(32)
        return out

    def randbelow(self, bound: int) -> np.ndarray:
        """CPython ``_randbelow(bound)`` for every trial at once."""
        shift = np.uint32(32 - bound.bit_length())
        out = np.empty(self._all.shape[0], dtype=np.int64)
        pending = self._all
        while pending.shape[0]:
            draws = (self._word(pending) >> shift).astype(np.int64)
            ok = draws < bound
            out[pending[ok]] = draws[ok]
            pending = pending[~ok]
        return out

    def getrandbits64(self) -> np.ndarray:
        """``getrandbits(64)`` per trial (two words, low word first)."""
        w0 = self._word(self._all).astype(np.uint64)
        w1 = self._word(self._all).astype(np.uint64)
        return w0 | (w1 << np.uint64(32))


def _shuffle_columns(order: np.ndarray, pool: _RunPool) -> None:
    """In-place ``random.shuffle`` of every trial's row of ``order``."""
    rows = np.arange(order.shape[0])
    for i in range(order.shape[1] - 1, 0, -1):
        j = pool.randbelow(i + 1)
        tmp = order[rows, i]
        order[rows, i] = order[rows, j]
        order[rows, j] = tmp


def _run_word_budget(n: int, rounds: int, remap: bool) -> int:
    # Shuffles reject at most half their draws in expectation; 3n + 8 words
    # per shuffle makes overflow (handled, but scalar-speed) vanishingly
    # rare.  Plus the starter choice and n two-word node-seed draws.
    shuffles = rounds if remap else 1
    return shuffles * (3 * n + 8) + 4 + 2 * n


# -- byte accounting ----------------------------------------------------------

def _vector_body_bytes(rows: np.ndarray) -> np.ndarray:
    """Encoded length of ``[v1,...,vk]`` per row (kernel ``_vector_bytes``).

    Whole-valued floats below 1e16 repr as ``<digits>.0`` (sign included),
    so their lengths come from a digit count; anything else falls back to
    ``repr`` per value.  All values are finite and nonzero (eligibility
    guarantees), so ``searchsorted`` against powers of ten is exact.
    """
    width = rows.shape[1]
    absr = np.abs(rows)
    if (absr < 1e16).all() and (rows == np.floor(rows)).all():
        digits = np.searchsorted(_POW10, absr, side="right")
        return (digits + 2 + (rows < 0.0)).sum(axis=1) + (1 + width)
    totals = np.empty(rows.shape[0], dtype=np.int64)
    base = 1 + width
    for i, row in enumerate(rows.tolist()):
        totals[i] = base + sum(len(repr(v)) for v in row)
    return totals


# -- eligibility --------------------------------------------------------------

def _config_eligible(config: "RunConfig") -> bool:
    """Config-shape gate shared by the fast probe and ``_classify``.

    Refused configs (encryption, latency, failures) fall through to the
    scalar kernel, which raises :class:`~repro.core.kernel.KernelUnsupported`
    — the loud refusal, never a silently mis-accounted vectorized run.
    """
    return (
        config.protocol == PROBABILISTIC
        and config.ring_builder is None
        and config.initial_vector is None
        and kernel_refusal(config) is None
    )


def _shape_key(params, query) -> tuple | None:
    """The ``(params, query)`` slice of a group key; ``None`` if ineligible.

    Every refusal here is conservative: the scalar path is bit-identical,
    just slower, and it also *raises* exactly where the session would
    (mid-protocol sampling errors on pathological schedules).
    """
    if not params.insert_once:
        return None
    noise_kind = _NOISE_KINDS.get(type(params.noise))
    if noise_kind is None:
        return None
    try:
        rounds = params.resolved_rounds()
        probs = tuple(params.probability(r) for r in range(1, rounds + 1))
    except Exception:
        return None  # the scalar path raises the identical error in order
    domain = query.domain
    dom_low = float(domain.low)
    dom_high = float(domain.high)
    if dom_low <= 0.0 <= dom_high:
        # Zero crossings bring repr(-0.0) and cache-disable semantics the
        # vectorized byte accounting does not model; keep those scalar.
        return None
    integral = domain.integral
    if integral:
        if params.delta < 1:
            return None  # scalar raises SamplingError on an empty int range
        if abs(dom_low) >= _EXACT_INT_BOUND or abs(dom_high) >= _EXACT_INT_BOUND:
            return None
        if dom_high - dom_low >= float(2**31 - 1):
            return None  # randint widths must fit one 32-bit word
    return (
        query.k,
        rounds,
        probs,
        params.delta,
        params.remap_each_round,
        noise_kind,
        getattr(params.noise, "order", 1),
        dom_low,
        dom_high,
        integral,
        type(domain.low) is int,
    )


def _classify(prepared, config: "RunConfig"):
    """Group signature + padded matrix if the engine can replay this job.

    Returns ``None`` to send the job to the scalar kernel.
    """
    if not _config_eligible(config):
        return None
    shape = _shape_key(config.params, prepared.query)
    if shape is None:
        return None
    k = prepared.query.k
    dom_low, dom_high, integral = shape[7], shape[8], shape[9]
    rows = []
    for node_id in sorted(prepared.vectors):
        values = prepared.vectors[node_id]
        if len(values) < k:
            if values and dom_low > values[-1]:
                return None  # pad_to_k raises; the scalar path reproduces it
            values = values + [dom_low] * (k - len(values))
        rows.append(values)
    matrix = np.array(rows, dtype=np.float64)
    if not np.isfinite(matrix).all():
        return None
    if (matrix == 0.0).any() or (matrix < dom_low).any():
        return None
    if integral and (
        (matrix != np.floor(matrix)).any()
        or (matrix > dom_high).any()
    ):
        return None
    return (matrix.shape[0], *shape), matrix


# -- bulk preparation ---------------------------------------------------------

class _FastItem:
    """Stand-in for ``PreparedQuery`` on the bulk-prepared fast path.

    Bulk-converted jobs skip python-side preparation entirely; the group
    matrix holds their sorted local top-k and ``finalize`` rebuilds
    ``local_vectors`` from it.  ``smallest`` queries never take this path,
    so the negation fields are fixed.
    """

    __slots__ = ("query", "ids", "original_query")
    negated = False

    def __init__(self, query, ids) -> None:
        self.query = query
        self.ids = ids
        self.original_query = query


def _fast_probe(vectors, query, config, probe_cache, id_cache):
    """``(group key, sorted ids, row width)`` if the job can bulk-convert.

    Sweep-style batches reuse one params/query object across thousands of
    trials; the per-``(params, query)`` shape key is cached by object
    identity (the cache holds the references, so ids stay valid for its
    lifetime).  Returns ``None`` to route through python preparation.
    """
    if not _config_eligible(config):
        return None
    n = len(vectors)
    if n < 3 or query.smallest:
        return None
    cache_key = (id(config.params), id(query))
    hit = probe_cache.get(cache_key)
    if hit is None:
        hit = probe_cache[cache_key] = (
            config.params,
            query,
            _shape_key(config.params, query),
        )
    shape = hit[2]
    if shape is None:
        return None
    try:
        widths = set(map(len, vectors.values()))
    except TypeError:
        return None  # unsized rows (generators): python prep handles them
    if len(widths) != 1:
        return None
    width = widths.pop()
    if width < query.k:
        return None  # short rows need python padding semantics
    id_key = tuple(vectors)
    ids = id_cache.get(id_key)
    if ids is None:
        ids = id_cache[id_key] = sorted(id_key)
    return (n, *shape), ids, width


def _slow_classify(index, vectors, query, config, groups, scalar_jobs) -> None:
    """Python-prepare one job and route it to its group or the scalar list."""
    prepared = prepare_query_vectors(vectors, query)
    signature = _classify(prepared, config)
    if signature is None:
        scalar_jobs.append((index, prepared, config))
    else:
        key, matrix = signature
        groups.setdefault(key, []).append((index, prepared, config, matrix))


def _bulk_prepare(n, width, entries, groups, scalar_jobs) -> None:
    """Convert one ``(n, width)`` shape-batch of fast-probed jobs to members.

    One ``fromiter`` pass builds the whole value tensor; the local sort and
    the per-value data checks run vectorized.  Items that fail a data check
    — or carry non-finite values, whose sort placement differs between
    numpy and python — drop back to python preparation, where they land on
    the scalar kernel with byte-for-byte session semantics.
    """
    count = len(entries)
    try:
        flat = np.fromiter(
            chain.from_iterable(
                chain.from_iterable(entry[1][node] for node in entry[5])
                for entry in entries
            ),
            dtype=np.float64,
            count=count * n * width,
        )
    except (TypeError, ValueError, KeyError):
        # Non-numeric values or rows mutated mid-scan: python preparation
        # raises (or handles) exactly what the session would.
        for index, vectors, query, config, _key, _ids in entries:
            _slow_classify(index, vectors, query, config, groups, scalar_jobs)
        return
    tensor = flat.reshape(count, n, width)
    finite = np.isfinite(tensor).all(axis=(1, 2))
    tensor.sort(axis=2)
    by_key: dict[tuple, list[int]] = {}
    for pos, entry in enumerate(entries):
        by_key.setdefault(entry[4], []).append(pos)
    for key, positions in by_key.items():
        k = key[1]
        dom_low, dom_high, integral = key[8], key[9], key[10]
        pos_arr = np.array(positions)
        # Local top-k, descending: ascending sort read right-to-left.
        stop = width - k - 1
        sub = tensor[pos_arr, :, -1 : (stop if stop >= 0 else None) : -1]
        checked = sub.reshape(len(positions), -1)
        ok = finite[pos_arr]
        ok &= (checked != 0.0).all(axis=1)
        ok &= ~(checked < dom_low).any(axis=1)
        if integral:
            ok &= (checked == np.floor(checked)).all(axis=1)
            ok &= ~(checked > dom_high).any(axis=1)
        ok_list = ok.tolist()
        for i, pos in enumerate(positions):
            index, vectors, query, config, _key, ids = entries[pos]
            if ok_list[i]:
                groups.setdefault(key, []).append(
                    (index, _FastItem(query, ids), config, sub[i])
                )
            else:
                _slow_classify(index, vectors, query, config, groups, scalar_jobs)


# -- lazy event log -----------------------------------------------------------

class _BatchLog(_LazyKernelLog):
    """Kernel-style lazy log whose pass records are themselves built lazily.

    The batch engine keeps per-*cell* event blocks shared across the whole
    group; reconstructing one trial's per-hop vectors only happens if its
    log is ever read.
    """

    def __init__(self, builder, query_id: str = ""):
        self._builder = builder
        self._query = query_id
        self._cache = None
        self._passes_cache = None

    @property
    def _passes(self):
        passes = self._passes_cache
        if passes is None:
            passes = self._passes_cache = self._builder()
        return passes

    def __reduce__(self):
        # The builder closes over the whole group's state; pickling (the
        # process-pool result path) ships the materialized log instead.
        return (EventLog.from_observations, (list(self._observations),))


# -- lazy traffic stats -------------------------------------------------------

class _BatchStats(TrafficStats):
    """Traffic stats whose per-key breakdowns materialize on first access.

    The batch engine knows ``messages_total``/``bytes_total`` in closed
    form; the four breakdown counters cost more to build than the rest of
    a trial's finalize and most callers never read them.  Equality and
    pickling behave like a plain :class:`TrafficStats`.
    """

    # Mutable-stats semantics, same as the dataclass parent.
    __hash__ = None

    def __init__(self, messages_total, bytes_total, builder):
        self.messages_total = messages_total
        self.bytes_total = bytes_total
        self._builder = builder

    def __getattr__(self, name):
        if name in ("per_link", "per_round", "per_type", "per_query"):
            counters = self._builder()
            self.__dict__.update(counters)
            return self.__dict__[name]
        raise AttributeError(name)

    def __eq__(self, other):
        if not isinstance(other, TrafficStats):
            return NotImplemented
        return (
            self.messages_total == other.messages_total
            and self.bytes_total == other.bytes_total
            and self.per_link == other.per_link
            and self.per_round == other.per_round
            and self.per_type == other.per_type
            and self.per_query == other.per_query
        )

    def __reduce__(self):
        return (
            TrafficStats,
            (
                self.messages_total,
                self.bytes_total,
                self.per_link,
                self.per_round,
                self.per_type,
                self.per_query,
            ),
        )


def _stats_counters(
    ring_lists,
    single_ring,
    rounds,
    per_round_template,
    per_type_template,
    qid,
    messages_total,
):
    """Build one trial's per-key traffic counters (the lazy-stats payload).

    ``Counter(mapping)`` on construction defers to ``dict.update`` (C
    speed), as does ``Counter(pair_list)`` via ``_count_elements``.
    """
    link_pairs = []
    for members in ring_lists:
        receivers = members[1:]
        receivers.append(members[0])
        link_pairs.append(list(zip(members, receivers)))
    if single_ring:
        # Every pass reuses the one ring, and its directed links are
        # distinct, so the counts come straight from a dict.
        per_link = Counter(dict.fromkeys(link_pairs[0], rounds + 1))
    else:
        # One token pass per remapped ring; the final ring also carries
        # the result broadcast.
        per_link = Counter(
            [pair for pairs in link_pairs for pair in pairs] + link_pairs[-1]
        )
    return {
        "per_link": per_link,
        "per_round": per_round_template.copy(),
        "per_type": per_type_template.copy(),
        "per_query": Counter({qid: messages_total}),
    }


# -- the group engine ---------------------------------------------------------

_CLOCK_CACHE: dict[tuple[int, int], float] = {}


def _simulated_seconds(n: int, rounds: int) -> float:
    """The transport clock: ``n * (rounds + 1)`` float additions of 1ms."""
    key = (n, rounds)
    value = _CLOCK_CACHE.get(key)
    if value is None:
        clock = 0.0
        for _ in range(n * (rounds + 1)):
            clock += _LATENCY
        value = _CLOCK_CACHE[key] = clock
    return value


class _Group:
    """All jobs sharing one signature, executed as a single numpy batch."""

    def __init__(self, key, members):
        (
            self.n,
            self.k,
            self.rounds,
            self.probs,
            self.delta,
            self.remap,
            noise_kind,
            noise_order,
            self.dom_low,
            self.dom_high,
            self.integral,
            self.low_is_int,
        ) = key
        self.noise_kind = noise_kind
        self.noise_order = noise_order
        self.members = members  # (job index, prepared, config, matrix)
        self.count = len(members)
        # Degenerate ranges inject the *raw* ``domain.low``; on int domains
        # that is an int for exactly one hop before float coercion, so the
        # int-repr hop pays fewer bytes than the float accounting assumes.
        if self.low_is_int:
            self.int_repr_delta = len(repr(self.dom_low)) - len(repr(int(self.dom_low)))
        else:
            self.int_repr_delta = 0
        self._events_by_trial = None

    # -- Phase A: replay every run RNG up front -------------------------------

    def replay_run_rngs(self) -> None:
        n, rounds, count = self.n, self.rounds, self.count
        pool = _RunPool(
            [config.rng() for (_, _, config, _) in self.members],
            _run_word_budget(n, rounds, self.remap),
        )
        rows_all = np.arange(count)
        order = np.tile(np.arange(n, dtype=np.int64), (count, 1))
        _shuffle_columns(order, pool)
        ring_orders = [order.copy()]
        # Starter choice draws over the *sorted* node ids, not ring order.
        self.starter = pool.randbelow(n)
        node_seeds = np.empty((count, n), dtype=np.uint64)
        for i in range(n):
            node_seeds[:, i] = pool.getrandbits64()
        if self.remap:
            for _ in range(rounds - 1):
                _shuffle_columns(order, pool)
                ring_orders.append(order.copy())
        self.ring_orders = ring_orders
        # Token-passing order per round: the ring walk from the starter.
        offsets = np.arange(n, dtype=np.int64)
        walks = []
        for ring in ring_orders:
            pos = np.argmax(ring == self.starter[:, None], axis=1)
            walks.append(ring[rows_all[:, None], (pos[:, None] + offsets) % n])
        self.walks = walks
        # Per-node streams: worst case per round is one coin plus k noise
        # values; overflow demotes that stream to a live Random, exactly.
        draw_words = {
            "uniform": 3 if self.integral else 2,
            "high": 2 * self.noise_order,
            "low": 2 * self.noise_order,
        }[self.noise_kind]
        words = min(MAX_HARVEST_WORDS, rounds * (2 + self.k * draw_words) + 4)
        self.node_pool = WordPool(node_seeds.reshape(-1), words)

    # -- Phase B: the vectorized round loop -----------------------------------

    def _cell_draws(self, streams, m, low, high, deg, p_r):
        """All RNG draws for one ring position: coin + noise, one block read.

        Every candidate stream consumes exactly the scalar draw sequence:
        two words for the Eq. 2 coin, then — only when the coin says
        randomize and the noise range is non-degenerate — the words for its
        ``m`` noise draws.  Instead of one pool call per draw column, the
        next ``B`` words of every stream come out as a single 2D gather and
        the variable consumption (rejection sampling included) is computed
        arithmetically; cursors then advance by each stream's actual use.

        Returns ``(u, noise)``: the unit coin per stream and a ``(ncand,
        k)`` noise matrix whose rows are meaningful only where the coin
        randomizes and ``deg`` is false (the merge masks the rest).
        """
        pool = self.node_pool
        k = self.k
        kind = self.noise_kind
        order = self.noise_order
        integral = self.integral
        strategy = self.noise_strategy
        ncand = streams.shape[0]
        max_m = int(m.max())
        if kind == "uniform" and integral:
            # Each rejection retry costs one word at < 50% probability;
            # twelve extra words make a shortfall vanishingly rare (and a
            # shortfall only costs a slower exact fallback).
            B = 2 + 2 * max_m + 12
        elif kind == "uniform":
            B = 2 + 2 * max_m
        else:
            B = 2 + 2 * order * max_m
        block, fast_mask = pool.take_block(streams, B)
        u = np.empty(ncand, dtype=np.float64)
        noise = np.zeros((ncand, k), dtype=np.float64)
        if fast_mask is None:
            frows = None  # all streams served from the block
        else:
            frows = np.nonzero(fast_mask)[0]
        if block is not None:
            bu = words_to_unit_floats(block[:, 0], block[:, 1])
            if frows is None:
                u[:] = bu
                m_f, low_f, high_f, deg_f = m, low, high, deg
            else:
                u[frows] = bu
                m_f, low_f, high_f, deg_f = m[frows], low[frows], high[frows], deg[frows]
            active = (bu < p_r) & ~deg_f
            need = np.where(active, m_f, 0)
            if kind == "uniform" and integral:
                lo = np.ceil(low_f).astype(np.int64)
                hi = np.ceil(high_f).astype(np.int64) - 1
                width = np.maximum(hi - lo + 1, 1)  # clamp masked-out rows
                shift = np.uint32(32) - np.frexp(width.astype(np.float64))[1].astype(np.uint32)
                attempts = block[:, 2:] >> shift[:, None]
                ok = attempts < width[:, None]
                csum = np.cumsum(ok, axis=1)
                short = csum[:, -1] < need
                if short.any():
                    # Not enough slack for this row's rejections: take the
                    # coin only and draw its noise through the pool below.
                    need = np.where(short, 0, need)
                used = ok & (csum <= need[:, None])
                r_idx, c_idx = np.nonzero(used)
                vals = (lo[r_idx] + attempts[r_idx, c_idx]).astype(np.float64)
                cols = csum[r_idx, c_idx] - 1
                if frows is None:
                    noise[r_idx, cols] = vals
                else:
                    noise[frows[r_idx], cols] = vals
                stop = np.argmax(csum == need[:, None], axis=1)
                consumed = np.where(need > 0, stop + 3, 2)
                pool.advance(streams if frows is None else streams[frows], consumed)
                if short.any():
                    srows = np.nonzero(short)[0] if frows is None else frows[np.nonzero(short)[0]]
                    for d in range(int(m[srows].max())):
                        sel = srows[m[srows] > d]
                        if not sel.shape[0]:
                            break
                        noise[sel, d] = draw_noise_batch(
                            strategy, pool, streams[sel], low[sel], high[sel],
                            integral=True,
                        )
            else:
                if kind == "uniform":
                    U = words_to_unit_floats(block[:, 2::2], block[:, 3::2])
                    vals = low_f[:, None] + (high_f[:, None] - low_f[:, None]) * U
                    vals = np.where(vals < high_f[:, None], vals, low_f[:, None])
                    consumed = 2 + 2 * need
                else:
                    U = words_to_unit_floats(block[:, 2::2], block[:, 3::2])
                    U = U.reshape(bu.shape[0], max_m, order) if max_m else U.reshape(bu.shape[0], 0, order)
                    uv = U.max(axis=2) if kind == "high" else U.min(axis=2)
                    if integral:
                        lo = np.ceil(low_f)[:, None]
                        hi = np.ceil(high_f)[:, None] - 1.0
                        vals = lo + np.floor(uv * (hi - lo + 1.0))
                    else:
                        vals = low_f[:, None] + uv * (high_f[:, None] - low_f[:, None])
                        vals = np.where(vals < high_f[:, None], vals, low_f[:, None])
                    consumed = 2 + 2 * order * need
                if max_m:
                    if frows is None:
                        noise[:, :max_m] = vals
                    else:
                        noise[frows, :max_m] = vals
                pool.advance(streams if frows is None else streams[frows], consumed)
        if fast_mask is not None:
            # Streams that outran their harvest replay on a live Random,
            # running the scalar noise strategy verbatim.
            for i in np.nonzero(~fast_mask)[0]:
                rng = pool.scalar_rng(int(streams[i]))
                ui = rng.random()
                u[i] = ui
                if ui < p_r and not deg[i]:
                    lo_i, hi_i = float(low[i]), float(high[i])
                    for d in range(int(m[i])):
                        noise[i, d] = strategy.draw(rng, lo_i, hi_i, integral=integral)
        return u, noise

    def run_rounds(self) -> None:
        n, k, rounds, count = self.n, self.k, self.rounds, self.count
        delta, dom_low = self.delta, self.dom_low
        self.noise_strategy = self.members[0][2].params.noise
        integral = self.integral
        rows_all = np.arange(count)
        V, Vfirst = self.V, self.Vfirst
        G = np.full((count, k), dom_low, dtype=np.float64)
        vb = np.full(count, int(_vector_body_bytes(G[:1])[0]), dtype=np.int64)
        bytes_total = np.zeros(count, dtype=np.int64)
        prev_pos = np.empty(count, dtype=np.int64)
        inserted = np.zeros((count, n), dtype=bool)
        snapshots = np.empty((count, rounds, k), dtype=np.float64)
        # Per-message constants vary per item only through the query tag and
        # the node-id byte lengths.
        qe = np.array(
            [
                (9 + len(json.dumps(qid))) if qid else 0
                for qid in self.query_ids
            ],
            dtype=np.int64,
        )
        # Bulk-converted members share one ids list per distinct input shape,
        # so the id-byte sum is computed once per distinct list object.
        idsb_cache: dict[int, int] = {}
        idsb_vals = []
        for ids in self.node_ids:
            cached = idsb_cache.get(id(ids))
            if cached is None:
                cached = idsb_cache[id(ids)] = 2 * sum(
                    _id_len(node_id) for node_id in ids
                )
            idsb_vals.append(cached)
        idsb = np.array(idsb_vals, dtype=np.int64)
        per_message_fixed = n * qe + idsb
        events: list = []
        kk = np.arange(k)
        for round_number in range(1, rounds + 1):
            p_r = self.probs[round_number - 1]
            walk = self.walks[round_number - 1] if self.remap else self.walks[0]
            prev_pos[:] = 0
            for pos in range(n):
                node = walk[:, pos]
                cand = (Vfirst[rows_all, node] > G[:, k - 1]) & ~inserted[
                    rows_all, node
                ]
                crows = np.nonzero(cand)[0]
                ncand = crows.shape[0]
                if ncand == 0:
                    continue
                cnodes = node[crows]
                streams = crows * n + cnodes
                Vc = V[crows, cnodes]
                Gc = G[crows]
                # m = |topk(G u V) - G|: position j contributes iff
                # V[j] > G[k-1-j] (ties favor the circulating copy).
                m = (Vc > Gc[:, ::-1]).sum(axis=1)
                idx = np.arange(ncand)
                # kth_real = real_topk[k-1]; anchor = g_prev[k-m].
                kth = np.where(
                    m == k,
                    Vc[:, k - 1],
                    np.minimum(Gc[idx, k - 1 - m], Vc[idx, m - 1]),
                )
                anchor = Gc[idx, k - m]
                low = np.maximum(np.minimum(kth - delta, anchor), dom_low)
                high = kth
                deg = low >= high
                u, noise = self._cell_draws(streams, m, low, high, deg, p_r)
                reveal = u >= p_r
                # One merge serves all three outcomes: the tail is the
                # node's own top-m on reveal, the drawn noise on randomize,
                # and the domain floor when the noise range is empty.
                tail = noise
                if deg.any():
                    tail[deg] = dom_low
                if reveal.any():
                    tail[reveal] = Vc[reveal]
                    inserted[crows[reveal], cnodes[reveal]] = True
                    deg &= ~reveal
                head = np.where(kk < (k - m)[:, None], Gc, -np.inf)
                tailm = np.where(kk < m[:, None], tail, -np.inf)
                merged = np.concatenate([head, tailm], axis=1)
                merged.sort(axis=1)
                new_rows = merged[:, -1 : -k - 1 : -1]
                # Byte span: hops since the previous event went out at the
                # old body length; this hop onward pays the new one.
                bytes_total[crows] += vb[crows] * (pos - prev_pos[crows])
                prev_pos[crows] = pos
                G[crows] = new_rows
                vb[crows] = _vector_body_bytes(new_rows)
                if deg.any() and self.int_repr_delta:
                    bytes_total[crows[deg]] -= self.int_repr_delta * m[deg]
                events.append((round_number, pos, crows, new_rows, m, deg))
            bytes_total += vb * (n - prev_pos)
            bytes_total += (
                n * (_FIXED + len(str(round_number)) + _TOKEN_LEN)
                + per_message_fixed
            )
            snapshots[:, round_number - 1] = G
            if round_number < rounds and not (
                (Vfirst > G[:, k - 1 : k]) & ~inserted
            ).any():
                # Every trial is inert: no node can contribute again, so the
                # remaining rounds circulate fixed vectors.  Close their byte
                # accounting and snapshots without walking the cells.
                for tail_round in range(round_number + 1, rounds + 1):
                    bytes_total += vb * n + (
                        n * (_FIXED + len(str(tail_round)) + _TOKEN_LEN)
                        + per_message_fixed
                    )
                    snapshots[:, tail_round - 1] = G
                break
        # Result broadcast: one more pass of the final vector.
        bytes_total += (
            n * (_FIXED + len(str(rounds + 1)) + _RESULT_LEN)
            + per_message_fixed
            + n * vb
        )
        self.bytes_total = bytes_total
        self.snapshots = snapshots
        self.events = events

    # -- event-log reconstruction ---------------------------------------------

    def _trial_events(self, t: int):
        by_trial = self._events_by_trial
        if by_trial is None:
            by_trial = self._events_by_trial = {}
            for round_number, pos, crows, new_rows, m, deg in self.events:
                vals = new_rows.tolist()
                for i, row in enumerate(crows.tolist()):
                    by_trial.setdefault(row, []).append(
                        (round_number, pos, vals[i], int(m[i]), bool(deg[i]))
                    )
        return by_trial.get(t, ())

    def _build_passes(self, t: int):
        """Reconstruct the scalar kernel's per-pass log records for trial t."""
        n, k, rounds = self.n, self.k, self.rounds
        ids = self.node_ids[t]
        int_low = int(self.dom_low) if self.low_is_int else None
        state = (self.dom_low,) * k
        events = iter(self._trial_events(t))
        event = next(events, None)
        passes = []
        for round_number in range(1, rounds + 1):
            walk = self.walks[round_number - 1] if self.remap else self.walks[0]
            walk_ids = tuple(ids[j] for j in walk[t].tolist())
            hops = []
            for pos in range(n):
                if (
                    event is not None
                    and event[0] == round_number
                    and event[1] == pos
                ):
                    _, _, row, m, degenerate = event
                    state = tuple(row)
                    if degenerate and int_low is not None:
                        # The degenerate hop carries raw ints for one hop;
                        # the receiver re-reads the payload as floats.
                        hops.append(state[: k - m] + (int_low,) * m)
                    else:
                        hops.append(state)
                    event = next(events, None)
                else:
                    hops.append(state)
            passes.append(("token", round_number, walk_ids, hops))
        final_walk = self.walks[-1] if self.remap else self.walks[0]
        passes.append(
            (
                "result",
                rounds + 1,
                tuple(ids[j] for j in final_walk[t].tolist()),
                state,
            )
        )
        return passes

    # -- finalize -------------------------------------------------------------

    def finalize(self, traces, results) -> None:
        n, k, rounds, count = self.n, self.k, self.rounds, self.count
        # ``Counter(mapping)`` on an empty counter defers to ``dict.update``
        # (C speed), as does ``Counter(pair_list)`` via ``_count_elements``;
        # both avoid per-key python loops in this per-trial section.
        per_round_template = Counter({r: n for r in range(1, rounds + 2)})
        per_type_template = Counter({"token": n * rounds, "result": n})
        messages_total = n * (rounds + 1)
        clock = _simulated_seconds(n, rounds)
        snapshot_rounds = range(1, rounds + 1)
        single_ring = len(self.ring_orders) == 1
        # Ring member names: one object-array gather per ring when every
        # member shares the same ids list (the common bulk case).
        ids0 = self.node_ids[0]
        shared_ids = all(ids is ids0 for ids in self.node_ids)
        if shared_ids:
            ids_arr = np.array(ids0, dtype=object)
            rings_names = [ids_arr[ring].tolist() for ring in self.ring_orders]
        # One C-level conversion for the whole batch beats ``count`` small
        # per-trial ``tolist`` calls.
        all_snaps = self.snapshots.tolist()
        all_values = self.V.tolist()
        starters = self.starter.tolist()
        for t, (index, prepared, config, matrix) in enumerate(self.members):
            ids = self.node_ids[t]
            if shared_ids:
                ring_lists = [names[t] for names in rings_names]
            else:
                ring_lists = [
                    [ids[j] for j in ring[t].tolist()]
                    for ring in self.ring_orders
                ]
            ring_ids = [tuple(members) for members in ring_lists]
            stats = _BatchStats(
                messages_total,
                int(self.bytes_total[t]),
                lambda lists=ring_lists, qid=self.query_ids[t]: (
                    _stats_counters(
                        lists,
                        single_ring,
                        rounds,
                        per_round_template,
                        per_type_template,
                        qid,
                        messages_total,
                    )
                ),
            )
            snaps = all_snaps[t]
            log = _BatchLog(
                (lambda trial=t: self._build_passes(trial)), self.query_ids[t]
            )
            trace = traces[index]
            if trace is not None:
                _synthesize_trace(
                    trace,
                    protocol=PROBABILISTIC,
                    total_rounds=rounds,
                    starter=ids[starters[t]],
                    k=k,
                    initial_ring=RingTopology(ring_ids[0]),
                    n=n,
                    log_passes=log._passes,
                )
            result = ProtocolResult(
                query=prepared.query,
                protocol=PROBABILISTIC,
                final_vector=snaps[rounds - 1],
                ring_order=ring_ids[0],
                starter=ids[starters[t]],
                local_vectors=(
                    dict(zip(ids, all_values[t]))
                    if type(prepared) is _FastItem
                    # ``prepare_query_vectors`` already sorted these.
                    else {node: list(v) for node, v in prepared.vectors.items()}
                ),
                round_snapshots=dict(zip(snapshot_rounds, snaps)),
                event_log=log,
                stats=stats,
                ring_history=dict(zip(snapshot_rounds, ring_ids)),
                simulated_seconds=clock,
                schedule=config.params.schedule,
            )
            result.negated = prepared.negated
            result.original_query = prepared.original_query
            results[index] = result

    def execute(self, traces, query_ids, results) -> None:
        self.node_ids = [
            prepared.ids
            if type(prepared) is _FastItem
            else sorted(prepared.vectors)
            for (_, prepared, _, _) in self.members
        ]
        self.query_ids = [query_ids[index] for (index, _, _, _) in self.members]
        self.V = np.stack([matrix for (_, _, _, matrix) in self.members])
        self.Vfirst = np.ascontiguousarray(self.V[:, :, 0])
        self.replay_run_rngs()
        self.run_rounds()
        self.finalize(traces, results)


# -- entry point --------------------------------------------------------------

def execute_many(
    jobs,
    *,
    traces=None,
    query_ids=None,
) -> list[ProtocolResult]:
    """Run a batch of ``(local_vectors, query, config)`` jobs vectorized.

    Jobs with the same protocol shape (n, k, rounds, schedule, delta, noise,
    domain) execute as one numpy batch; the rest run one-by-one on the
    scalar kernel.  ``query_ids`` defaults to the transport batch's
    ``q{index}`` tagging; pass explicit ids (or ``""`` for untagged
    single-query accounting) to control the per-message tag.  Results come
    back in job order and are bit-identical to the session backend per job.

    A failing job aborts the whole batch with that job's exception; when
    several jobs would fail, which exception surfaces first may differ from
    the transport path's construction order.
    """
    jobs = list(jobs)
    if traces is None:
        traces = [None] * len(jobs)
    if query_ids is None:
        query_ids = [f"q{index}" for index in range(len(jobs))]
    results: list[ProtocolResult | None] = [None] * len(jobs)
    groups: dict[tuple, list] = {}
    scalar_jobs: list[tuple[int, object, "RunConfig"]] = []
    bulk_shapes: dict[tuple[int, int], list] = {}
    probe_cache: dict = {}
    id_cache: dict = {}
    for index, (vectors, query, config) in enumerate(jobs):
        fast = _fast_probe(vectors, query, config, probe_cache, id_cache)
        if fast is None:
            _slow_classify(index, vectors, query, config, groups, scalar_jobs)
        else:
            key, ids, width = fast
            bulk_shapes.setdefault((key[0], width), []).append(
                (index, vectors, query, config, key, ids)
            )
    for (n, width), entries in bulk_shapes.items():
        _bulk_prepare(n, width, entries, groups, scalar_jobs)
    # Scalar fallbacks first, in job order: they are the only jobs that can
    # raise mid-protocol, and grouped jobs are error-free by construction.
    scalar_jobs.sort(key=lambda job: job[0])
    for index, prepared, config in scalar_jobs:
        results[index] = execute_scalar(
            prepared, config, trace=traces[index], query_id=query_ids[index]
        ).result
    for key, members in groups.items():
        _Group(key, members).execute(traces, query_ids, results)
    return results
