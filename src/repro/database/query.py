"""Query descriptions shared by every party in a protocol run.

A :class:`TopKQuery` is the public, agreed-upon object: which table and
attribute to query, how many values to select, and the publicly known data
domain (Section 2: "we assume all data values of the attribute belong to a
publicly known data domain").  Nothing in it is private.
"""

from __future__ import annotations

from dataclasses import dataclass


class QueryError(ValueError):
    """Raised for malformed queries or query/domain mismatches."""


@dataclass(frozen=True)
class Domain:
    """A publicly known, closed numeric domain ``[low, high]``.

    The protocol initialization module uses ``low`` as the identity element of
    the global max vector ("the lowest possible value in the corresponding
    data domain", Section 3.3) and privacy analysis uses the domain size to
    justify approximating prior probabilities with zero.
    """

    low: float
    high: float
    integral: bool = True

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise QueryError(f"empty domain [{self.low}, {self.high}]")

    @property
    def size(self) -> float:
        """Number of distinct values (integral) or width (continuous)."""
        if self.integral:
            return int(self.high) - int(self.low) + 1
        return self.high - self.low

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= value <= self.high

    def clamp(self, value: float) -> float:
        return min(max(value, self.low), self.high)


#: The domain used throughout the paper's evaluation (Section 5.1).
PAPER_DOMAIN = Domain(1, 10_000)


@dataclass(frozen=True)
class TopKQuery:
    """A top-k selection query over one attribute of one table.

    ``k == 1`` is the max query of Section 3.3; ``smallest=True`` turns it
    into a bottom-k/min query (used by the kNN extension, which selects the
    k smallest distances).
    """

    table: str
    attribute: str
    k: int
    domain: Domain = PAPER_DOMAIN
    smallest: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if not self.table or not self.attribute:
            raise QueryError("table and attribute must be non-empty")

    @property
    def is_max_query(self) -> bool:
        return self.k == 1 and not self.smallest

    def identity_vector(self) -> list[float]:
        """The initial global vector: k copies of the domain's worst value."""
        worst = self.domain.high if self.smallest else self.domain.low
        return [worst] * self.k


def max_query(table: str, attribute: str, domain: Domain = PAPER_DOMAIN) -> TopKQuery:
    """Convenience constructor for the k=1 max query."""
    return TopKQuery(table=table, attribute=attribute, k=1, domain=domain)


def min_query(table: str, attribute: str, domain: Domain = PAPER_DOMAIN) -> TopKQuery:
    """Convenience constructor for the k=1 min query."""
    return TopKQuery(table=table, attribute=attribute, k=1, domain=domain, smallest=True)
