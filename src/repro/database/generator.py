"""Synthetic workload generators reproducing the paper's experiment setup.

Section 5.1: "The attribute values at each node are randomly generated over
the integer domain [1, 10000].  We experimented with various distributions of
data, such as uniform distribution, normal distribution, and zipf
distribution."

All generators draw integers from a :class:`~repro.database.query.Domain` and
are deterministic given a seeded ``random.Random``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from .database import PrivateDatabase, database_from_values
from .query import PAPER_DOMAIN, Domain

#: Distribution names accepted by :class:`DataGenerator`.
DISTRIBUTIONS = ("uniform", "normal", "zipf")


@dataclass
class DataGenerator:
    """Draws attribute values for node-local datasets.

    Parameters
    ----------
    domain:
        Public integer domain; defaults to the paper's [1, 10000].
    distribution:
        One of :data:`DISTRIBUTIONS`.
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible experiments.
    normal_sigma_fraction:
        For the normal distribution: standard deviation as a fraction of the
        domain width (mean is the domain midpoint).
    zipf_alpha:
        Skew of the zipf distribution over the domain's ranked values.
    """

    domain: Domain = PAPER_DOMAIN
    distribution: str = "uniform"
    rng: random.Random = field(default_factory=random.Random)
    normal_sigma_fraction: float = 0.15
    zipf_alpha: float = 1.2

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; "
                f"expected one of {DISTRIBUTIONS}"
            )
        if not self.domain.integral:
            raise ValueError("DataGenerator draws from integer domains only")
        if self.zipf_alpha <= 1.0:
            raise ValueError("zipf_alpha must be > 1 for a proper distribution")
        if self.normal_sigma_fraction <= 0:
            raise ValueError("normal_sigma_fraction must be positive")

    # -- single draws --------------------------------------------------------

    def draw(self) -> int:
        """Draw one in-domain integer from the configured distribution."""
        low, high = int(self.domain.low), int(self.domain.high)
        if self.distribution == "uniform":
            return self.rng.randint(low, high)
        if self.distribution == "normal":
            mean = (low + high) / 2
            sigma = (high - low) * self.normal_sigma_fraction
            # Redraw rather than clamp: clamping piles probability mass on the
            # domain edges, which would distort max-query experiments.
            for _ in range(1000):
                value = round(self.rng.gauss(mean, sigma))
                if low <= value <= high:
                    return value
            return round(mean)
        # zipf: rank-frequency draw over the domain via inverse-CDF on a
        # truncated zeta distribution.  Rank 1 maps to the domain low so the
        # skew concentrates on small values, as in classic zipf workloads.
        rank = self._zipf_rank(high - low + 1)
        return low + rank - 1

    def _zipf_rank(self, n_ranks: int) -> int:
        """Sample a rank in [1, n_ranks] ~ 1/rank^alpha via rejection sampling.

        Uses the standard Devroye rejection method for the zeta distribution,
        truncated to ``n_ranks``.
        """
        alpha = self.zipf_alpha
        b = 2.0 ** (alpha - 1.0)
        while True:
            u = self.rng.random()
            v = self.rng.random()
            x = int(u ** (-1.0 / (alpha - 1.0)))
            if x < 1 or x > n_ranks:
                continue
            t = (1.0 + 1.0 / x) ** (alpha - 1.0)
            if v * x * (t - 1.0) / (b - 1.0) <= t / b:
                return x

    # -- bulk draws ----------------------------------------------------------

    def values(self, count: int) -> list[int]:
        """Draw ``count`` values."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.draw() for _ in range(count)]

    def node_datasets(self, nodes: int, values_per_node: int) -> list[list[int]]:
        """Draw one dataset per node."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        return [self.values(values_per_node) for _ in range(nodes)]

    def databases(
        self,
        nodes: int,
        values_per_node: int,
        *,
        table: str = "data",
        attribute: str = "value",
        owner_prefix: str = "node",
        engine: str | None = None,
    ) -> list[PrivateDatabase]:
        """Build one single-table :class:`PrivateDatabase` per node.

        ``engine`` selects the storage engine backing each node's table
        (see :mod:`repro.database.engines`); the default is the columnar
        engine, and all engines answer bit-identically.
        """
        return [
            database_from_values(
                f"{owner_prefix}{i}",
                dataset,
                table=table,
                attribute=attribute,
                engine=engine,
            )
            for i, dataset in enumerate(self.node_datasets(nodes, values_per_node))
        ]


def datasets_with_known_topk(
    nodes: int,
    values_per_node: int,
    topk: Sequence[int],
    *,
    domain: Domain = PAPER_DOMAIN,
    rng: random.Random | None = None,
) -> list[list[int]]:
    """Generate node datasets whose global top-k is exactly ``topk``.

    Useful for correctness tests: the expected answer is known by
    construction.  ``topk`` must be sorted descending and the remaining filler
    values are drawn uniformly below ``min(topk)``.
    """
    rng = rng or random.Random()
    expected = sorted(topk, reverse=True)
    if list(topk) != expected:
        raise ValueError("topk must be sorted descending")
    if any(v not in domain for v in topk):
        raise ValueError("topk values must lie inside the domain")
    if nodes * values_per_node < len(topk):
        raise ValueError("not enough total slots to place the topk values")
    low = int(domain.low)
    ceiling = int(min(topk)) - 1
    if ceiling < low:
        raise ValueError("min(topk) leaves no room for filler values")
    datasets = [
        [rng.randint(low, ceiling) for _ in range(values_per_node)]
        for _ in range(nodes)
    ]
    # Scatter the planted values across random slots.
    slots = [(i, j) for i in range(nodes) for j in range(values_per_node)]
    for value, (i, j) in zip(topk, rng.sample(slots, len(topk))):
        datasets[i][j] = int(value)
    return datasets
