"""A seeded TPC-H-like workload at production data volumes.

The ROADMAP's "real data at scale" item: stand up federations whose parties
each hold millions of rows of a realistic fact table, so every benchmark
and figure is runnable at production volumes instead of the paper's 10k
toy lists.  This module generates a ``lineitem``-shaped table — the TPC-H
fact table whose ``l_extendedprice`` column is the classic top-k target —
with the same pricing structure as dbgen (``extendedprice = quantity x
unit price``, quantity in [1, 50]) and a *per-party perturbation*: each
party's prices are jittered by a party-seeded multiplicative factor, so
parties hold overlapping-but-distinct private data, exactly the setup the
protocols are for.

Everything is deterministic: party seeds derive from ``(seed, party)`` via
SHA-256 (the repo-wide idiom, collision-free across parties), and
generation is vectorized numpy feeding :meth:`Table.insert_arrays`, so a
scale-factor-1 party (6M rows) builds in seconds rather than minutes.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .database import PrivateDatabase
from .query import Domain, TopKQuery
from .schema import Schema

__all__ = [
    "LINEITEM_COLUMNS",
    "LINEITEM_ROWS_PER_SF",
    "LINEITEM_SCHEMA",
    "TPCH_ATTRIBUTE",
    "TPCH_PRICE_DOMAIN",
    "TPCH_TABLE",
    "lineitem_arrays",
    "lineitem_database",
    "lineitem_databases",
    "price_query",
]

TPCH_TABLE = "lineitem"
TPCH_ATTRIBUTE = "l_extendedprice"

#: The lineitem columns we model (the numeric core of the TPC-H fact table).
LINEITEM_COLUMNS = (
    ("l_orderkey", "INTEGER"),
    ("l_partkey", "INTEGER"),
    ("l_quantity", "INTEGER"),
    ("l_extendedprice", "REAL"),
    ("l_discount", "REAL"),
    ("l_tax", "REAL"),
)
LINEITEM_SCHEMA = Schema.of(*LINEITEM_COLUMNS)

#: TPC-H dbgen produces ~6M lineitem rows at scale factor 1.
LINEITEM_ROWS_PER_SF = 6_000_000

#: The public domain for ``l_extendedprice``.  dbgen prices are
#: quantity [1, 50] x unit price [900, 2100]; with jitter < 10% the
#: product stays well inside [1, 120000], and the protocols require only
#: that the agreed domain *contain* every value.
TPCH_PRICE_DOMAIN = Domain(1.0, 120_000.0, integral=False)

_QUANTITY_LOW, _QUANTITY_HIGH = 1, 50
_UNIT_PRICE_LOW, _UNIT_PRICE_HIGH = 900.0, 2100.0
_MAX_JITTER = 0.1


def _party_seed(seed: int, party: str) -> int:
    """Derive one party's generation seed, SHA-256 style (repo idiom)."""
    material = f"tpch:{seed}:{party}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def lineitem_arrays(
    rows: int, *, seed: int, party: str = "party0", jitter: float = 0.02
) -> dict[str, np.ndarray]:
    """Generate one party's lineitem columns as canonical numpy arrays.

    ``jitter`` is the party-specific perturbation: prices are scaled by a
    per-row factor uniform in ``[1 - jitter, 1 + jitter]`` drawn from the
    party's own seeded stream, then rounded to cents.  ``jitter=0`` gives
    every party identical pricing structure (still distinct rows, since the
    whole stream is party-seeded).
    """
    if rows < 0:
        raise ValueError("rows must be non-negative")
    if not 0 <= jitter < _MAX_JITTER:
        raise ValueError(
            f"jitter must be in [0, {_MAX_JITTER}) to keep prices inside "
            f"the public domain, got {jitter}"
        )
    rng = np.random.default_rng(_party_seed(seed, party))
    orderkey = rng.integers(1, LINEITEM_ROWS_PER_SF * 4, size=rows, dtype=np.int64)
    partkey = rng.integers(1, 200_001, size=rows, dtype=np.int64)
    quantity = rng.integers(
        _QUANTITY_LOW, _QUANTITY_HIGH + 1, size=rows, dtype=np.int64
    )
    unit_price = rng.uniform(_UNIT_PRICE_LOW, _UNIT_PRICE_HIGH, size=rows)
    factor = rng.uniform(1.0 - jitter, 1.0 + jitter, size=rows)
    extendedprice = np.round(quantity * unit_price * factor, 2)
    discount = np.round(rng.uniform(0.0, 0.10, size=rows), 2)
    tax = np.round(rng.uniform(0.0, 0.08, size=rows), 2)
    return {
        "l_orderkey": orderkey,
        "l_partkey": partkey,
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": discount,
        "l_tax": tax,
    }


def lineitem_database(
    owner: str,
    *,
    seed: int,
    rows: int | None = None,
    scale_factor: float | None = None,
    jitter: float = 0.02,
    engine: str | None = None,
) -> PrivateDatabase:
    """Build one party's private database holding a lineitem table.

    Size the table with either ``rows`` (exact row count) or
    ``scale_factor`` (TPC-H convention: ``sf x 6M`` rows); exactly one must
    be given.  The party's data is fully determined by ``(seed, owner)``.
    """
    if (rows is None) == (scale_factor is None):
        raise ValueError("pass exactly one of rows= or scale_factor=")
    if rows is None:
        if scale_factor < 0:  # type: ignore[operator]
            raise ValueError("scale_factor must be non-negative")
        rows = int(scale_factor * LINEITEM_ROWS_PER_SF)  # type: ignore[operator]
    db = PrivateDatabase(owner, engine=engine)
    table = db.create_table(TPCH_TABLE, LINEITEM_SCHEMA)
    table.insert_arrays(lineitem_arrays(rows, seed=seed, party=owner, jitter=jitter))
    return db


def lineitem_databases(
    parties: int,
    *,
    seed: int,
    rows_per_party: int | None = None,
    scale_factor: float | None = None,
    jitter: float = 0.02,
    engine: str | None = None,
    owner_prefix: str = "party",
) -> list[PrivateDatabase]:
    """Build one lineitem-holding database per party (perturbed per party)."""
    if parties < 1:
        raise ValueError("parties must be >= 1")
    return [
        lineitem_database(
            f"{owner_prefix}{i}",
            seed=seed,
            rows=rows_per_party,
            scale_factor=scale_factor,
            jitter=jitter,
            engine=engine,
        )
        for i in range(parties)
    ]


def price_query(k: int, *, smallest: bool = False) -> TopKQuery:
    """The workload's canonical query: top-k of ``l_extendedprice``."""
    return TopKQuery(
        table=TPCH_TABLE,
        attribute=TPCH_ATTRIBUTE,
        k=k,
        domain=TPCH_PRICE_DOMAIN,
        smallest=smallest,
    )
