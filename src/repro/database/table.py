"""An in-memory relational table with the small query surface the protocols need.

The protocols only ever ask a private database two things about a table:
*all values of one numeric attribute* and *the local top-k of that attribute*.
The table nevertheless supports enough of the classic relational operations
(insert, scan, filtered select, projection, aggregation) to make the example
applications realistic rather than toy value-lists.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Iterator

from .schema import Schema, SchemaError

Row = dict[str, object]
Predicate = Callable[[Row], bool]


class Table:
    """A schema-validated, append-oriented in-memory table."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        self._version = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, columns={self.schema.names}, rows={len(self)})"

    # -- mutation ----------------------------------------------------------

    def insert(self, row: Row) -> None:
        """Insert one row after validating it against the schema."""
        self.schema.validate_row(row)
        # Store a copy so later caller-side mutation cannot corrupt the table.
        self._rows.append(dict(row))
        self._version += 1

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert rows, returning how many were inserted.

        Validation is all-or-nothing: if any row is invalid, no row is added.
        """
        staged = []
        for row in rows:
            self.schema.validate_row(row)
            staged.append(dict(row))
        self._rows.extend(staged)
        if staged:
            self._version += 1
        return len(staged)

    @property
    def version(self) -> int:
        """Monotone mutation counter, bumped by every batch of inserts.

        Consumers (e.g. the federation's query-result cache) compare
        versions to detect that previously computed answers may be stale.
        """
        return self._version

    # -- queries -----------------------------------------------------------

    def scan(self, where: Predicate | None = None) -> list[Row]:
        """Return (copies of) all rows matching ``where``."""
        if where is None:
            return [dict(r) for r in self._rows]
        return [dict(r) for r in self._rows if where(r)]

    def project(self, column: str, where: Predicate | None = None) -> list[object]:
        """Return the values of one column, optionally filtered."""
        self.schema.column(column)  # raises on unknown column
        rows = self._rows if where is None else (r for r in self._rows if where(r))
        return [r.get(column) for r in rows]

    def numeric_values(
        self, column: str, where: Predicate | None = None
    ) -> list[float]:
        """Return non-null values of a numeric column.

        This is the attribute-value extraction step every node performs before
        joining a protocol run.
        """
        col = self.schema.column(column)
        if not col.is_numeric:
            raise SchemaError(f"column {column!r} is not numeric")
        return [v for v in self.project(column, where) if v is not None]  # type: ignore[list-item]

    def top_k(
        self, column: str, k: int, where: Predicate | None = None
    ) -> list[float]:
        """Local top-k of a numeric column, sorted descending.

        Returns fewer than ``k`` values when the table is small.  This is the
        node-local sort-and-truncate of Section 3.4 ("each node first sorts its
        values and takes the local set of topk values").
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        values = self.numeric_values(column, where)
        return heapq.nlargest(k, values)

    def bottom_k(
        self, column: str, k: int, where: Predicate | None = None
    ) -> list[float]:
        """Local bottom-k (ascending) — used by min queries and kNN distances."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        values = self.numeric_values(column, where)
        return heapq.nsmallest(k, values)

    def aggregate(
        self,
        column: str,
        func: str,
        where: Predicate | None = None,
    ) -> float | None:
        """Local aggregate: one of ``max``, ``min``, ``sum``, ``count``, ``avg``."""
        if func == "count":
            return float(len(self.project(column, where)))
        values = self.numeric_values(column, where)
        if not values:
            return None
        if func == "max":
            return max(values)
        if func == "min":
            return min(values)
        if func == "sum":
            return float(sum(values))
        if func == "avg":
            return float(sum(values)) / len(values)
        raise ValueError(f"unknown aggregate function: {func!r}")
