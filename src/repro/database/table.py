"""An in-memory relational table with the small query surface the protocols need.

The protocols only ever ask a private database two things about a table:
*all values of one numeric attribute* and *the local top-k of that attribute*.
The table nevertheless supports enough of the classic relational operations
(insert, scan, filtered select, projection, aggregation) to make the example
applications realistic rather than toy value-lists.

Storage is delegated to a pluggable :class:`~repro.database.engines.StorageEngine`
(the numpy columnar engine by default — see :mod:`repro.database.engines`),
which accelerates the predicate-free query paths; validation, the ``where``
predicate paths, and the ``version`` cache-invalidation counter live here
and are engine-independent.  All engines answer bit-identically, so which
one backs a table is a performance choice, never a semantic one.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

from .engines import (
    ExtractionSample,
    StorageEngine,
    _scalar_aggregate,
    extraction_sink,
    make_engine,
)
from .predicates import ColumnPredicate
from .schema import Schema, SchemaError

Row = dict[str, object]
#: ``where=`` accepts any row callable; a structured
#: :class:`~repro.database.predicates.ColumnPredicate` (see
#: :func:`~repro.database.predicates.col`) additionally unlocks the
#: vectorized filtered-query path on the columnar engine.
Predicate = Callable[[Row], bool]
EngineSpec = "str | Callable[[Schema], StorageEngine] | None"


class Table:
    """A schema-validated, append-oriented in-memory table.

    ``engine`` selects the storage backend: an engine name from
    :data:`~repro.database.engines.ENGINES` (``"row"``, ``"columnar"``,
    ``"duckdb"``), a factory callable ``Schema -> StorageEngine``, or
    ``None`` for the default (columnar).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        engine: "str | Callable[[Schema], StorageEngine] | None" = None,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._engine = make_engine(engine, schema)
        self._version = 0

    @property
    def engine_name(self) -> str:
        """The backing storage engine's name (``row``/``columnar``/``duckdb``)."""
        return self._engine.name

    def __len__(self) -> int:
        return len(self._engine)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._engine.rows())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, columns={self.schema.names}, rows={len(self)})"

    # -- mutation ----------------------------------------------------------

    def _normalize(self, row: Row) -> Row:
        # Engines store full rows: every schema column present, None where
        # the caller omitted a nullable value (validate_row already treats
        # a missing key as None, so this changes nothing observable).
        return {name: row.get(name) for name in self.schema.names}

    def insert(self, row: Row) -> None:
        """Insert one row after validating it against the schema."""
        self.schema.validate_row(row)
        # Store a copy so later caller-side mutation cannot corrupt the table.
        self._engine.append_rows([self._normalize(row)])
        self._version += 1

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert rows, returning how many were inserted.

        Validation is all-or-nothing: if any row is invalid, no row is added.
        """
        staged = []
        for row in rows:
            self.schema.validate_row(row)
            staged.append(self._normalize(row))
        self._engine.append_rows(staged)
        if staged:
            self._version += 1
        return len(staged)

    def insert_arrays(self, columns: dict[str, "Sequence | np.ndarray"]) -> int:
        """Bulk-insert one value sequence per schema column; returns the count.

        The fast ingestion path for dataset builders: numpy arrays for
        numeric columns skip per-value validation (the dtype is the proof)
        and land in columnar storage without ever being boxed.  Arrays are
        canonicalized *before* any engine sees them — INTEGER to int64,
        REAL to float64 — so every engine stores identical values; a REAL
        array containing non-finite values, or any plain-list input, takes
        the validated scalar path instead.  Counts as one mutation batch
        (one ``version`` bump), like :meth:`insert_many`.
        """
        unknown = set(columns) - set(self.schema.names)
        if unknown:
            raise SchemaError(f"unknown columns in batch: {sorted(unknown)}")
        missing = set(self.schema.names) - set(columns)
        if missing:
            raise SchemaError(f"missing columns in batch: {sorted(missing)}")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged column batch: lengths {sorted(lengths)}")
        count = lengths.pop() if lengths else 0
        if count == 0:
            return 0

        canonical: dict[str, np.ndarray | list] = {}
        for column in self.schema.columns:
            values = columns[column.name]
            array = values if isinstance(values, np.ndarray) else None
            if array is not None and column.type == "INTEGER" and array.dtype.kind == "i":
                canonical[column.name] = array.astype(np.int64, copy=False)
            elif (
                array is not None
                and column.type == "REAL"
                and array.dtype.kind == "f"
                and bool(np.isfinite(array).all())
            ):
                canonical[column.name] = array.astype(np.float64, copy=False)
            else:
                listed = array.tolist() if array is not None else list(values)
                for value in listed:
                    column.validate(value)
                canonical[column.name] = listed
        self._engine.append_columns(canonical, count)
        self._version += 1
        return count

    @property
    def version(self) -> int:
        """Monotone mutation counter, bumped by every batch of inserts.

        Consumers (e.g. the federation's query-result cache) compare
        versions to detect that previously computed answers may be stale.
        """
        return self._version

    # -- queries -----------------------------------------------------------

    def _row_mask(self, where: Predicate) -> "np.ndarray | None":
        """Vectorize a structured predicate, or ``None`` for the scalar path.

        Structured predicates are schema-checked here (on *every* engine —
        a typo'd column name should raise, not silently match nothing),
        then handed to the engine's ``try_mask`` hook if it has one.  A
        ``None`` return means "evaluate ``where`` row by row instead": the
        predicate is an opaque callable, the engine has no mask support, or
        a referenced column cannot vectorize exactly (spilled / TEXT).
        """
        if not isinstance(where, ColumnPredicate):
            return None
        unknown = set(where.columns()) - set(self.schema.names)
        if unknown:
            raise SchemaError(
                f"predicate references unknown columns: {sorted(unknown)}"
            )
        try_mask = getattr(self._engine, "try_mask", None)
        if try_mask is None:
            return None
        return try_mask(where)

    def _masked_values(
        self, column: str, where: Predicate
    ) -> "np.ndarray | None":
        """Filtered non-null values of a numeric column as an array.

        ``None`` means the scalar fallback must run (and will agree).
        """
        mask = self._row_mask(where)
        if mask is None:
            return None
        return self._engine.masked_numeric(column, mask)  # type: ignore[attr-defined]

    def scan(self, where: Predicate | None = None) -> list[Row]:
        """Return (copies of) all rows matching ``where``."""
        if where is None:
            return self._engine.rows()
        mask = self._row_mask(where)
        if mask is not None:
            # Build only the selected rows, straight from column storage.
            names = self.schema.names
            columns = [self._engine.column_values(name) for name in names]
            return [
                {name: col[i] for name, col in zip(names, columns)}
                for i in np.flatnonzero(mask)
            ]
        return [r for r in self._engine.rows() if where(r)]

    def project(self, column: str, where: Predicate | None = None) -> list[object]:
        """Return the values of one column, optionally filtered."""
        self.schema.column(column)  # raises on unknown column
        if where is None:
            return self._engine.column_values(column)
        mask = self._row_mask(where)
        if mask is not None:
            values = self._engine.column_values(column)
            return [values[i] for i in np.flatnonzero(mask)]
        return [r.get(column) for r in self._engine.rows() if where(r)]

    def numeric_values(
        self, column: str, where: Predicate | None = None
    ) -> list[float]:
        """Return non-null values of a numeric column.

        This is the attribute-value extraction step every node performs before
        joining a protocol run.
        """
        col = self.schema.column(column)
        if not col.is_numeric:
            raise SchemaError(f"column {column!r} is not numeric")
        if where is None:
            return self._engine.numeric_values(column)
        masked = self._masked_values(column, where)
        if masked is not None:
            return self._engine._to_list(masked)  # type: ignore[attr-defined]
        return [v for v in self.project(column, where) if v is not None]  # type: ignore[list-item]

    def _extract(self, op: str, column: str, k: int) -> list[float]:
        sink = extraction_sink()
        if sink is None:
            method = getattr(self._engine, op)
            return method(column, k)
        start = time.perf_counter()
        values = getattr(self._engine, op)(column, k)
        sink(
            ExtractionSample(
                engine=self._engine.name,
                table=self.name,
                column=column,
                op=op,
                rows=len(self._engine),
                k=k,
                seconds=time.perf_counter() - start,
            )
        )
        return values

    def top_k(
        self, column: str, k: int, where: Predicate | None = None
    ) -> list[float]:
        """Local top-k of a numeric column, sorted descending.

        Returns fewer than ``k`` values when the table is small.  This is the
        node-local sort-and-truncate of Section 3.4 ("each node first sorts its
        values and takes the local set of topk values").
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        col = self.schema.column(column)
        if not col.is_numeric:
            raise SchemaError(f"column {column!r} is not numeric")
        if where is None:
            return self._extract("top_k", column, k)
        masked = self._masked_values(column, where)
        if masked is not None:
            return self._engine.top_k_array(masked, k)  # type: ignore[attr-defined]
        import heapq

        return heapq.nlargest(k, self.numeric_values(column, where))

    def bottom_k(
        self, column: str, k: int, where: Predicate | None = None
    ) -> list[float]:
        """Local bottom-k (ascending) — used by min queries and kNN distances."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        col = self.schema.column(column)
        if not col.is_numeric:
            raise SchemaError(f"column {column!r} is not numeric")
        if where is None:
            return self._extract("bottom_k", column, k)
        masked = self._masked_values(column, where)
        if masked is not None:
            return self._engine.bottom_k_array(masked, k)  # type: ignore[attr-defined]
        import heapq

        return heapq.nsmallest(k, self.numeric_values(column, where))

    def aggregate(
        self,
        column: str,
        func: str,
        where: Predicate | None = None,
    ) -> float | None:
        """Local aggregate: one of ``max``, ``min``, ``sum``, ``count``, ``avg``.

        ``count`` counts the column's **non-null** values — consistent with
        ``sum``/``avg``, which also exclude nulls, so ``avg == sum / count``
        holds on every table.  (It used to count nulls too, making the three
        disagree on nullable columns.)  Use ``len(table)`` or
        ``len(table.scan(where))`` for a row count.
        """
        col = self.schema.column(column)
        if where is None and col.is_numeric:
            return self._engine.aggregate(column, func)
        if where is not None and col.is_numeric:
            masked = self._masked_values(column, where)
            if masked is not None:
                return self._engine.aggregate_array(masked, func)  # type: ignore[attr-defined]
        if func == "count":
            return float(sum(1 for v in self.project(column, where) if v is not None))
        return _scalar_aggregate(self.numeric_values(column, where), func)

    def values_within(
        self, column: str, low: float, high: float, where: Predicate | None = None
    ) -> bool:
        """True when every non-null value of ``column`` lies in ``[low, high]``.

        The vectorized form of the per-value domain check a database performs
        before admitting an attribute to a protocol run.
        """
        col = self.schema.column(column)
        if not col.is_numeric:
            raise SchemaError(f"column {column!r} is not numeric")
        if where is None:
            return self._engine.all_in_range(column, low, high)
        masked = self._masked_values(column, where)
        if masked is not None:
            return self._engine.in_range_array(masked, low, high)  # type: ignore[attr-defined]
        return all(low <= v <= high for v in self.numeric_values(column, where))
