"""Pluggable storage engines for the private-database substrate.

Every protocol run begins with each party's node-local extraction step
(Section 3.4: "each node first sorts its values and takes the local set of
topk values").  At the paper's 10k-value scale a Python list-of-dicts row
store is fine; at the millions-of-rows-per-party scale the production
roadmap demands, the per-row scan dominates end-to-end latency.  This
module makes the storage layout a pluggable choice behind one
:class:`StorageEngine` interface:

``row``
    The original list-of-dicts store: every value keeps its exact Python
    object identity, every query is a scalar scan.  The semantic reference
    the other engines are tested against.

``columnar`` (the default)
    Numeric columns live in chunked contiguous numpy arrays; ``top_k`` /
    ``bottom_k`` / ``numeric_values`` / ``aggregate`` / range checks run as
    ``np.partition``/reduction kernels.  Results are *bit-identical* to the
    row store: same values, same descending order, same tie behavior.  A
    column whose values cannot be represented losslessly in its typed array
    (an INTEGER outside int64, a non-finite or integer-typed value in a
    REAL column) **spills** the whole column to exact object storage and
    answers through the scalar path — the engine never trades correctness
    for speed, it only accelerates when acceleration is exact.

``duckdb`` (optional)
    Rows live in an in-memory DuckDB table; extraction and aggregation are
    pushed down as SQL.  Requires the ``duckdb`` package (``pip install
    repro[duckdb]``); constructing the engine without it raises
    :class:`StorageUnavailable`.  DuckDB stores REAL columns as DOUBLE, so
    integer values inserted into REAL columns read back as floats
    (value-equal, type-normalized), and SQL ``SUM`` over doubles may differ
    from the row store's sequential sum in the last ulp; ``top_k`` /
    ``bottom_k`` / ``min`` / ``max`` / ``count`` are exact.

Engines store *normalized* rows — every schema column present, ``None`` for
omitted nullable values — which :class:`~repro.database.table.Table`
guarantees at staging time.  Validation, schema checks, and the ``version``
counter stay in ``Table``; engines only hold data and answer queries.

The module also hosts the extraction telemetry sink: install a callback
with :func:`set_extraction_sink` (or the higher-level
:func:`repro.experiments.telemetry.profile_extraction`) and every node-local
``top_k``/``bottom_k`` reports an :class:`ExtractionSample` with its engine,
row count and wall-clock seconds.  With no sink installed the hot path pays
one module-attribute read.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from .predicates import ColumnPredicate, MaskUnsupported
from .schema import Schema

Row = dict[str, object]

__all__ = [
    "COLUMNAR",
    "DEFAULT_ENGINE",
    "DUCKDB",
    "ENGINES",
    "ROW",
    "ColumnarEngine",
    "DuckDbEngine",
    "ExtractionSample",
    "RowStoreEngine",
    "StorageEngine",
    "StorageUnavailable",
    "duckdb_available",
    "extraction_sink",
    "make_engine",
    "set_extraction_sink",
]

ROW = "row"
COLUMNAR = "columnar"
DUCKDB = "duckdb"
#: Engine names accepted by :func:`make_engine` (and everything above it).
ENGINES = (ROW, COLUMNAR, DUCKDB)
#: The engine new tables use when none is requested.
DEFAULT_ENGINE = COLUMNAR

#: Rows buffered per columnar chunk before the pending tail is sealed into
#: a contiguous array.  Large enough to amortize array construction, small
#: enough that a half-full tail never holds megabytes of boxed values.
CHUNK_ROWS = 1 << 18


class StorageUnavailable(RuntimeError):
    """Raised when an optional engine's backing library is not installed."""


# -- extraction telemetry ----------------------------------------------------


@dataclass(frozen=True)
class ExtractionSample:
    """One node-local extraction, as reported to the telemetry sink."""

    engine: str
    table: str
    column: str
    op: str  # "top_k" | "bottom_k"
    rows: int
    k: int
    seconds: float


_EXTRACTION_SINK: Callable[[ExtractionSample], None] | None = None


def set_extraction_sink(
    sink: Callable[[ExtractionSample], None] | None,
) -> Callable[[ExtractionSample], None] | None:
    """Install (or clear, with ``None``) the extraction sink; returns the
    previously installed one so scopes can chain and restore."""
    global _EXTRACTION_SINK
    previous = _EXTRACTION_SINK
    _EXTRACTION_SINK = sink
    return previous


def extraction_sink() -> Callable[[ExtractionSample], None] | None:
    """The currently installed sink (``None`` when telemetry is off)."""
    return _EXTRACTION_SINK


# -- the engine interface ----------------------------------------------------


class StorageEngine(ABC):
    """Storage and query execution for one table's rows.

    The contract is semantic equivalence with :class:`RowStoreEngine` on
    every method: engines may lay data out however they like, but the
    answers — values, order, ties, null handling — must match the row
    store exactly (the parity property suite enforces this).  Rows arriving
    through :meth:`append_rows` are already schema-validated and normalized
    (every column present); columns arriving through :meth:`append_columns`
    are canonicalized numpy arrays (no nulls) or validated Python lists
    (possibly with ``None``), one entry per schema column.
    """

    name: ClassVar[str] = "abstract"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    # -- mutation --

    @abstractmethod
    def append_rows(self, rows: Sequence[Row]) -> None:
        """Append validated, normalized rows."""

    @abstractmethod
    def append_columns(
        self, columns: dict[str, "np.ndarray | list"], count: int
    ) -> None:
        """Append a column batch: every schema column, ``count`` rows each."""

    # -- full-row access --

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def rows(self) -> list[Row]:
        """Every row as a fresh dict copy, in insertion order."""

    @abstractmethod
    def column_values(self, name: str) -> list[object]:
        """One column's values (``None`` included), in insertion order."""

    # -- vectorizable queries (no predicate; Table handles `where`) --

    @abstractmethod
    def numeric_values(self, name: str) -> list:
        """Non-null values of a numeric column, in insertion order."""

    @abstractmethod
    def top_k(self, name: str, k: int) -> list:
        """Largest ``k`` non-null values, descending."""

    @abstractmethod
    def bottom_k(self, name: str, k: int) -> list:
        """Smallest ``k`` non-null values, ascending."""

    @abstractmethod
    def aggregate(self, name: str, func: str) -> float | None:
        """``max``/``min``/``sum``/``avg`` over non-null values (``None``
        when the column has none), or ``count`` of non-null values."""

    @abstractmethod
    def all_in_range(self, name: str, low: float, high: float) -> bool:
        """True when every non-null value lies in ``[low, high]``."""


# -- shared scalar kernels (the row store's semantics, reused by spills) -----


def _scalar_aggregate(values: list, func: str) -> float | None:
    """The row store's aggregate semantics over already-extracted values.

    Mirrors the original ``Table.aggregate`` exactly, including the quirk
    that an unknown function over an *empty* column returns ``None`` before
    the function name is ever checked.
    """
    if func == "count":
        return float(len(values))
    if not values:
        return None
    if func == "max":
        return max(values)
    if func == "min":
        return min(values)
    if func == "sum":
        return float(sum(values))
    if func == "avg":
        return float(sum(values)) / len(values)
    raise ValueError(f"unknown aggregate function: {func!r}")


def _scalar_in_range(values: list, low: float, high: float) -> bool:
    return all(low <= v <= high for v in values)


# -- the row store -----------------------------------------------------------


class RowStoreEngine(StorageEngine):
    """The original list-of-dicts store: exact objects, scalar scans."""

    name = "row"

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema)
        self._rows: list[Row] = []

    def append_rows(self, rows: Sequence[Row]) -> None:
        self._rows.extend(rows)

    def append_columns(
        self, columns: dict[str, "np.ndarray | list"], count: int
    ) -> None:
        lists = {
            name: (col.tolist() if isinstance(col, np.ndarray) else list(col))
            for name, col in columns.items()
        }
        names = self.schema.names
        self._rows.extend(
            {name: lists[name][i] for name in names} for i in range(count)
        )

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> list[Row]:
        return [dict(r) for r in self._rows]

    def column_values(self, name: str) -> list[object]:
        return [r.get(name) for r in self._rows]

    def numeric_values(self, name: str) -> list:
        return [v for v in self.column_values(name) if v is not None]

    def top_k(self, name: str, k: int) -> list:
        return heapq.nlargest(k, self.numeric_values(name))

    def bottom_k(self, name: str, k: int) -> list:
        return heapq.nsmallest(k, self.numeric_values(name))

    def aggregate(self, name: str, func: str) -> float | None:
        return _scalar_aggregate(self.numeric_values(name), func)

    def all_in_range(self, name: str, low: float, high: float) -> bool:
        return _scalar_in_range(self.numeric_values(name), low, high)


# -- the columnar engine -----------------------------------------------------


class _ObjectColumn:
    """TEXT (or otherwise unvectorizable) column: a plain value list."""

    def __init__(self) -> None:
        self.values: list[object] = []

    def append(self, values: Sequence[object]) -> None:
        self.values.extend(values)

    def all_values(self) -> list[object]:
        return list(self.values)


class _NumericColumn:
    """One numeric column: chunked typed arrays with an exactness escape.

    Values accumulate in a Python ``pending`` tail and are sealed into
    contiguous ``dtype`` chunks (int64 for INTEGER, float64 for REAL) with
    parallel validity masks once nulls appear.  If any value cannot be
    represented losslessly — an INTEGER outside int64, a REAL column fed a
    non-finite float or a Python ``int`` (whose *type* the row store would
    preserve) — the entire column spills to ``exact`` object storage and
    every query takes the scalar path.  Spilling is one-way and loses no
    data: correctness never depends on the fast path being available.
    """

    def __init__(self, dtype: "np.dtype") -> None:
        self.dtype = np.dtype(dtype)
        self.pending: list[object] = []
        self.chunks: list[np.ndarray] = []
        #: Parallel to ``chunks`` once any null has been seen, else None.
        self.masks: list[np.ndarray] | None = None
        #: Exact object storage after a spill (None while vectorized).
        self.exact: list[object] | None = None
        self._cache: tuple[np.ndarray, np.ndarray | None] | None = None

    # -- ingestion --

    def _representable(self, value: object) -> bool:
        if self.dtype.kind == "i":
            return -(2**63) <= value <= 2**63 - 1  # type: ignore[operator]
        # float64 column: Python floats are IEEE doubles, so any finite
        # float round-trips exactly; ints would come back as floats (a
        # type change the row store would not make) and non-finite values
        # would change sort order under np.sort (NaN sorts last).
        return isinstance(value, float) and math.isfinite(value)

    def append(self, values: Sequence[object]) -> None:
        if self.exact is not None:
            self.exact.extend(values)
            return
        self._cache = None
        self.pending.extend(values)
        if len(self.pending) >= CHUNK_ROWS:
            self._flush()

    def append_array(self, values: np.ndarray) -> None:
        """Fast bulk path: a canonical-dtype, null-free array chunk."""
        if self.exact is not None:
            self.exact.extend(values.tolist())
            return
        self._cache = None
        self._flush()
        self.chunks.append(values)
        if self.masks is not None:
            self.masks.append(np.ones(len(values), dtype=bool))

    def _flush(self) -> None:
        if not self.pending:
            return
        batch, self.pending = self.pending, []
        present = [v for v in batch if v is not None]
        if not all(self._representable(v) for v in present):
            self._spill(batch)
            return
        has_nulls = len(present) != len(batch)
        if has_nulls and self.masks is None:
            # Backfill all-valid masks for the chunks sealed before the
            # first null arrived.
            self.masks = [np.ones(len(c), dtype=bool) for c in self.chunks]
        if has_nulls:
            values = np.array(
                [0 if v is None else v for v in batch], dtype=self.dtype
            )
        else:
            values = np.array(batch, dtype=self.dtype)
        self.chunks.append(values)
        if self.masks is not None:
            self.masks.append(np.array([v is not None for v in batch], dtype=bool))

    def _spill(self, tail: Sequence[object]) -> None:
        exact: list[object] = []
        for index, chunk in enumerate(self.chunks):
            values = chunk.tolist()
            if self.masks is not None:
                mask = self.masks[index]
                values = [
                    v if ok else None for v, ok in zip(values, mask.tolist())
                ]
            exact.extend(values)
        exact.extend(tail)
        self.exact = exact
        self.chunks = []
        self.masks = None
        self._cache = None

    # -- access --

    def __len__(self) -> int:
        if self.exact is not None:
            return len(self.exact)
        return sum(len(c) for c in self.chunks) + len(self.pending)

    def storage(self) -> list[object] | None:
        """Settle the pending tail; the exact list if spilled, else None.

        Query paths call this first: the spill decision is made lazily at
        flush time, so only after flushing is ``exact`` authoritative.
        """
        if self.exact is None and self.pending:
            self._flush()
        return self.exact

    def materialize(self) -> tuple[np.ndarray, np.ndarray | None]:
        """One contiguous (values, validity-mask-or-None) view.

        Consolidates chunks on first use and caches the result; any append
        invalidates the cache.  Callers must hold ``exact is None``.
        """
        if self._cache is not None:
            return self._cache
        self._flush()
        if self.exact is not None:  # the flush itself may have spilled
            raise RuntimeError("materialize() on a spilled column")
        if not self.chunks:
            values = np.empty(0, dtype=self.dtype)
            mask = None
        elif len(self.chunks) == 1:
            values = self.chunks[0]
            mask = self.masks[0] if self.masks is not None else None
        else:
            values = np.concatenate(self.chunks)
            mask = (
                np.concatenate(self.masks) if self.masks is not None else None
            )
            self.chunks = [values]
            if mask is not None:
                self.masks = [mask]
        if mask is not None and bool(mask.all()):
            mask = None
        self._cache = (values, mask)
        return self._cache

    def valid_values(self) -> np.ndarray:
        values, mask = self.materialize()
        return values if mask is None else values[mask]

    def all_values(self) -> list[object]:
        exact = self.storage()
        if exact is not None:
            return list(exact)
        values, mask = self.materialize()
        out = values.tolist()
        if mask is not None:
            out = [v if ok else None for v, ok in zip(out, mask.tolist())]
        return out


class ColumnarEngine(StorageEngine):
    """Chunked numpy columns; extraction as partition/reduction kernels."""

    name = "columnar"

    _DTYPES = {"INTEGER": np.int64, "REAL": np.float64}

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema)
        self._columns: dict[str, _NumericColumn | _ObjectColumn] = {}
        for column in schema.columns:
            if column.is_numeric:
                self._columns[column.name] = _NumericColumn(
                    self._DTYPES[column.type]
                )
            else:
                self._columns[column.name] = _ObjectColumn()
        self._count = 0

    def append_rows(self, rows: Sequence[Row]) -> None:
        if not rows:
            return
        for name, column in self._columns.items():
            column.append([row[name] for row in rows])
        self._count += len(rows)

    def append_columns(
        self, columns: dict[str, "np.ndarray | list"], count: int
    ) -> None:
        for name, column in self._columns.items():
            data = columns[name]
            if isinstance(data, np.ndarray) and isinstance(
                column, _NumericColumn
            ):
                column.append_array(data)
            else:
                column.append(
                    data.tolist() if isinstance(data, np.ndarray) else data
                )
        self._count += count

    def __len__(self) -> int:
        return self._count

    def rows(self) -> list[Row]:
        names = self.schema.names
        columns = [self._columns[name].all_values() for name in names]
        return [dict(zip(names, values)) for values in zip(*columns)]

    def column_values(self, name: str) -> list[object]:
        return self._columns[name].all_values()

    def _numeric(self, name: str) -> _NumericColumn:
        column = self._columns[name]
        assert isinstance(column, _NumericColumn)  # Table checked the schema
        return column

    def _to_list(self, values: np.ndarray) -> list:
        # int64 -> Python int, float64 -> Python float: exactly the types
        # the row store holds for vectorizable columns.
        return values.tolist()

    def numeric_values(self, name: str) -> list:
        column = self._numeric(name)
        exact = column.storage()
        if exact is not None:
            return [v for v in exact if v is not None]
        return self._to_list(column.valid_values())

    def top_k(self, name: str, k: int) -> list:
        column = self._numeric(name)
        exact = column.storage()
        if exact is not None:
            return heapq.nlargest(k, [v for v in exact if v is not None])
        return self.top_k_array(column.valid_values(), k)

    def bottom_k(self, name: str, k: int) -> list:
        column = self._numeric(name)
        exact = column.storage()
        if exact is not None:
            return heapq.nsmallest(k, [v for v in exact if v is not None])
        return self.bottom_k_array(column.valid_values(), k)

    def aggregate(self, name: str, func: str) -> float | None:
        column = self._numeric(name)
        exact = column.storage()
        if exact is not None:
            return _scalar_aggregate([v for v in exact if v is not None], func)
        return self.aggregate_array(column.valid_values(), func)

    # -- array kernels (shared by the no-predicate and masked paths) --

    def top_k_array(self, values: np.ndarray, k: int) -> list:
        """Largest ``k`` of an already-extracted value array, descending."""
        if values.size == 0:
            return []
        if k < values.size:
            values = np.partition(values, values.size - k)[values.size - k :]
        return self._to_list(np.sort(values)[::-1])

    def bottom_k_array(self, values: np.ndarray, k: int) -> list:
        """Smallest ``k`` of an already-extracted value array, ascending."""
        if values.size == 0:
            return []
        if k < values.size:
            values = np.partition(values, k - 1)[:k]
        return self._to_list(np.sort(values))

    def aggregate_array(self, values: np.ndarray, func: str) -> float | None:
        """Aggregate an already-extracted value array, row-store semantics.

        Keeps :func:`_scalar_aggregate`'s quirk that an unknown function
        over an empty array returns ``None`` before the name is checked.
        """
        if func == "count":
            return float(values.size)
        if values.size == 0:
            return None
        if func == "max":
            return self._reduced(values.max())
        if func == "min":
            return self._reduced(values.min())
        if func in ("sum", "avg"):
            total = self._exact_sum(values)
            return total if func == "sum" else total / values.size
        raise ValueError(f"unknown aggregate function: {func!r}")

    def in_range_array(self, values: np.ndarray, low: float, high: float) -> bool:
        """True when every value of an extracted array lies in [low, high]."""
        if values.size == 0:
            return True
        return bool(((values >= low) & (values <= high)).all())

    @staticmethod
    def _reduced(value: "np.generic") -> float:
        # max/min keep the row store's numeric type: Python int for int64
        # columns (row-store max() returns the int), float otherwise.
        return value.item()

    def _exact_sum(self, values: np.ndarray) -> float:
        """``float(sum(values))`` of the row store, bit for bit.

        int64: the Python sum is exact arbitrary-precision; an int64
        reduction matches it whenever it cannot wrap, which the magnitude
        guard proves; otherwise fall back to the exact Python sum.
        float64: Python's ``sum`` adds sequentially, while ``np.sum`` is
        pairwise (different rounding); ``np.cumsum`` is defined by the
        sequential recurrence, so its last element reproduces the row
        store's rounding exactly.
        """
        if values.dtype.kind == "i":
            bound = max(abs(int(values.max())), abs(int(values.min())))
            if bound and values.size > (2**62) // bound:
                return float(sum(values.tolist()))
            return float(int(values.sum(dtype=np.int64)))
        return float(np.cumsum(values)[-1])

    def all_in_range(self, name: str, low: float, high: float) -> bool:
        column = self._numeric(name)
        exact = column.storage()
        if exact is not None:
            return _scalar_in_range(
                [v for v in exact if v is not None], low, high
            )
        return self.in_range_array(column.valid_values(), low, high)

    # -- structured-predicate support --

    def try_mask(self, predicate: "ColumnPredicate") -> "np.ndarray | None":
        """Compile a structured predicate to a row-selection mask.

        Returns ``None`` — "use the scalar path" — whenever any referenced
        column cannot be vectorized exactly: a TEXT column, a spilled
        column, or a comparison the predicate itself refuses to vectorize
        (:class:`~repro.database.predicates.MaskUnsupported`).  A returned
        mask selects exactly the rows the predicate's scalar evaluation
        would accept, in insertion order.
        """
        arrays: dict[str, tuple[np.ndarray, np.ndarray | None]] = {}
        for name in predicate.columns():
            column = self._columns.get(name)
            if not isinstance(column, _NumericColumn):
                return None
            if column.storage() is not None:  # spilled: exact path only
                return None
            arrays[name] = column.materialize()
        try:
            return predicate.mask(arrays)
        except MaskUnsupported:
            return None

    def masked_numeric(
        self, name: str, row_mask: np.ndarray
    ) -> "np.ndarray | None":
        """Non-null values of ``name`` in mask-selected rows, in order.

        ``None`` when the target column itself cannot vectorize (spilled);
        the caller then re-evaluates the predicate on the scalar path.
        """
        column = self._numeric(name)
        if column.storage() is not None:
            return None
        values, valid = column.materialize()
        select = row_mask if valid is None else row_mask & valid
        return values[select]


# -- the optional DuckDB engine ----------------------------------------------


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` dependency is importable."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


class DuckDbEngine(StorageEngine):
    """Rows in a DuckDB table; extraction pushed down as SQL.

    Each engine owns one connection holding one table named ``t`` (engines
    are per-:class:`~repro.database.table.Table`, so no name collisions).
    Schema column names are validated identifiers, safe to quote into DDL.

    By default the connection is in-memory.  With ``path`` the table lives
    in an on-disk DuckDB file and *survives reopen*: constructing a new
    engine over an existing file adopts its rows after verifying the stored
    schema matches (column names, order, and SQL types), so a party's data
    outlives the process.  One file backs one table — give each persistent
    table its own path.
    """

    name = "duckdb"

    _SQL_TYPES = {"INTEGER": "BIGINT", "REAL": "DOUBLE", "TEXT": "VARCHAR"}

    def __init__(self, schema: Schema, *, path: "str | None" = None) -> None:
        super().__init__(schema)
        try:
            import duckdb
        except ImportError as exc:  # pragma: no cover - exercised sans duckdb
            raise StorageUnavailable(
                "the duckdb engine requires the optional duckdb package "
                "(pip install 'repro[duckdb]')"
            ) from exc
        self.path = path
        self._conn = duckdb.connect(str(path) if path else ":memory:")
        stored = self._conn.execute(
            "SELECT column_name, data_type FROM information_schema.columns "
            "WHERE table_name = 't' ORDER BY ordinal_position"
        ).fetchall()
        expected = [
            (column.name, self._SQL_TYPES[column.type])
            for column in schema.columns
        ]
        if stored:
            if [(n, t) for n, t in stored] != expected:
                self._conn.close()
                raise ValueError(
                    f"duckdb file {path!r} holds a table with schema "
                    f"{stored}, which does not match the declared schema "
                    f"{expected}"
                )
            self._count = self._conn.execute(
                "SELECT COUNT(*) FROM t"
            ).fetchone()[0]
        else:
            body = ", ".join(
                f'"{column.name}" {self._SQL_TYPES[column.type]}'
                + ("" if column.nullable else " NOT NULL")
                for column in schema.columns
            )
            self._conn.execute(f"CREATE TABLE t ({body})")
            self._count = 0
        self._insert = "INSERT INTO t VALUES ({})".format(
            ", ".join("?" for _ in schema.columns)
        )

    def append_rows(self, rows: Sequence[Row]) -> None:
        if not rows:
            return
        names = self.schema.names
        self._conn.executemany(
            self._insert, [tuple(row[name] for name in names) for row in rows]
        )
        self._count += len(rows)

    def append_columns(
        self, columns: dict[str, "np.ndarray | list"], count: int
    ) -> None:
        lists = {
            name: (col.tolist() if isinstance(col, np.ndarray) else list(col))
            for name, col in columns.items()
        }
        names = self.schema.names
        self._conn.executemany(
            self._insert,
            [tuple(lists[name][i] for name in names) for i in range(count)],
        )
        self._count += count

    def __len__(self) -> int:
        return self._count

    def rows(self) -> list[Row]:
        names = self.schema.names
        quoted = ", ".join(f'"{name}"' for name in names)
        fetched = self._conn.execute(f"SELECT {quoted} FROM t").fetchall()
        return [dict(zip(names, row)) for row in fetched]

    def column_values(self, name: str) -> list[object]:
        rows = self._conn.execute(f'SELECT "{name}" FROM t').fetchall()
        return [row[0] for row in rows]

    def numeric_values(self, name: str) -> list:
        rows = self._conn.execute(
            f'SELECT "{name}" FROM t WHERE "{name}" IS NOT NULL'
        ).fetchall()
        return [row[0] for row in rows]

    def top_k(self, name: str, k: int) -> list:
        rows = self._conn.execute(
            f'SELECT "{name}" FROM t WHERE "{name}" IS NOT NULL '
            f'ORDER BY "{name}" DESC LIMIT {int(k)}'
        ).fetchall()
        return [row[0] for row in rows]

    def bottom_k(self, name: str, k: int) -> list:
        rows = self._conn.execute(
            f'SELECT "{name}" FROM t WHERE "{name}" IS NOT NULL '
            f'ORDER BY "{name}" ASC LIMIT {int(k)}'
        ).fetchall()
        return [row[0] for row in rows]

    def aggregate(self, name: str, func: str) -> float | None:
        non_null = self._conn.execute(
            f'SELECT COUNT("{name}") FROM t'
        ).fetchone()[0]
        if func == "count":
            return float(non_null)
        if non_null == 0:
            return None
        if func not in ("max", "min", "sum", "avg"):
            raise ValueError(f"unknown aggregate function: {func!r}")
        value = self._conn.execute(
            f'SELECT {func.upper()}("{name}") FROM t'
        ).fetchone()[0]
        if func in ("sum", "avg"):
            return float(value)
        return value

    def all_in_range(self, name: str, low: float, high: float) -> bool:
        outside = self._conn.execute(
            f'SELECT COUNT(*) FROM t WHERE "{name}" IS NOT NULL '
            f'AND NOT ("{name}" >= ? AND "{name}" <= ?)',
            [low, high],
        ).fetchone()[0]
        return outside == 0


# -- engine construction -----------------------------------------------------

_ENGINE_CLASSES: dict[str, type[StorageEngine]] = {
    ROW: RowStoreEngine,
    COLUMNAR: ColumnarEngine,
    DUCKDB: DuckDbEngine,
}

#: A factory callable is also accepted wherever an engine name is: it
#: receives the schema and must return a fresh, empty engine.
EngineSpec = "str | Callable[[Schema], StorageEngine] | None"


def make_engine(
    spec: "str | Callable[[Schema], StorageEngine] | None", schema: Schema
) -> StorageEngine:
    """Build a fresh engine for one table from a name, factory, or None."""
    if spec is None:
        spec = DEFAULT_ENGINE
    if callable(spec):
        engine = spec(schema)
        if not isinstance(engine, StorageEngine):
            raise TypeError(
                f"engine factory returned {type(engine).__name__}, "
                "not a StorageEngine"
            )
        return engine
    if isinstance(spec, str) and spec.startswith(DUCKDB + ":"):
        # "duckdb:<path>" — a persistent on-disk party table that survives
        # reopen (adopted, schema-checked) instead of an in-memory one.
        path = spec[len(DUCKDB) + 1 :]
        if not path:
            raise ValueError(
                "duckdb path spec is empty; expected 'duckdb:<file>'"
            )
        return DuckDbEngine(schema, path=path)
    if spec not in _ENGINE_CLASSES:
        raise ValueError(
            f"unknown storage engine {spec!r}; expected one of {ENGINES} "
            "or a factory callable"
        )
    return _ENGINE_CLASSES[spec](schema)
