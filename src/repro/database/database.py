"""The private database held by one participating organization.

Each node in the protocol wraps exactly one :class:`PrivateDatabase`.  The
database is *private*: nothing outside the owning node may read it.  The only
sanctioned flow of information out of it is through a protocol's local
computation module, which sees the local top-k vector for the queried
attribute and nothing else.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from .engines import StorageEngine
from .query import QueryError, TopKQuery
from .schema import Schema, SchemaError
from .table import Row, Table

EngineSpec = "str | Callable[[Schema], StorageEngine] | None"


class PrivateDatabase:
    """A named collection of tables owned by one party.

    ``engine`` names the storage engine new tables default to (see
    :mod:`repro.database.engines`); :meth:`create_table` can override it
    per table.  Engines answer bit-identically, so the choice affects
    extraction speed only, never query results.
    """

    def __init__(
        self,
        owner: str,
        *,
        engine: "str | Callable[[Schema], StorageEngine] | None" = None,
    ) -> None:
        if not owner:
            raise ValueError("owner must be non-empty")
        self.owner = owner
        self.engine = engine
        self._tables: dict[str, Table] = {}
        self._ddl_version = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PrivateDatabase(owner={self.owner!r}, tables={sorted(self._tables)})"

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        *,
        engine: "str | Callable[[Schema], StorageEngine] | None" = None,
    ) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists in {self.owner}'s database")
        table = Table(name, schema, engine=engine if engine is not None else self.engine)
        self._tables[name] = table
        self._ddl_version += 1
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no such table: {name!r}")
        # Absorb the dropped table's row-version into the DDL counter so the
        # database-wide version stays monotone (a drop must not *decrease*
        # it, or a recreate could replay a previously seen version).
        self._ddl_version += self._tables[name].version + 1
        del self._tables[name]

    @property
    def data_version(self) -> int:
        """Monotone version covering both schema (DDL) and row mutations.

        Any insert, create or drop strictly increases it, which is what the
        federation's query-result cache keys on to invalidate answers after
        the underlying private data changes.
        """
        return self._ddl_version + sum(t.version for t in self._tables.values())

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    # -- DML ---------------------------------------------------------------

    def insert(self, table: str, row: Row) -> None:
        self.table(table).insert(row)

    def insert_many(self, table: str, rows: Iterable[Row]) -> int:
        return self.table(table).insert_many(rows)

    # -- protocol-facing interface ------------------------------------------

    def local_topk(self, query: TopKQuery) -> list[float]:
        """The node's local top-k vector for ``query`` (Section 3.4).

        Values are validated against the query's public domain: a value
        outside the agreed domain indicates a misconfigured party and would
        silently break the protocol's correctness argument, so it is rejected
        loudly here.
        """
        table = self.table(query.table)
        if query.smallest:
            values = table.bottom_k(query.attribute, query.k)
        else:
            values = table.top_k(query.attribute, query.k)
        for v in values:
            if v not in query.domain:
                raise QueryError(
                    f"{self.owner}: value {v!r} of {query.attribute!r} lies outside "
                    f"the public domain [{query.domain.low}, {query.domain.high}]"
                )
        return values

    def attribute_domain_check(self, query: TopKQuery) -> bool:
        """True when every value of the queried attribute is in-domain.

        Vectorized through the table's storage engine: schema validation
        guarantees every non-null value is an int or float, so the check
        reduces to a range test over the column.
        """
        table = self.table(query.table)
        return table.values_within(
            query.attribute, query.domain.low, query.domain.high
        )


def database_from_values(
    owner: str,
    values: Iterable[float],
    *,
    table: str = "data",
    attribute: str = "value",
    engine: "str | Callable[[Schema], StorageEngine] | None" = None,
) -> PrivateDatabase:
    """Build a single-table database from a flat list of attribute values.

    This is the shape used throughout the paper's evaluation, where each node
    holds values of a single sensitive attribute.
    """
    db = PrivateDatabase(owner, engine=engine)
    # Materialize once: ``values`` may be a one-shot iterator, and it is
    # consumed twice below (type sniffing, then the insert).
    values = list(values)
    integral = all(isinstance(v, int) for v in values)
    schema = Schema.of((attribute, "INTEGER" if integral else "REAL"))
    t = db.create_table(table, schema)
    t.insert_many({attribute: v} for v in values)
    return db


def common_query(
    databases: Iterable[PrivateDatabase],
    query: TopKQuery,
) -> TopKQuery:
    """Validate that ``query`` is well-matched across all databases.

    Implements the Section 3.2 precondition: schemas and attribute names are
    known and well matched across the n nodes.  Returns the query unchanged on
    success, raises :class:`SchemaError`/:class:`QueryError` otherwise.
    """
    dbs = list(databases)
    if not dbs:
        raise QueryError("no databases supplied")
    reference: Schema | None = None
    for db in dbs:
        table = db.table(query.table)
        column = table.schema.column(query.attribute)
        if not column.is_numeric:
            raise SchemaError(
                f"{db.owner}: attribute {query.attribute!r} is not numeric"
            )
        if reference is None:
            reference = table.schema
        elif not table.schema.is_compatible_with(reference):
            raise SchemaError(
                f"{db.owner}: schema of table {query.table!r} does not match peers"
            )
    return query
