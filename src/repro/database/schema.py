"""Relational schema primitives for the private-database substrate.

The paper assumes "the database schemas and attribute names are known and
are well matched across n nodes" (Section 3.2).  This module provides the
minimal relational machinery needed to make that assumption concrete: typed
columns, a table schema, and schema compatibility checks used when a query
spans multiple private databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SchemaError(ValueError):
    """Raised when a schema is malformed or two schemas are incompatible."""


#: Column types supported by the substrate.  The protocols in the paper
#: operate on a totally ordered numeric attribute, so INTEGER and REAL are
#: the interesting ones; TEXT exists for realistic example tables.
COLUMN_TYPES = ("INTEGER", "REAL", "TEXT")

_PYTHON_TYPES = {
    "INTEGER": (int,),
    "REAL": (int, float),
    "TEXT": (str,),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name; must be a non-empty identifier.
    type:
        One of :data:`COLUMN_TYPES`.
    nullable:
        Whether ``None`` is an accepted value.
    """

    name: str
    type: str = "INTEGER"
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"unknown column type {self.type!r}; expected one of {COLUMN_TYPES}"
            )

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        expected = _PYTHON_TYPES[self.type]
        # bool is an int subclass but almost never what a caller intends.
        if isinstance(value, bool) or not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r} expects {self.type}, got {value!r}"
            )

    @property
    def is_numeric(self) -> bool:
        return self.type in ("INTEGER", "REAL")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Column` objects."""

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *specs: tuple[str, str] | Column) -> "Schema":
        """Build a schema from ``("name", "TYPE")`` pairs or Column objects."""
        columns = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            else:
                name, ctype = spec
                columns.append(Column(name, ctype))
        return cls(tuple(columns))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for c in self.columns:
            if c.name == name:
                return c
        raise SchemaError(f"no such column: {name!r}")

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def validate_row(self, row: dict[str, object]) -> None:
        """Raise :class:`SchemaError` unless ``row`` fits this schema exactly."""
        unknown = set(row) - set(self.names)
        if unknown:
            raise SchemaError(f"unknown columns in row: {sorted(unknown)}")
        for column in self.columns:
            column.validate(row.get(column.name))

    def is_compatible_with(self, other: "Schema") -> bool:
        """True when both schemas agree on names and types (order-insensitive).

        This is the well-matched-schema precondition of Section 3.2; the
        protocol driver checks it before running a multi-database query.
        """
        mine = {c.name: c.type for c in self.columns}
        theirs = {c.name: c.type for c in other.columns}
        return mine == theirs
