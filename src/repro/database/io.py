"""CSV import/export for private databases.

Organizations load their tables from files; this gives the substrate a
realistic ingestion path (typed against the schema, all-or-nothing) and an
export path for round-tripping.  Only the owning party ever touches these
files — nothing here crosses the privacy boundary.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .database import PrivateDatabase
from .schema import Schema, SchemaError
from .table import Table


class TableIOError(ValueError):
    """Raised for unreadable or schema-violating CSV files."""


def _parse_cell(raw: str, column_type: str, nullable: bool):
    if raw == "":
        if nullable:
            return None
        raise TableIOError(f"empty cell in non-nullable {column_type} column")
    try:
        if column_type == "INTEGER":
            return int(raw)
        if column_type == "REAL":
            return float(raw)
        return raw
    except ValueError as exc:
        raise TableIOError(f"cannot parse {raw!r} as {column_type}") from exc


def load_csv_table(
    database: PrivateDatabase,
    name: str,
    schema: Schema,
    path: Path | str,
) -> Table:
    """Create ``name`` in ``database`` and load it from a CSV file.

    The CSV header must contain exactly the schema's column names (any
    order).  Loading is all-or-nothing: a bad row aborts without creating
    the table.
    """
    path = Path(path)
    try:
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            header = reader.fieldnames
            if header is None:
                raise TableIOError(f"{path}: empty file, no header")
            if sorted(header) != sorted(schema.names):
                raise TableIOError(
                    f"{path}: header {header} does not match schema "
                    f"columns {list(schema.names)}"
                )
            rows = []
            for line_number, raw_row in enumerate(reader, start=2):
                row = {}
                for column in schema.columns:
                    raw = raw_row.get(column.name)
                    if raw is None:
                        raise TableIOError(
                            f"{path}:{line_number}: missing column {column.name!r}"
                        )
                    row[column.name] = _parse_cell(
                        raw, column.type, column.nullable
                    )
                rows.append(row)
    except OSError as exc:
        raise TableIOError(f"cannot read {path}: {exc}") from exc

    table = database.create_table(name, schema)
    try:
        table.insert_many(rows)
    except SchemaError:
        database.drop_table(name)
        raise
    return table


def save_csv_table(table: Table, path: Path | str) -> Path:
    """Write a table as CSV (header = schema column order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(table.schema.names))
        writer.writeheader()
        for row in table.scan():
            writer.writerow(
                {k: ("" if v is None else v) for k, v in row.items()}
            )
    return path


def database_from_csv_dir(
    owner: str,
    directory: Path | str,
    schemas: dict[str, Schema],
) -> PrivateDatabase:
    """Build a database from ``<directory>/<table>.csv`` per schema entry."""
    directory = Path(directory)
    database = PrivateDatabase(owner)
    for name, schema in sorted(schemas.items()):
        load_csv_table(database, name, schema, directory / f"{name}.csv")
    return database
