"""Structured ``where`` predicates that compile to numpy masks.

``Table`` has always accepted an arbitrary ``Callable[[Row], bool]`` for its
``where=`` parameter, which forces every filtered query down the scalar
row-at-a-time path — the one path the columnar engine cannot accelerate,
because an opaque callable must be handed a materialized row dict.  This
module adds the structured alternative: a small predicate algebra
(:class:`Comparison` leaves combined with :class:`And`/:class:`Or`/
:class:`Not` via ``&``/``|``/``~``) whose trees are *both*:

- row-callable — every predicate is itself a ``Callable[[Row], bool]``, so
  it drops into any existing ``where=`` site and works on every engine; and
- mask-compilable — :meth:`ColumnPredicate.mask` evaluates the whole tree as
  numpy boolean operations over the columnar engine's contiguous arrays.

The two evaluations are exactly equivalent by construction: a
:class:`Comparison` on a ``None`` value is ``False`` (a null never satisfies
a comparison, matching the scalar path's treatment of missing values), the
combinators are pure boolean algebra on top — note this means ``~(x > 5)``
*does* match null rows, on both paths — and the engine refuses to vectorize
(:class:`MaskUnsupported`, surfaced as a scalar fallback) whenever exactness
is in doubt: a spilled column, a TEXT column, or an int64/float comparison
whose magnitudes exceed float64's exact-integer range.  Which path answered
is therefore a performance fact, never a semantic one — the same guarantee
the storage engines themselves make.

Build predicates with the :func:`col` helper::

    from repro.database import col

    pred = (col("price") > 10.0) & ~(col("qty") == 0)
    table.top_k("price", 5, where=pred)      # vectorized on columnar
    table.scan(where=pred)                    # same object, any engine
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

import numpy as np

Row = dict[str, object]

#: Comparison operators, by their surface spelling.
OPERATORS: dict[str, object] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Largest magnitude at which every int64 is exactly representable as a
#: float64 — beyond it, an int-column-vs-float comparison could round
#: differently than Python's exact mixed comparison, so we refuse to
#: vectorize rather than risk a one-ulp disagreement with the scalar path.
_EXACT_FLOAT_INT = 2**53

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


class MaskUnsupported(Exception):
    """A predicate (or one leaf of it) cannot be vectorized exactly.

    Raised from :meth:`ColumnPredicate.mask` and caught by the engine's
    ``try_mask``, which then reports "no mask" so the caller falls back to
    the scalar path.  Never escapes to ``Table`` users.
    """


class ColumnPredicate(ABC):
    """A ``where`` predicate that is both row-callable and mask-compilable.

    Instances are immutable and freely shareable between queries.  Compose
    with ``&`` (and), ``|`` (or) and ``~`` (not).
    """

    @abstractmethod
    def __call__(self, row: Row) -> bool:
        """Scalar evaluation against one row dict (any engine)."""

    @abstractmethod
    def columns(self) -> frozenset[str]:
        """Every column name the predicate reads."""

    @abstractmethod
    def leaves(self) -> "Iterator[Comparison]":
        """Every :class:`Comparison` leaf, left to right."""

    @abstractmethod
    def mask(
        self, arrays: Mapping[str, "tuple[np.ndarray, np.ndarray | None]"]
    ) -> "np.ndarray":
        """Vectorized evaluation: one bool per row, given each referenced
        column's ``(values, validity-mask-or-None)`` pair as produced by the
        columnar engine's ``materialize()``."""

    @abstractmethod
    def describe(self) -> str:
        """Deterministic human-readable rendering of the predicate."""

    def __and__(self, other: "ColumnPredicate") -> "And":
        return And(self, other)

    def __or__(self, other: "ColumnPredicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True, eq=False)
class Comparison(ColumnPredicate):
    """``column <op> value`` — the leaf of every predicate tree.

    A ``None`` stored value never satisfies a comparison (both paths).
    """

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(
                f"unknown comparison operator {self.op!r}; "
                f"expected one of {sorted(OPERATORS)}"
            )

    def __call__(self, row: Row) -> bool:
        stored = row.get(self.column)
        if stored is None:
            return False
        return bool(OPERATORS[self.op](stored, self.value))  # type: ignore[operator]

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def leaves(self) -> Iterator["Comparison"]:
        yield self

    def mask(
        self, arrays: Mapping[str, "tuple[np.ndarray, np.ndarray | None]"]
    ) -> "np.ndarray":
        values, valid = arrays[self.column]
        self._check_exact(values)
        matched = OPERATORS[self.op](values, self.value)  # type: ignore[operator]
        if valid is not None:
            matched = matched & valid
        return matched

    def _check_exact(self, values: "np.ndarray") -> None:
        """Refuse vectorization when numpy's comparison could round.

        Python compares int-vs-float exactly at any magnitude; numpy casts
        int64 to float64 first, which is only lossless up to 2**53.  A
        Python int beyond the int64 range would not even broadcast.  Both
        cases fall back to the (exact) scalar path.
        """
        if not isinstance(self.value, (int, float)) or isinstance(
            self.value, bool
        ):
            if values.dtype.kind in "if":
                raise MaskUnsupported(
                    f"cannot compare numeric column {self.column!r} "
                    f"to {type(self.value).__name__} value"
                )
            return
        if isinstance(self.value, int) and not (
            _INT64_MIN <= self.value <= _INT64_MAX
        ):
            raise MaskUnsupported("comparison value outside int64 range")
        if (
            values.dtype.kind == "i"
            and isinstance(self.value, float)
            and values.size
        ):
            bound = max(abs(int(values.min())), abs(int(values.max())))
            if bound > _EXACT_FLOAT_INT:
                raise MaskUnsupported(
                    "int64 magnitudes exceed float64's exact range"
                )

    def describe(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True, eq=False)
class And(ColumnPredicate):
    """Both operands hold."""

    left: ColumnPredicate
    right: ColumnPredicate

    def __call__(self, row: Row) -> bool:
        return self.left(row) and self.right(row)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def leaves(self) -> Iterator[Comparison]:
        yield from self.left.leaves()
        yield from self.right.leaves()

    def mask(
        self, arrays: Mapping[str, "tuple[np.ndarray, np.ndarray | None]"]
    ) -> "np.ndarray":
        return self.left.mask(arrays) & self.right.mask(arrays)

    def describe(self) -> str:
        return f"({self.left.describe()} AND {self.right.describe()})"


@dataclass(frozen=True, eq=False)
class Or(ColumnPredicate):
    """Either operand holds."""

    left: ColumnPredicate
    right: ColumnPredicate

    def __call__(self, row: Row) -> bool:
        return self.left(row) or self.right(row)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def leaves(self) -> Iterator[Comparison]:
        yield from self.left.leaves()
        yield from self.right.leaves()

    def mask(
        self, arrays: Mapping[str, "tuple[np.ndarray, np.ndarray | None]"]
    ) -> "np.ndarray":
        return self.left.mask(arrays) | self.right.mask(arrays)

    def describe(self) -> str:
        return f"({self.left.describe()} OR {self.right.describe()})"


@dataclass(frozen=True, eq=False)
class Not(ColumnPredicate):
    """Pure logical negation of the operand.

    Because a null never satisfies a :class:`Comparison`, ``~(x > 5)``
    matches rows where ``x`` is null — identically on both paths.
    """

    inner: ColumnPredicate

    def __call__(self, row: Row) -> bool:
        return not self.inner(row)

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def leaves(self) -> Iterator[Comparison]:
        yield from self.inner.leaves()

    def mask(
        self, arrays: Mapping[str, "tuple[np.ndarray, np.ndarray | None]"]
    ) -> "np.ndarray":
        return ~self.inner.mask(arrays)

    def describe(self) -> str:
        return f"(NOT {self.inner.describe()})"


class ColumnRef:
    """Comparison builder: ``col("price") > 10`` → ``Comparison``.

    Note ``==``/``!=`` build predicates instead of comparing refs, so
    ``ColumnRef`` instances are deliberately unhashable and unordered.
    """

    __hash__ = None  # type: ignore[assignment]

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, value: object) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "==", value)

    def __ne__(self, value: object) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "!=", value)

    def __lt__(self, value: object) -> Comparison:
        return Comparison(self.name, "<", value)

    def __le__(self, value: object) -> Comparison:
        return Comparison(self.name, "<=", value)

    def __gt__(self, value: object) -> Comparison:
        return Comparison(self.name, ">", value)

    def __ge__(self, value: object) -> Comparison:
        return Comparison(self.name, ">=", value)

    def between(self, low: object, high: object) -> And:
        """Inclusive range: ``low <= column <= high``."""
        return And(
            Comparison(self.name, ">=", low), Comparison(self.name, "<=", high)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"col({self.name!r})"


def col(name: str) -> ColumnRef:
    """Reference a column for predicate building: ``col("x") >= 3``."""
    return ColumnRef(name)


__all__ = [
    "And",
    "ColumnPredicate",
    "ColumnRef",
    "Comparison",
    "MaskUnsupported",
    "Not",
    "OPERATORS",
    "Or",
    "col",
]
