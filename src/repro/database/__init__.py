"""Private-database substrate: schemas, tables, queries, and data generators."""

from .database import (
    PrivateDatabase,
    common_query,
    database_from_values,
)
from .io import (
    TableIOError,
    database_from_csv_dir,
    load_csv_table,
    save_csv_table,
)
from .generator import DISTRIBUTIONS, DataGenerator, datasets_with_known_topk
from .query import PAPER_DOMAIN, Domain, QueryError, TopKQuery, max_query, min_query
from .schema import COLUMN_TYPES, Column, Schema, SchemaError
from .table import Table

__all__ = [
    "COLUMN_TYPES",
    "Column",
    "DISTRIBUTIONS",
    "DataGenerator",
    "Domain",
    "PAPER_DOMAIN",
    "PrivateDatabase",
    "QueryError",
    "Schema",
    "SchemaError",
    "Table",
    "TableIOError",
    "TopKQuery",
    "common_query",
    "database_from_csv_dir",
    "database_from_values",
    "load_csv_table",
    "datasets_with_known_topk",
    "max_query",
    "min_query",
    "save_csv_table",
]
