"""Private-database substrate: schemas, tables, queries, and data generators."""

from .database import (
    PrivateDatabase,
    common_query,
    database_from_values,
)
from .engines import (
    COLUMNAR,
    DEFAULT_ENGINE,
    DUCKDB,
    ENGINES,
    ROW,
    ColumnarEngine,
    DuckDbEngine,
    ExtractionSample,
    RowStoreEngine,
    StorageEngine,
    StorageUnavailable,
    duckdb_available,
    make_engine,
)
from .io import (
    TableIOError,
    database_from_csv_dir,
    load_csv_table,
    save_csv_table,
)
from .generator import DISTRIBUTIONS, DataGenerator, datasets_with_known_topk
from .query import PAPER_DOMAIN, Domain, QueryError, TopKQuery, max_query, min_query
from .schema import COLUMN_TYPES, Column, Schema, SchemaError
from .table import Table
from .tpch import (
    LINEITEM_ROWS_PER_SF,
    LINEITEM_SCHEMA,
    TPCH_ATTRIBUTE,
    TPCH_PRICE_DOMAIN,
    TPCH_TABLE,
    lineitem_arrays,
    lineitem_database,
    lineitem_databases,
    price_query,
)

__all__ = [
    "COLUMNAR",
    "COLUMN_TYPES",
    "Column",
    "ColumnarEngine",
    "DEFAULT_ENGINE",
    "DISTRIBUTIONS",
    "DUCKDB",
    "DataGenerator",
    "Domain",
    "DuckDbEngine",
    "ENGINES",
    "ExtractionSample",
    "LINEITEM_ROWS_PER_SF",
    "LINEITEM_SCHEMA",
    "PAPER_DOMAIN",
    "PrivateDatabase",
    "QueryError",
    "ROW",
    "RowStoreEngine",
    "Schema",
    "SchemaError",
    "StorageEngine",
    "StorageUnavailable",
    "TPCH_ATTRIBUTE",
    "TPCH_PRICE_DOMAIN",
    "TPCH_TABLE",
    "Table",
    "TableIOError",
    "TopKQuery",
    "common_query",
    "database_from_csv_dir",
    "database_from_values",
    "datasets_with_known_topk",
    "duckdb_available",
    "lineitem_arrays",
    "lineitem_database",
    "lineitem_databases",
    "load_csv_table",
    "make_engine",
    "max_query",
    "min_query",
    "price_query",
    "save_csv_table",
]
