"""Session-level privacy accounting across repeated queries.

A single protocol run leaks little; a *session* of many queries against the
same parties accumulates exposure — every run gives adversaries a fresh set
of intermediate results about the same private tables.  (The paper evaluates
single queries; accumulation is the natural operational concern once the
protocol is deployed, and the reason the federation layer re-randomizes
every run.)

The accountant charges each party its measured peak LoP per run and tracks
the cumulative total against an optional budget, in the spirit of a privacy
budget: once a party's accumulated exposure crosses the budget, further
queries are refused until the operator resets the ledger (e.g. after the
underlying data has been rotated).

Cumulative charging is conservative-additive: independent runs randomize
independently, so summing per-run exposures upper-bounds what any single
observed run revealed while still growing with every opportunity the
adversary got.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.results import ProtocolResult
from .lop import node_lop


class BudgetExceededError(RuntimeError):
    """Raised when a query would push a party past its privacy budget."""


@dataclass
class ExposureLedger:
    """Per-party cumulative exposure for one federation session."""

    #: Optional ceiling on any single party's accumulated exposure.
    budget: float | None = None
    charges: dict[str, float] = field(default_factory=dict)
    runs_charged: int = 0

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")

    def charge(self, result: ProtocolResult) -> dict[str, float]:
        """Charge one finished run; returns the per-party charges applied.

        Raises :class:`BudgetExceededError` — *before* recording anything —
        if the charge would push any party past the budget, so a refused
        query leaves the ledger unchanged.
        """
        increments = {
            node: node_lop(result, node) for node in result.ring_order
        }
        if self.budget is not None:
            over = [
                node
                for node, inc in increments.items()
                if self.charges.get(node, 0.0) + inc > self.budget
            ]
            if over:
                raise BudgetExceededError(
                    f"query refused: parties {sorted(over)} would exceed the "
                    f"privacy budget of {self.budget}"
                )
        for node, increment in increments.items():
            self.charges[node] = self.charges.get(node, 0.0) + increment
        self.runs_charged += 1
        return increments

    def exposure(self, party: str) -> float:
        return self.charges.get(party, 0.0)

    def remaining(self, party: str) -> float | None:
        """Budget headroom for ``party``; None when no budget is set."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.exposure(party))

    def most_exposed(self) -> tuple[str, float] | None:
        if not self.charges:
            return None
        party = max(self.charges, key=lambda p: self.charges[p])
        return party, self.charges[party]

    def reset(self) -> None:
        """Clear the ledger (e.g. after the private data has been rotated)."""
        self.charges.clear()
        self.runs_charged = 0

    def render(self) -> str:
        """Human-readable ledger summary."""
        if not self.charges:
            return "exposure ledger: no runs charged"
        lines = [f"exposure ledger after {self.runs_charged} runs:"]
        for party in sorted(self.charges):
            entry = f"  {party:<14} {self.charges[party]:.4f}"
            headroom = self.remaining(party)
            if headroom is not None:
                entry += f"   (headroom {headroom:.4f})"
            lines.append(entry)
        return "\n".join(lines)
