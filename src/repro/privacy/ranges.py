"""Range-exposure quantification (Section 2.3's severity discussion).

The paper's motivating example for the Loss-of-Privacy metric is a *range*
claim: in the naive protocol, node *i*'s successor can prove
``v_i <= g_i`` — formally *provable exposure* on the privacy spectrum, yet
"the severity of the privacy breach actually varies (decreases as
[the bound] increases).  At the extreme, if a = v_max, it should not be
considered a privacy breach at all."

This module turns that discussion into a number by instantiating Equation 1
for range claims under a uniform prior over the public domain:

* ``P(C | R, IR) = 1`` — the range is *proven* by the observation;
* ``P(C | R)`` — how likely the claim was anyway, knowing only the final
  result: for ``C = (v_i <= b)`` with ``v_i`` otherwise uniform on
  ``[low, v_max]`` (the result caps every value), that is
  ``(b - low + 1) / (v_max - low + 1)`` on an integral domain.

So the range LoP is ``1 − P(C | R)``: maximal for a tight bound near the
domain floor, and exactly 0 at ``b = v_max`` — the paper's extreme case.
"""

from __future__ import annotations

from ..core.results import ProtocolResult
from .adversary import naive_range_exposure


class RangeExposureError(ValueError):
    """Raised for invalid range bounds."""


def range_claim_lop(
    bound: float, result: ProtocolResult
) -> float:
    """Equation 1 for the provable claim ``v_i <= bound``.

    Assumes an integral domain and a uniform prior capped by the public
    maximum (the first element of the final vector).
    """
    domain = result.query.domain
    if not domain.integral:
        raise RangeExposureError("range LoP is defined on integral domains")
    if bound not in domain:
        raise RangeExposureError(
            f"bound {bound} lies outside the public domain"
        )
    v_max = max(result.final_vector)
    if bound >= v_max:
        # v_i <= v_max is implied by the public result: no breach.
        return 0.0
    prior = (bound - domain.low + 1) / (v_max - domain.low + 1)
    return 1.0 - prior


def node_range_lop(result: ProtocolResult, node: str) -> float:
    """The range LoP a successor can inflict on ``node`` in this run.

    For the naive protocols the successor proves ``v_i <= g_i`` (first
    forwarded value); the probabilistic protocol admits no provable range,
    so its range LoP is 0 — the Section 3.3 design goal, stated as a metric.
    """
    claim = naive_range_exposure(result, node)
    if claim is None:
        return 0.0
    return range_claim_lop(claim.high, result)


def average_range_lop(result: ProtocolResult) -> float:
    """Mean provable-range exposure across nodes."""
    nodes = result.ring_order
    return sum(node_range_lop(result, node) for node in nodes) / len(nodes)
