"""The precision metric for top-k results (Section 5.4).

"Assume TopK is the real set of top-k values and R is the set of top-k
values returned.  We define the precision as |R ∩ TopK| / K."  Both sides
are multisets (duplicate values count separately), consistent with the
global vector being an ordered multiset.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.vectors import multiset_intersection_size


def precision(returned: Sequence[float], truth: Sequence[float], k: int) -> float:
    """``|returned ∩ truth| / k`` with multiset semantics."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return multiset_intersection_size(returned, truth) / k


def is_exact(returned: Sequence[float], truth: Sequence[float], k: int) -> bool:
    return precision(returned, truth, k) == 1.0
