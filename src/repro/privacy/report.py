"""A consolidated privacy report for one protocol run.

Brings every analysis in this package to bear on a single
:class:`~repro.core.results.ProtocolResult` and renders the answer to "what
did this run expose, and to whom?" — per-node LoP and its spectrum band,
coalition exposure, m-anonymity of every circulated value, and (for max
runs) the Bayesian information gain of the strongest coalition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import ProtocolResult
from .adversary import coalition_lop
from .distribution import coalition_posterior
from .groups import anonymity_size
from .lop import average_lop, node_lop, worst_case_lop
from .ranges import node_range_lop
from .spectrum import SpectrumLevel, classify


@dataclass(frozen=True)
class NodePrivacyRow:
    """One node's exposure summary."""

    node: str
    lop: float
    spectrum: SpectrumLevel
    coalition_lop: float
    information_gain_bits: float | None
    range_lop: float = 0.0


@dataclass(frozen=True)
class PrivacyReport:
    """Everything the run exposed, per node and in aggregate."""

    protocol: str
    n_nodes: int
    rounds: int
    average: float
    worst_case: float
    rows: tuple[NodePrivacyRow, ...]
    #: m-anonymity size of each non-public value that ever circulated.
    value_anonymity: dict[float, int]

    def render(self) -> str:
        lines = [
            f"privacy report: {self.protocol} over {self.n_nodes} nodes, "
            f"{self.rounds} rounds",
            f"  average LoP {self.average:.4f}   worst-case LoP {self.worst_case:.4f}",
            "",
            f"  {'node':<12} {'LoP':>8} {'spectrum':<20} {'coalition':>10} "
            f"{'range':>7} {'coal. bits':>11}",
        ]
        for row in self.rows:
            bits = f"{row.information_gain_bits:.2f}" if row.information_gain_bits is not None else "-"
            lines.append(
                f"  {row.node:<12} {row.lop:>8.4f} {row.spectrum.value:<20} "
                f"{row.coalition_lop:>10.4f} {row.range_lop:>7.3f} {bits:>11}"
            )
        exposed = {
            value: size for value, size in self.value_anonymity.items() if size <= 1
        }
        lines.append("")
        if exposed:
            lines.append(
                "  values with an unambiguous emitter (may be noise — the "
                f"observer cannot tell): {sorted(exposed)}"
            )
        else:
            lines.append("  every circulated value keeps an anonymity set > 1 "
                         "or is public")
        return "\n".join(lines)


def privacy_report(
    result: ProtocolResult, *, with_posteriors: bool | None = None
) -> PrivacyReport:
    """Build the consolidated report.

    ``with_posteriors`` controls the (comparatively expensive) Bayesian
    column; the default computes it only for k = 1 runs on integral domains,
    where the model is defined.
    """
    if with_posteriors is None:
        with_posteriors = result.query.k == 1 and result.query.domain.integral
    rows = []
    for node in result.ring_order:
        gain: float | None = None
        if with_posteriors:
            report = coalition_posterior(result, node)
            gain = report.entropy_reduction_bits
        lop = node_lop(result, node)
        range_exposure = 0.0
        if result.query.domain.integral:
            range_exposure = node_range_lop(result, node)
        rows.append(
            NodePrivacyRow(
                node=node,
                lop=lop,
                spectrum=classify(min(1.0, lop + 1.0 / result.n_nodes), result.n_nodes),
                coalition_lop=coalition_lop(result, node),
                information_gain_bits=gain,
                range_lop=range_exposure,
            )
        )

    seen: set[float] = set()
    anonymity: dict[float, int] = {}
    for observation in result.event_log:
        for value in observation.vector:
            if value not in seen:
                seen.add(value)
                anonymity[value] = anonymity_size(result, value)

    return PrivacyReport(
        protocol=result.protocol,
        n_nodes=result.n_nodes,
        rounds=result.rounds_executed,
        average=average_lop(result),
        worst_case=worst_case_lop(result),
        rows=tuple(rows),
        value_anonymity=anonymity,
    )
