"""Distribution exposure: Bayesian multi-round aggregation (Section 7, #1).

The paper's first item of future work: "extending and generalizing the
privacy analysis on the probability distribution of the data using
aggregated information from multiple rounds."  Section 4.3 already observes
that aggregating a node's outputs across rounds "does not help with
determining its exact data value, though it may help with determining the
probability distribution of the value."  This module makes that concern
quantitative.

We model the strongest Section 4.3 adversary — colluding neighbours who see
both the vector entering and the vector leaving the victim every round — as
an exact Bayesian observer for the max protocol (k = 1).  Knowing the public
randomization schedule, the likelihood of one observed hop is:

* ``g_out == g_in`` (pass or coincidental noise):
  ``L(v) = 1``            for ``v <= g_in``
  ``L(v) = P_r/(v-g_in)`` for ``v > g_in``  (noise drew exactly ``g_in``)
* ``g_out > g_in`` (reveal or noise):
  ``L(v) = 0``              for ``v < g_out``
  ``L(v) = 1 - P_r``        for ``v == g_out``  (reveal)
  ``L(v) = P_r/(v-g_in)``   for ``v > g_out``   (noise drew ``g_out``)

The posterior over the victim's value is the normalized product across
rounds, starting from a uniform prior over the public integer domain.  The
exposure metrics are information-theoretic: entropy reduction relative to
the prior, the posterior's MAP mass, and the credible mass near the true
value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import ProtocolResult
from ..core.schedule import ExponentialSchedule
from .adversary import AdversaryError, _vector_consumed


@dataclass(frozen=True)
class PosteriorReport:
    """The adversary's end state about one victim's value."""

    victim: str
    posterior: np.ndarray  # probability per domain value, low..high
    domain_low: int
    prior_entropy_bits: float
    posterior_entropy_bits: float
    map_value: float
    map_probability: float
    true_value: float
    true_value_probability: float

    @property
    def entropy_reduction_bits(self) -> float:
        """Bits of information the adversary gained about the victim."""
        return self.prior_entropy_bits - self.posterior_entropy_bits

    def credible_mass(self, radius: float) -> float:
        """Posterior mass within ``radius`` of the true value."""
        low = self.domain_low
        values = np.arange(low, low + len(self.posterior))
        window = np.abs(values - self.true_value) <= radius
        return float(self.posterior[window].sum())


def _entropy_bits(p: np.ndarray) -> float:
    mass = p[p > 0]
    return float(-(mass * np.log2(mass)).sum())


def _hop_likelihood(
    values: np.ndarray, g_in: float, g_out: float, p_r: float
) -> np.ndarray:
    """Likelihood of (g_in -> g_out) for every candidate value of ``v``."""
    likelihood = np.zeros_like(values, dtype=float)
    above_in = values > g_in
    with np.errstate(divide="ignore", invalid="ignore"):
        noise_density = np.where(above_in, p_r / (values - g_in), 0.0)
    if g_out < g_in:
        # The global value never decreases across a node; an observation
        # like this means corrupted inputs.
        raise AdversaryError(f"non-monotone hop: {g_in} -> {g_out}")
    if g_out == g_in:
        likelihood[~above_in] = 1.0
        likelihood[above_in] = noise_density[above_in]
    else:
        reveal = values == g_out
        likelihood[reveal] = 1.0 - p_r
        noise_possible = values > g_out
        likelihood[noise_possible] += noise_density[noise_possible]
    return likelihood


def coalition_posterior(result: ProtocolResult, victim: str) -> PosteriorReport:
    """Exact multi-round Bayesian posterior for a colluding-neighbour pair.

    Defined for max-protocol (k = 1) runs on integral domains; the general
    top-k posterior requires joint inference over k slots and is out of
    scope (as it was for the paper).
    """
    if result.query.k != 1:
        raise AdversaryError("distribution exposure is modelled for k=1 runs")
    if not result.query.domain.integral:
        raise AdversaryError("distribution exposure needs an integral domain")
    if victim not in result.ring_order:
        raise AdversaryError(f"unknown victim {victim!r}")
    schedule = _exponential_schedule(result)

    low = int(result.query.domain.low)
    high = int(result.query.domain.high)
    values = np.arange(low, high + 1, dtype=float)
    posterior = np.full(values.shape, 1.0 / len(values))
    prior_entropy = _entropy_bits(posterior)

    outputs = result.event_log.outputs_of(victim)
    for round_number in sorted(outputs):
        consumed = _vector_consumed(result, victim, round_number)
        if consumed is None:
            continue
        g_in = float(consumed[0])
        g_out = float(outputs[round_number][0])
        p_r = schedule.probability(round_number)
        likelihood = _hop_likelihood(values, g_in, g_out, p_r)
        updated = posterior * likelihood
        total = updated.sum()
        if total <= 0.0:
            # Numerically impossible trace under the model (e.g. the victim
            # holds the max and revealed; the posterior collapses onto it).
            # Keep the previous posterior rather than dividing by zero.
            continue
        posterior = updated / total

    true_value = float(result.local_vectors[victim][0])
    map_index = int(posterior.argmax())
    return PosteriorReport(
        victim=victim,
        posterior=posterior,
        domain_low=low,
        prior_entropy_bits=prior_entropy,
        posterior_entropy_bits=_entropy_bits(posterior),
        map_value=float(values[map_index]),
        map_probability=float(posterior[map_index]),
        true_value=true_value,
        true_value_probability=float(posterior[int(true_value) - low]),
    )


def _exponential_schedule(result: ProtocolResult) -> ExponentialSchedule:
    """The public schedule the adversary knows.

    The result object does not carry protocol parameters (they are public
    anyway); runs driven by the experiment harness use the paper's
    exponential family, which we reconstruct from metadata when present and
    default to the paper's (1, 1/2) otherwise.
    """
    schedule = getattr(result, "schedule", None)
    if isinstance(schedule, ExponentialSchedule):
        return schedule
    return ExponentialSchedule(p0=1.0, d=0.5)


def entropy_reduction_by_round(
    result: ProtocolResult, victim: str
) -> list[tuple[int, float]]:
    """(round, cumulative entropy reduction in bits) — the aggregation curve.

    Quantifies exactly the Section 7 concern: how much *more* the coalition
    knows about the victim's value distribution as rounds accumulate.
    """
    if result.query.k != 1:
        raise AdversaryError("distribution exposure is modelled for k=1 runs")
    schedule = _exponential_schedule(result)
    low = int(result.query.domain.low)
    high = int(result.query.domain.high)
    values = np.arange(low, high + 1, dtype=float)
    posterior = np.full(values.shape, 1.0 / len(values))
    prior_entropy = _entropy_bits(posterior)

    curve = []
    outputs = result.event_log.outputs_of(victim)
    for round_number in sorted(outputs):
        consumed = _vector_consumed(result, victim, round_number)
        if consumed is None:
            continue
        p_r = schedule.probability(round_number)
        likelihood = _hop_likelihood(
            values, float(consumed[0]), float(outputs[round_number][0]), p_r
        )
        updated = posterior * likelihood
        total = updated.sum()
        if total > 0:
            posterior = updated / total
        curve.append((round_number, prior_entropy - _entropy_bits(posterior)))
    return curve
