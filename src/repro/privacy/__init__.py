"""Privacy model: claims, the privacy spectrum, LoP metric, adversaries."""

from .adversary import (
    AdversaryError,
    average_coalition_lop,
    coalition_lop,
    coalition_round_lop,
    naive_range_exposure,
    victim_is_sandwiched,
)
from .claims import Claim, ClaimError, ExposureKind, RangeClaim, ValueClaim
from .distribution import (
    PosteriorReport,
    coalition_posterior,
    entropy_reduction_by_round,
)
from .groups import (
    GroupError,
    anonymity_set,
    anonymity_size,
    group_lop,
    group_round_lop,
    is_m_anonymous,
)
from .lop import (
    average_lop,
    item_round_lop,
    node_lop,
    node_round_lop,
    per_round_average_lop,
    value_in,
    worst_case_lop,
)
from .accounting import BudgetExceededError, ExposureLedger
from .dp import (
    BudgetExhausted,
    DpError,
    DpGate,
    DpPolicy,
    GeometricMechanism,
    LaplaceMechanism,
    PrivacyAccountant,
    SpendMeter,
    calibrate_mechanism,
    sensitivity_for,
)
from .precision import is_exact, precision
from .ranges import (
    RangeExposureError,
    average_range_lop,
    node_range_lop,
    range_claim_lop,
)
from .report import NodePrivacyRow, PrivacyReport, privacy_report
from .spectrum import SpectrumLevel, classify

__all__ = [
    "AdversaryError",
    "BudgetExceededError",
    "BudgetExhausted",
    "DpError",
    "DpGate",
    "DpPolicy",
    "ExposureLedger",
    "GeometricMechanism",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "SpendMeter",
    "calibrate_mechanism",
    "sensitivity_for",
    "Claim",
    "ClaimError",
    "ExposureKind",
    "GroupError",
    "NodePrivacyRow",
    "PosteriorReport",
    "PrivacyReport",
    "RangeClaim",
    "RangeExposureError",
    "SpectrumLevel",
    "ValueClaim",
    "anonymity_set",
    "anonymity_size",
    "average_coalition_lop",
    "average_lop",
    "average_range_lop",
    "classify",
    "coalition_lop",
    "coalition_posterior",
    "coalition_round_lop",
    "entropy_reduction_by_round",
    "group_lop",
    "group_round_lop",
    "is_m_anonymous",
    "is_exact",
    "item_round_lop",
    "naive_range_exposure",
    "node_lop",
    "node_range_lop",
    "node_round_lop",
    "per_round_average_lop",
    "precision",
    "privacy_report",
    "range_claim_lop",
    "value_in",
    "victim_is_sandwiched",
    "worst_case_lop",
]
