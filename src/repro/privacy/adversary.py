"""Adversary models: single semi-honest observers and colluding coalitions.

Section 2.1 adopts the *semi-honest* model: parties follow the protocol but
keep (passively log) everything they see.  The strongest single adversary
against node *i* is its **successor**, which receives ``G_i(r)`` every round
— exactly what the LoP estimator in :mod:`repro.privacy.lop` scores.

Section 4.3 additionally analyses the **colluding neighbours** scenario: the
predecessor and successor of node *i* pool their views, so they know both
``G_{i-1}(r)`` and ``G_i(r)``.  Whenever the vector changed across node *i*
they learn that *i* either revealed its real contribution (probability
``1 − P_r(r)``) or injected noise — and, unlike a lone successor, they can
*attribute* a revealed final-result value to node *i* specifically, which is
why the paper notes the max-holder suffers provable exposure under
collusion.  The empirical coalition estimator therefore:

* scores a round only when it is *informative* (the vector changed across
  the victim);
* keeps the ``1/n`` prior for claimed values that are in the final result
  (the coalition's attribution beats the prior, so the LoP is positive
  rather than zero).
"""

from __future__ import annotations

from ..core.results import ProtocolResult
from ..network.ring import RingTopology
from .claims import RangeClaim
from .lop import value_in


class AdversaryError(ValueError):
    """Raised for invalid adversary configurations."""


def _ring_at_round(result: ProtocolResult, round_number: int) -> RingTopology:
    """The ring in effect during ``round_number`` (honours per-round remaps)."""
    if result.ring_history:
        eligible = [r for r in result.ring_history if r <= round_number]
        if eligible:
            return RingTopology(result.ring_history[max(eligible)])
    return RingTopology(result.ring_order)


def _vector_consumed(result: ProtocolResult, victim: str, round_number: int):
    """The vector ``victim`` computed on when producing its round-r output.

    For a non-starter that is simply its round-r input.  The starter's
    round-r output, however, was computed from the token that closed round
    r-1 (or, in round 1, from the public identity vector) — its round-r
    *input* arrives later and closes round r.
    """
    if victim != result.starter:
        return result.event_log.inputs_of(victim).get(round_number)
    if round_number == 1:
        return tuple(float(v) for v in result.query.identity_vector())
    return result.event_log.inputs_of(victim).get(round_number - 1)


def coalition_round_lop(
    result: ProtocolResult, victim: str, round_number: int
) -> float:
    """Empirical LoP of ``victim`` against its colluding neighbours, one round."""
    if victim not in result.ring_order:
        raise AdversaryError(f"unknown victim {victim!r}")
    incoming = _vector_consumed(result, victim, round_number)
    outgoing = result.event_log.outputs_of(victim).get(round_number)
    if incoming is None or outgoing is None:
        return 0.0
    if tuple(incoming) == tuple(outgoing):
        # Uninformative: the victim passed the vector on unchanged, which is
        # also what it would have done with nothing to contribute.
        return 0.0
    items = result.local_vectors[victim]
    if not items:
        return 0.0
    n = result.n_nodes
    final = result.final_vector
    total = 0.0
    for item in items:
        claim_true = value_in(item, outgoing)
        prior = 1.0 / n if value_in(item, final) else 0.0
        total += max(0.0, (1.0 if claim_true else 0.0) - prior)
    return total / len(items)


def coalition_lop(result: ProtocolResult, victim: str) -> float:
    """Peak coalition LoP across rounds for one victim."""
    rounds = result.event_log.rounds()
    if not rounds:
        return 0.0
    return max(coalition_round_lop(result, victim, r) for r in rounds)


def average_coalition_lop(result: ProtocolResult) -> float:
    """Mean coalition LoP over all nodes (each attacked by its own neighbours)."""
    nodes = result.ring_order
    return sum(coalition_lop(result, node) for node in nodes) / len(nodes)


def victim_is_sandwiched(
    result: ProtocolResult, victim: str, colluders: tuple[str, str], round_number: int
) -> bool:
    """True when ``colluders`` are exactly the victim's neighbours that round.

    With per-round ring remapping (Section 4.3 countermeasure) this holds in
    some rounds and not others, which is precisely how remapping dilutes a
    static coalition — measured by the remapping ablation benchmark.
    """
    ring = _ring_at_round(result, round_number)
    return ring.are_sandwiching(colluders, victim)


def naive_range_exposure(result: ProtocolResult, node: str) -> RangeClaim | None:
    """The range claim a successor can prove under the *naive* protocol.

    In the naive protocol every node's output is the true running max, so the
    successor of node *i* can prove ``v_i <= g_i`` (Section 3.1's range
    exposure).  For the probabilistic protocol no such proof exists and this
    returns None.
    """
    if result.protocol == "probabilistic":
        return None
    outputs = result.event_log.outputs_of(node)
    if not outputs:
        return None
    first_round_output = outputs[min(outputs)]
    bound = max(first_round_output)
    return RangeClaim(node=node, low=result.query.domain.low, high=bound)
