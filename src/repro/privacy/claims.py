"""Adversary claims and the data-exposure taxonomy (Section 2.2).

The paper distinguishes three levels of knowledge an adversary may deduce
about a value ``v_i`` held by node *i*:

* **data value exposure** — the adversary can prove ``v_i = a``;
* **data range exposure** — the adversary can prove ``a <= v_i <= b``;
* **data probability-distribution exposure** — the adversary can prove
  ``pdf(v_i) = f``.

Value exposure is a special case of range exposure, which is a special case
of distribution exposure.  The paper (and this reproduction's quantitative
analysis) focuses on value exposure; range claims are provided for the
naive-protocol range-leak demonstrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ExposureKind(Enum):
    """The taxonomy of Section 2.2, ordered from most to least severe."""

    VALUE = "value"
    RANGE = "range"
    DISTRIBUTION = "distribution"


class ClaimError(ValueError):
    """Raised for malformed claims."""


@dataclass(frozen=True)
class ValueClaim:
    """An adversary's assertion that node ``node`` holds exactly ``value``."""

    node: str
    value: float

    @property
    def kind(self) -> ExposureKind:
        return ExposureKind.VALUE

    def holds_for(self, local_values: list[float]) -> bool:
        """Ground-truth check against the node's actual values."""
        return self.value in local_values


@dataclass(frozen=True)
class RangeClaim:
    """An adversary's assertion that node ``node`` holds a value in [low, high]."""

    node: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ClaimError(f"empty range claim [{self.low}, {self.high}]")

    @property
    def kind(self) -> ExposureKind:
        return ExposureKind.RANGE

    @property
    def width(self) -> float:
        return self.high - self.low

    def holds_for(self, local_values: list[float]) -> bool:
        return any(self.low <= v <= self.high for v in local_values)


Claim = ValueClaim | RangeClaim
