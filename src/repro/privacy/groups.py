"""Group-level exposure and m-anonymity (Section 2.2).

"We can consider data exposures from the perspective of a group of nodes by
treating this subset of nodes as an entity.  Note that even if a group's
privacy is breached, an individual node may still maintain its privacy to
some extent ... the m-anonymity is preserved given the size m of the group."

Two quantities follow:

* **group LoP** — the Loss of Privacy of the claim "*some member of S*
  holds value a", estimated exactly like the per-node metric but over the
  union of the group's data and the union of its emissions;
* **anonymity set** of a sighted value — the set of nodes an adversary
  cannot rule out as its holder; its size is the *m* of m-anonymity.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.results import ProtocolResult


class GroupError(ValueError):
    """Raised for invalid group specifications."""


def _validate_members(result: ProtocolResult, members: Iterable[str]) -> list[str]:
    members = list(dict.fromkeys(members))
    if not members:
        raise GroupError("the group must be non-empty")
    unknown = [m for m in members if m not in result.ring_order]
    if unknown:
        raise GroupError(f"unknown group members: {unknown}")
    return members


def group_round_lop(
    result: ProtocolResult, members: Iterable[str], round_number: int
) -> float:
    """Empirical LoP of the group-entity claim for one round.

    Per group data item ``v``: 0 when ``v`` is public anyway (in the final
    result), else the indicator that some member's round output contained
    ``v`` — i.e. the claim "someone in S holds v" is both *makeable* and
    true.
    """
    members = _validate_members(result, members)
    items = [v for m in members for v in result.local_vectors[m]]
    if not items:
        return 0.0
    emitted: set[float] = set()
    for member in members:
        output = result.event_log.outputs_of(member).get(round_number)
        if output is not None:
            emitted.update(output)
    final = set(result.final_vector)
    exposed = sum(1 for v in items if v not in final and v in emitted)
    return exposed / len(items)


def group_lop(result: ProtocolResult, members: Iterable[str]) -> float:
    """Peak group LoP over rounds — the group analogue of ``node_lop``."""
    rounds = result.event_log.rounds()
    if not rounds:
        return 0.0
    return max(group_round_lop(result, members, r) for r in rounds)


def anonymity_set(result: ProtocolResult, value: float) -> set[str]:
    """Nodes an observer of all traffic cannot rule out as holders of ``value``.

    A node is a candidate when it ever *emitted* the value (it may have
    produced it as its own, as noise, or as a pass-through — the observer
    cannot tell which).  Values in the final result keep every node as a
    candidate: everyone forwards the result, and the paper's convention is
    that each node is equally likely to hold it.
    """
    if value in result.final_vector:
        return set(result.ring_order)
    candidates: set[str] = set()
    for node in result.ring_order:
        for output in result.event_log.outputs_of(node).values():
            if value in output:
                candidates.add(node)
                break
    return candidates


def anonymity_size(result: ProtocolResult, value: float) -> int:
    """|anonymity set| — the m of m-anonymity for one sighted value."""
    return len(anonymity_set(result, value))


def is_m_anonymous(result: ProtocolResult, value: float, m: int) -> bool:
    """True when at least ``m`` nodes could plausibly hold ``value``."""
    if m < 1:
        raise GroupError(f"m must be >= 1, got {m}")
    return anonymity_size(result, value) >= m
