"""Differential privacy: calibrated mechanisms and the (epsilon, delta) accountant.

The paper perturbs local answers ad hoc (Section 3's noisy rank vectors)
and *measures* the resulting loss of privacy.  This module adds the formal
counterpart: a statement suffixed with ``WITH SLO(dp_epsilon=..., [dp_delta=...])``
releases a *noisy* answer whose perturbation follows a mechanism calibrated
to the declared budget and the attribute's public :class:`~repro.database.query.Domain`
— Laplace noise for continuous domains, the two-sided geometric (discrete
Laplace) for integral ones — and every release is charged against a
:class:`PrivacyAccountant` under basic sequential composition.

Design invariants (shared with the rest of the stack):

* **Deterministic per seed.** Noise is drawn from a ``random.Random``
  seeded by SHA-256 over ``(dp seed, release key, inner index, release
  counter)``.  The same seed and workload produce byte-identical noisy
  answers, ledgers, and snapshots — flat or sharded.
* **Cache hits spend zero budget.** A repeat of a released statement whose
  inner (exact) answer is still cache-valid *and identical to the answer
  the release perturbed* re-serves the *same* noisy bytes: no fresh
  randomness, no budget charge.  This is sound — the released value is
  already public — and mirrors the tenant LoP rule ("spent on cache hit"
  is free on both accounting surfaces, via the shared :class:`SpendMeter`).
  The data binding is what makes it sound: a release key excludes data
  versions, so after a table mutation the inner statement can be re-cached
  over *different* data; replaying the old noise against the new answer
  would hand an observer ``new_value + old_noise`` for free — subtracting
  the two released values cancels the noise and discloses the exact data
  delta with zero (epsilon, delta) charged.  :class:`DpGate` therefore
  records, per release, the exact inner answers it perturbed, and treats
  any repeat over different inner answers as a fresh release: headroom
  check, fresh noise, budget charged.
* **Typed refusals.** Budget exhaustion raises :class:`BudgetExhausted`
  (distinct from the planner's ``PlanInfeasible``); a mechanism whose
  noise would underflow to exactly zero raises :class:`DpError` instead
  of silently releasing the exact value.
* **Refuse before recording.** Like :class:`~repro.privacy.accounting.ExposureLedger`,
  the accountant checks headroom *before* mutating any meter, so a refused
  query leaves the ledger untouched.

The DP layer wraps execution rather than replacing it: the *inner*
statement (DP keys stripped; ``AVG`` decomposes into ``SUM`` + ``COUNT``
at half budget each, mirroring the sharded fan-out) runs through the
ordinary Federation/ShardedFederation machinery, so DP queries inherit
batching, caching, sharding, planning, and tracing for free.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # typing only: keeps privacy <- federation import edges acyclic
    from ..database.query import Domain
    from ..federation.sql import FederatedStatement

#: Absolute slack when comparing spend against a budget: a query that lands
#: *exactly* on the remaining budget is admitted; only a strictly positive
#: overshoot (beyond float noise) refuses.
SPEND_TOLERANCE = 1e-9


class DpError(RuntimeError):
    """A differential-privacy release cannot be constructed as requested."""


class BudgetExhausted(DpError):
    """The composed (epsilon, delta) budget cannot absorb this release.

    Deliberately distinct from the planner's ``PlanInfeasible``: the plan
    may be perfectly executable — the *tenant or federation privacy
    allowance* is what ran out.
    """

    def __init__(self, message: str, *, statement: str = "", dimension: str = "epsilon"):
        super().__init__(message)
        self.statement = statement
        self.dimension = dimension


# -- the shared accounting surface -------------------------------------------


@dataclass
class SpendMeter:
    """One budgeted quantity: LoP for a tenant, epsilon or delta for DP.

    ``budget=None`` means unmetered (infinite headroom).  Both the tenant
    LoP accounting (:mod:`repro.sharding.router`) and the DP accountant
    spend through this single surface, so the "cache hits are free" rule
    is enforced in exactly one place for both.
    """

    budget: float | None = None
    spent: float = 0.0

    def remaining(self) -> float:
        if self.budget is None:
            return math.inf
        return max(0.0, self.budget - self.spent)

    def would_exceed(self, amount: float) -> bool:
        """True when charging ``amount`` would overshoot the budget.

        Landing exactly on the budget (within :data:`SPEND_TOLERANCE`) is
        allowed — "budget exactly exhausted on the last round" succeeds.
        """
        if self.budget is None:
            return False
        return self.spent + amount > self.budget + SPEND_TOLERANCE

    def charge(self, amount: float) -> None:
        if amount < 0.0:
            raise ValueError(f"negative charge: {amount}")
        self.spent += amount

    def reset(self) -> None:
        self.spent = 0.0


@dataclass(frozen=True)
class DpCharge:
    """One recorded release: which statement spent how much."""

    statement: str
    epsilon: float
    delta: float


class PrivacyAccountant:
    """Composes (epsilon, delta) across releases under basic composition.

    Basic sequential composition: k releases at (eps_i, delta_i) are
    jointly (sum eps_i, sum delta_i)-DP.  The accountant keeps one
    :class:`SpendMeter` per dimension, a ledger of charges, and counters
    for releases / free (cached) serves / refusals.
    """

    def __init__(
        self,
        epsilon_budget: float | None = None,
        delta_budget: float | None = None,
    ):
        if epsilon_budget is not None and epsilon_budget < 0.0:
            raise DpError(f"epsilon budget must be >= 0, got {epsilon_budget}")
        if delta_budget is not None and not 0.0 <= delta_budget < 1.0:
            raise DpError(f"delta budget must be in [0, 1), got {delta_budget}")
        self.epsilon = SpendMeter(budget=epsilon_budget)
        self.delta = SpendMeter(budget=delta_budget)
        self.charges: list[DpCharge] = []
        self.releases = 0
        self.free_serves = 0
        self.refusals = 0

    # -- inspection ----------------------------------------------------------

    @property
    def epsilon_spent(self) -> float:
        return self.epsilon.spent

    @property
    def delta_spent(self) -> float:
        return self.delta.spent

    def headroom_reason(
        self, epsilon: float, delta: float, *, pending_epsilon: float = 0.0, pending_delta: float = 0.0
    ) -> str | None:
        """Why a (epsilon, delta) charge would refuse, or ``None`` if it fits.

        ``pending_*`` folds in charges admitted earlier in the same batch
        that have not landed on the meters yet, so refusal decisions are
        order-consistent with sequential execution.
        """
        if self.epsilon.would_exceed(pending_epsilon + epsilon):
            return (
                f"epsilon budget exhausted: spent {self.epsilon.spent + pending_epsilon:.9g} "
                f"of {self.epsilon.budget:.9g}, release needs {epsilon:.9g}"
            )
        if self.delta.would_exceed(pending_delta + delta):
            return (
                f"delta budget exhausted: spent {self.delta.spent + pending_delta:.9g} "
                f"of {self.delta.budget:.9g}, release needs {delta:.9g}"
            )
        return None

    # -- mutation ------------------------------------------------------------

    def charge(self, epsilon: float, delta: float, *, statement: str) -> None:
        """Record one release, refusing (before any mutation) on overshoot."""
        reason = self.headroom_reason(epsilon, delta)
        if reason is not None:
            self.refusals += 1
            dimension = "epsilon" if reason.startswith("epsilon") else "delta"
            raise BudgetExhausted(reason, statement=statement, dimension=dimension)
        self.epsilon.charge(epsilon)
        self.delta.charge(delta)
        self.charges.append(DpCharge(statement=statement, epsilon=epsilon, delta=delta))
        self.releases += 1

    def note_free_serve(self) -> None:
        self.free_serves += 1

    def note_refusal(self) -> None:
        self.refusals += 1

    def reset(self) -> None:
        self.epsilon.reset()
        self.delta.reset()
        self.charges.clear()
        self.releases = 0
        self.free_serves = 0
        self.refusals = 0

    # -- rendering -----------------------------------------------------------

    def ledger_lines(self) -> list[str]:
        """Deterministic one-line-per-charge rendering (parity pinning)."""
        return [
            f"{c.statement} eps={c.epsilon:.9g} delta={c.delta:.9g}"
            for c in self.charges
        ]

    def snapshot(self) -> dict[str, object]:
        return {
            "epsilon_spent": round(self.epsilon.spent, 9),
            "epsilon_budget": self.epsilon.budget,
            "delta_spent": round(self.delta.spent, 12),
            "delta_budget": self.delta.budget,
            "releases": self.releases,
            "free_serves": self.free_serves,
            "refusals": self.refusals,
        }


# -- mechanisms --------------------------------------------------------------


@dataclass(frozen=True)
class LaplaceMechanism:
    """Additive Laplace(scale) noise: epsilon-DP for sensitivity/scale = epsilon."""

    scale: float
    name: str = "laplace"

    def draw(self, rng: random.Random) -> float:
        # Inverse CDF on a symmetric uniform: u in (-1/2, 1/2).
        u = rng.random() - 0.5
        # Guard the open interval; rng.random() can return 0.0 exactly.
        u = min(max(u, -0.5 + 1e-15), 0.5 - 1e-15)
        return -self.scale * math.copysign(1.0, u) * math.log1p(-2.0 * abs(u))


@dataclass(frozen=True)
class GeometricMechanism:
    """Two-sided geometric (discrete Laplace) noise with ratio ``alpha``.

    P[X = k] proportional to alpha^|k|; epsilon-DP on integer-valued
    queries when alpha = exp(-epsilon / sensitivity).  Draws are integers,
    so integral-domain releases stay integral.
    """

    alpha: float
    name: str = "geometric"

    def draw(self, rng: random.Random) -> float:
        if self.alpha <= 0.0:
            return 0.0
        p_zero = (1.0 - self.alpha) / (1.0 + self.alpha)
        u = rng.random()
        if u < p_zero:
            return 0.0
        # Split the remaining mass evenly between the two geometric tails.
        sign = 1.0 if (u - p_zero) < (1.0 - p_zero) / 2.0 else -1.0
        v = rng.random()
        v = min(max(v, 1e-15), 1.0 - 1e-15)
        magnitude = 1 + int(math.floor(math.log(1.0 - v) / math.log(self.alpha)))
        return sign * float(max(1, magnitude))


Mechanism = LaplaceMechanism | GeometricMechanism


def sensitivity_for(statement: FederatedStatement, domain: Domain) -> float:
    """Conservative L1 sensitivity of one statement under the declared domain.

    * ``COUNT`` — adding/removing one row moves the count by 1.
    * ``SUM`` — by at most the largest-magnitude domain value.
    * ranking (``TOP``/``MAX``/``BOTTOM``/``MIN``) — each of the k released
      positions can move by at most the domain width, so k * (high - low)
      bounds the L1 shift of the released vector.
    """
    if statement.operation == "COUNT":
        return 1.0
    if statement.operation == "SUM":
        return max(abs(domain.low), abs(domain.high))
    if statement.is_ranking:
        return float(statement.k) * (domain.high - domain.low)
    raise DpError(
        f"no direct sensitivity for {statement.operation}; AVG decomposes to SUM+COUNT"
    )


def calibrate_mechanism(sensitivity: float, epsilon: float, *, integral: bool) -> Mechanism:
    """Pick and calibrate the noise mechanism for one inner release.

    Raises :class:`DpError` when the calibration degenerates to *zero
    noise* (e.g. ``exp(-epsilon/sensitivity)`` underflowing to 0.0 for an
    absurdly large epsilon): releasing the exact value while claiming DP
    would be a silent privacy bug, so it is a typed refusal instead.
    """
    if not (math.isfinite(sensitivity) and sensitivity > 0.0):
        raise DpError(f"sensitivity must be finite and > 0, got {sensitivity}")
    if not (math.isfinite(epsilon) and epsilon > 0.0):
        raise DpError(f"dp_epsilon must be finite and > 0, got {epsilon}")
    if integral:
        alpha = math.exp(-epsilon / sensitivity)
        if alpha == 0.0:
            raise DpError(
                f"zero-noise refusal: exp(-{epsilon:g}/{sensitivity:g}) underflows; "
                "the geometric mechanism would release the exact value"
            )
        return GeometricMechanism(alpha=alpha)
    scale = sensitivity / epsilon
    if not math.isfinite(scale) or scale == 0.0:
        raise DpError(
            f"zero-noise refusal: Laplace scale {sensitivity:g}/{epsilon:g} degenerates"
        )
    return LaplaceMechanism(scale=scale)


# -- policy and release requests ---------------------------------------------


@dataclass(frozen=True)
class DpPolicy:
    """Federation-level DP configuration.

    ``epsilon_budget`` / ``delta_budget`` bound the accountant (``None``
    means unmetered); ``seed`` isolates the noise stream from the
    protocol's own seed derivation so enabling DP never perturbs
    non-DP draws.
    """

    epsilon_budget: float | None = None
    delta_budget: float | None = None
    seed: int = 0


@dataclass(frozen=True)
class DpInner:
    """One inner (exact) statement plus the mechanism perturbing its answer."""

    text: str
    mechanism: Mechanism


@dataclass(frozen=True)
class DpRequest:
    """A fully-resolved DP release: inner statements, budgets, mechanisms.

    ``key`` identifies the release stream — repeats of the same canonical
    statement at the same budget advance one shared release counter, which
    is what makes cached re-serves byte-identical and free.
    """

    operation: str
    k: int
    smallest: bool
    domain: Domain
    epsilon: float
    delta: float
    inner: tuple[DpInner, ...]
    key: tuple
    label: str

    @property
    def inner_texts(self) -> tuple[str, ...]:
        return tuple(i.text for i in self.inner)


def build_request(spec, domain: Domain | None) -> DpRequest | None:
    """Resolve a parsed :class:`~repro.planner.spec.QuerySpec` into a DP request.

    Returns ``None`` for non-DP specs.  Raises :class:`DpError` when the
    spec requests DP but no domain is declared for the attribute, or the
    mechanism calibration degenerates.
    """
    # Local import: planner.spec imports nothing from privacy, so this
    # direction is cycle-free, but keeping it local mirrors the layering.
    from ..planner.spec import strip_dp

    slo = spec.slo
    if not slo.has_dp:
        return None
    statement = spec.statement
    if domain is None:
        raise DpError(
            f"dp_epsilon requires a declared domain for "
            f"{statement.table}.{statement.attribute}"
        )
    epsilon = float(slo.dp_epsilon)
    delta = float(slo.dp_delta) if slo.dp_delta is not None else 0.0
    inner_text = strip_dp(spec)
    key = (
        statement.operation,
        statement.k,
        statement.attribute,
        statement.table,
        repr(epsilon),
        repr(delta),
    )
    label = (
        f"{statement.operation} k={statement.k} {statement.table}.{statement.attribute} "
        f"dp_epsilon={epsilon:g} dp_delta={delta:g}"
    )
    if statement.operation == "AVG":
        # Decompose like the sharded fan-out: SUM + COUNT at half budget each.
        half = epsilon / 2.0
        sum_text = f"SELECT SUM({statement.attribute}) FROM {statement.table}"
        count_text = f"SELECT COUNT({statement.attribute}) FROM {statement.table}"
        sum_sens = max(abs(domain.low), abs(domain.high))
        inner = (
            DpInner(sum_text, calibrate_mechanism(sum_sens, half, integral=domain.integral)),
            DpInner(count_text, calibrate_mechanism(1.0, half, integral=True)),
        )
    else:
        sens = sensitivity_for(statement, domain)
        integral = domain.integral if statement.operation != "COUNT" else True
        inner = (
            DpInner(inner_text, calibrate_mechanism(sens, epsilon, integral=integral)),
        )
    return DpRequest(
        operation=statement.operation,
        k=statement.k,
        smallest=statement.smallest,
        domain=domain,
        epsilon=epsilon,
        delta=delta,
        inner=inner,
        key=key,
        label=label,
    )


# -- the gate ----------------------------------------------------------------


@dataclass
class _PendingBudget:
    """Batch-scoped budget already admitted but not yet charged."""

    epsilon: float = 0.0
    delta: float = 0.0
    keys: set = field(default_factory=set)


@dataclass(frozen=True)
class _ReleaseRecord:
    """One key's latest release: counter, perturbed inputs, released bytes.

    ``inner_values`` binds the release to the exact inner answers its noise
    perturbed; ``values`` are the released noisy bytes, re-servable verbatim
    (and only) while the current inner answers still match that binding.
    """

    count: int
    inner_values: tuple[tuple[float, ...], ...]
    values: tuple[float, ...]


def _freeze(inner_values: Sequence[Sequence[float]]) -> tuple[tuple[float, ...], ...]:
    return tuple(tuple(float(v) for v in values) for values in inner_values)


class DpGate:
    """Per-federation DP release engine.

    Owns the accountant, the per-key release counters, and the
    deterministic noise derivation.  Both :class:`~repro.federation.coordinator.Federation`
    and :class:`~repro.sharding.federation.ShardedFederation` drive their
    DP paths through one gate so flat and sharded executions share ledger
    and noise byte-for-byte.
    """

    def __init__(self, policy: DpPolicy | None = None):
        self.policy = policy or DpPolicy()
        self.accountant = PrivacyAccountant(
            self.policy.epsilon_budget, self.policy.delta_budget
        )
        self._releases: dict[tuple, _ReleaseRecord] = {}

    # -- release bookkeeping -------------------------------------------------

    def reusable(self, request: DpRequest) -> bool:
        """True when this key has released before.

        Admission optimism only: whether a repeat actually re-serves free is
        decided by :meth:`replayable`, which also checks that the data the
        release perturbed has not changed underneath it.
        """
        return request.key in self._releases

    def replayable(
        self, request: DpRequest, inner_values: Sequence[Sequence[float]]
    ) -> bool:
        """True when the latest release perturbed exactly these inner answers.

        This is the only case a free re-serve is sound: the re-served bytes
        are then identical to the already-public release.  Replaying a
        release's noise against *changed* data would let an observer
        subtract the two releases and recover the exact data delta
        uncharged, so a mismatch must settle as a fresh release instead.
        """
        record = self._releases.get(request.key)
        return record is not None and record.inner_values == _freeze(inner_values)

    def would_charge(
        self,
        request: DpRequest,
        inner_cached: bool,
        inner_values: Sequence[Sequence[float]],
    ) -> bool:
        """Charge unless a still-valid release over these exact answers exists."""
        return not (inner_cached and self.replayable(request, inner_values))

    def new_pending(self) -> _PendingBudget:
        return _PendingBudget()

    def admit(self, request: DpRequest, pending: _PendingBudget) -> str | None:
        """Batch-time precheck, *before* any seed draw or inner dispatch.

        Optimistic on reuse: a key that has released before is admitted
        without headroom (the repeat is usually a free cached re-serve);
        if the inner cache turns out to be invalidated, ``finalize`` still
        enforces the budget and the statement settles as refused.
        """
        if self.reusable(request) or request.key in pending.keys:
            return None
        reason = self.accountant.headroom_reason(
            request.epsilon,
            request.delta,
            pending_epsilon=pending.epsilon,
            pending_delta=pending.delta,
        )
        if reason is not None:
            self.accountant.note_refusal()
            return reason
        pending.epsilon += request.epsilon
        pending.delta += request.delta
        pending.keys.add(request.key)
        return None

    def finalize(
        self,
        request: DpRequest,
        inner_values: Sequence[Sequence[float]],
        *,
        inner_cached: bool,
    ) -> tuple[tuple[float, ...], bool]:
        """Assemble the noisy release; returns ``(values, charged)``.

        A free re-serve returns the latest release's stored bytes
        (byte-identical answer, zero budget) — and only happens when the
        current inner answers are the very ones that release perturbed.  Any
        other repeat — inner re-executed, or re-cached over mutated data —
        is a fresh release: it charges the accountant, refusing with
        :class:`BudgetExhausted` before the counter or any meter moves, then
        advances the release counter onto fresh noise.
        """
        record = self._releases.get(request.key)
        frozen = _freeze(inner_values)
        if inner_cached and record is not None and record.inner_values == frozen:
            self.accountant.note_free_serve()
            return record.values, False
        self.accountant.charge(request.epsilon, request.delta, statement=request.label)
        release = (record.count if record is not None else 0) + 1
        values = self._perturb(request, inner_values, release)
        self._releases[request.key] = _ReleaseRecord(
            count=release, inner_values=frozen, values=values
        )
        return values, True

    # -- noise ---------------------------------------------------------------

    def _noise_rng(self, request: DpRequest, inner_index: int, release: int) -> random.Random:
        material = ":".join(
            [
                str(self.policy.seed),
                "dp",
                *[str(part) for part in request.key],
                str(inner_index),
                str(release),
            ]
        ).encode()
        seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        return random.Random(seed)

    def _perturb(
        self,
        request: DpRequest,
        inner_values: Sequence[Sequence[float]],
        release: int,
    ) -> tuple[float, ...]:
        domain = request.domain
        if request.operation == "AVG":
            sum_noise = request.inner[0].mechanism.draw(self._noise_rng(request, 0, release))
            count_noise = request.inner[1].mechanism.draw(self._noise_rng(request, 1, release))
            noisy_sum = inner_values[0][0] + sum_noise
            noisy_count = max(1.0, float(round(inner_values[1][0] + count_noise)))
            return (domain.clamp(noisy_sum / noisy_count),)
        rng = self._noise_rng(request, 0, release)
        mechanism = request.inner[0].mechanism
        if request.operation == "SUM":
            return (float(inner_values[0][0] + mechanism.draw(rng)),)
        if request.operation == "COUNT":
            return (max(0.0, float(round(inner_values[0][0] + mechanism.draw(rng)))),)
        # Ranking: perturb each released position, clamp to the public
        # domain, and re-sort — post-processing keeps the DP guarantee and
        # the output a monotone k-vector.
        noisy = [domain.clamp(v + mechanism.draw(rng)) for v in inner_values[0]]
        noisy.sort(reverse=not request.smallest)
        return tuple(float(v) for v in noisy)

    # -- inspection ----------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        snap = self.accountant.snapshot()
        snap["release_keys"] = len(self._releases)
        return snap


__all__ = [
    "SPEND_TOLERANCE",
    "BudgetExhausted",
    "DpCharge",
    "DpError",
    "DpGate",
    "DpInner",
    "DpPolicy",
    "DpRequest",
    "GeometricMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "PrivacyAccountant",
    "SpendMeter",
    "build_request",
    "calibrate_mechanism",
    "sensitivity_for",
]
