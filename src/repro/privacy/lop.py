"""The Loss-of-Privacy (LoP) metric and its empirical estimator.

Equation 1: ``LoP = P(C | R, IR) − P(C | R)`` for a claim ``C`` about a
node's value, where ``R`` is the public final result and ``IR`` the
intermediate results the adversary observed.

The empirical estimator (derivation in DESIGN.md §4) scores, per trial, the
claim an adversary can actually make: the successor of node *i* observes the
vector ``G_i(r)`` and claims node *i* holds (one of) its values.

* If the claimed value appears in the final result ``R``, the paper's
  convention applies: every node is equally likely to hold a final-result
  value (``P(C|R) = 1/n``) and observing it mid-protocol proves nothing
  more, so the contribution is **0**.
* Otherwise ``P(C|R) ≈ 0`` (the public domain is large), and the indicator
  *"the claim is true"* — i.e. the observed vector really contains the
  node's value — averaged over trials estimates ``P(C | R, IR)``.

A node's per-round LoP averages over the data items it participates with
(its local top-k vector; a single value for max).  Its overall LoP is the
**maximum** over rounds ("that gives us a measure of the highest level of
knowledge an adversary can obtain", Section 5.3).  System-level numbers are
the mean (average case) or max (worst case) over nodes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.results import ProtocolResult


def value_in(item: float, values: Sequence[float]) -> bool:
    """Tolerant float membership: is ``item`` (an ulp or two close to) a value?

    Protocol vectors accumulate float arithmetic — AVG divisions, noise
    perturbation, encode/decode round-trips — so a node's data item can
    differ from its occurrence in an observed vector by rounding alone.
    Exact ``in`` would then under-count exposure (a claim that *is* true
    scored as false), silently biasing every LoP estimate downward.  The
    tolerances match :meth:`repro.experiments.series.Series.y_at`.
    """
    return any(
        math.isclose(item, v, rel_tol=1e-9, abs_tol=1e-12) for v in values
    )


def item_round_lop(
    item: float,
    output_vector: Sequence[float],
    final_result: Sequence[float],
) -> float:
    """Per-trial LoP contribution of one data item in one round."""
    if value_in(item, final_result):
        return 0.0
    return 1.0 if value_in(item, output_vector) else 0.0


def node_round_lop(result: ProtocolResult, node: str, round_number: int) -> float:
    """Mean LoP over the node's participating items for one round."""
    items = result.local_vectors[node]
    if not items:
        return 0.0
    outputs = result.event_log.outputs_of(node)
    output = outputs.get(round_number)
    if output is None:
        # The node forwarded nothing this round (e.g. it crashed); an
        # adversary observed nothing new from it.
        return 0.0
    final = result.final_vector
    return sum(item_round_lop(v, output, final) for v in items) / len(items)


def node_lop(result: ProtocolResult, node: str) -> float:
    """The node's overall LoP: its peak per-round LoP across the run."""
    rounds = result.event_log.rounds()
    if not rounds:
        return 0.0
    return max(node_round_lop(result, node, r) for r in rounds)


def per_round_average_lop(result: ProtocolResult) -> dict[int, float]:
    """Round -> mean LoP over all nodes (the Figure 7 quantity, one trial)."""
    nodes = result.ring_order
    return {
        r: sum(node_round_lop(result, node, r) for node in nodes) / len(nodes)
        for r in result.event_log.rounds()
    }


def average_lop(result: ProtocolResult) -> float:
    """System average-case LoP: mean over nodes of each node's peak LoP."""
    nodes = result.ring_order
    return sum(node_lop(result, node) for node in nodes) / len(nodes)


def worst_case_lop(result: ProtocolResult) -> float:
    """System worst-case LoP: the most-exposed node's peak LoP."""
    return max(node_lop(result, node) for node in result.ring_order)
