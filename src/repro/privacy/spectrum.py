"""The probabilistic privacy spectrum (Reiter & Rubin, via Section 2.3).

The paper reviews this metric — the probability that an adversary's claim is
true — before arguing it is *inadequate* for data privacy because it ignores
how the claim relates to the public final result.  We implement it anyway:
it is the baseline the Loss-of-Privacy metric improves upon, and the paper's
own discussion ("beyond suspicion", "provable exposure") is phrased in its
vocabulary.
"""

from __future__ import annotations

from enum import Enum


class SpectrumLevel(Enum):
    """Named bands of the privacy spectrum, most private first."""

    ABSOLUTE_PRIVACY = "absolute privacy"
    BEYOND_SUSPICION = "beyond suspicion"
    PROBABLE_INNOCENCE = "probable innocence"
    POSSIBLE_INNOCENCE = "possible innocence"
    PROVABLY_EXPOSED = "provably exposed"


def classify(probability: float, n_nodes: int) -> SpectrumLevel:
    """Map a claim probability onto the spectrum.

    ``probability`` is P(claim is true | adversary's view); ``n_nodes`` sets
    the *beyond suspicion* threshold: a node is beyond suspicion when it is
    no more likely than any other node (probability <= 1/n) to satisfy the
    claim (the m-anonymity reading, Section 2.3).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if probability == 0.0:
        return SpectrumLevel.ABSOLUTE_PRIVACY
    if probability >= 1.0:
        return SpectrumLevel.PROVABLY_EXPOSED
    if probability <= 1.0 / n_nodes:
        return SpectrumLevel.BEYOND_SUSPICION
    if probability <= 0.5:
        return SpectrumLevel.PROBABLE_INNOCENCE
    return SpectrumLevel.POSSIBLE_INNOCENCE
