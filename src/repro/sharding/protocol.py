"""JSON codec for the shard worker wire protocol.

Process shards speak framed JSON over TCP, reusing the deployment layer's
length-prefixed framing (:mod:`repro.deploy.wire`) so every substrate in
this codebase shares one frame format.  This module is the pure codec half:
request/response encoding, and the mapping between typed refusal exceptions
and their wire names, shared by the worker (:mod:`repro.sharding.worker`)
and the client (:class:`repro.sharding.shards.ProcessShard`) so a refusal
raised inside a worker process re-materializes as the *same type* in the
gateway — the degradation contract is typed end to end.

Protocol outcomes lose their :class:`~repro.core.results.ProtocolResult`
trace across the process boundary (``trace=None``): traces are debugging
artifacts of the executing process, while values/rounds/messages/simulated
seconds — everything the gateway's merge, metrics and clock need — survive
intact.
"""

from __future__ import annotations

import json
import socket

from ..deploy.wire import recv_frame, send_frame
from ..federation.coordinator import QueryOutcome, QueryRefused
from ..federation.policy import PolicyViolation
from ..federation.sql import SqlError
from ..planner.errors import PlanInfeasible
from ..planner.spec import SloError
from ..privacy.accounting import BudgetExceededError
from .errors import (
    ShardError,
    ShardUnavailable,
    TenantBudgetExceeded,
    TenantRateLimited,
)

#: Typed refusals that cross the wire by name.  Anything not listed decodes
#: as a plain :class:`ShardError` carrying the original type in its message
#: (never silently swallowed, never un-typed into a bare Exception).
_ERROR_TYPES: dict[str, type[Exception]] = {
    "SqlError": SqlError,
    "SloError": SloError,
    "PolicyViolation": PolicyViolation,
    "BudgetExceededError": BudgetExceededError,
    "PlanInfeasible": PlanInfeasible,
    "ShardError": ShardError,
    "ShardUnavailable": ShardUnavailable,
    "TenantRateLimited": TenantRateLimited,
    "TenantBudgetExceeded": TenantBudgetExceeded,
}


def encode_error(error: Exception) -> dict:
    name = type(error).__name__
    if name not in _ERROR_TYPES:
        return {"error": "ShardError", "message": f"{name}: {error}"}
    return {"error": name, "message": str(error)}


def decode_error(payload: dict) -> Exception:
    cls = _ERROR_TYPES.get(str(payload.get("error")), ShardError)
    return cls(str(payload.get("message", "shard error")))


def encode_outcome(outcome: QueryOutcome) -> dict:
    return {
        "statement": outcome.statement,
        "values": list(outcome.values),
        "protocol": outcome.protocol,
        "rounds": outcome.rounds,
        "messages": outcome.messages,
        "cached": outcome.cached,
        "simulated_seconds": outcome.simulated_seconds,
    }


def decode_outcome(payload: dict) -> QueryOutcome:
    return QueryOutcome(
        statement=str(payload["statement"]),
        values=tuple(float(v) for v in payload["values"]),
        protocol=str(payload["protocol"]),
        rounds=int(payload["rounds"]),
        messages=int(payload["messages"]),
        trace=None,
        cached=bool(payload["cached"]),
        simulated_seconds=float(payload["simulated_seconds"]),
    )


def encode_settled(results: "list[QueryOutcome | QueryRefused]") -> list[dict]:
    encoded = []
    for result in results:
        if isinstance(result, QueryRefused):
            entry = {"ok": False, "statement": result.statement}
            entry.update(encode_error(result.error))
            encoded.append(entry)
        else:
            encoded.append({"ok": True, "outcome": encode_outcome(result)})
    return encoded


def decode_settled(payload: list) -> "list[QueryOutcome | QueryRefused]":
    results: "list[QueryOutcome | QueryRefused]" = []
    for entry in payload:
        if entry.get("ok"):
            results.append(decode_outcome(entry["outcome"]))
        else:
            results.append(
                QueryRefused(
                    statement=str(entry.get("statement", "")),
                    error=decode_error(entry),
                )
            )
    return results


def send_json(sock: socket.socket, payload: dict) -> None:
    send_frame(sock, json.dumps(payload, sort_keys=True).encode())


def recv_json(sock: socket.socket) -> dict:
    return json.loads(recv_frame(sock).decode())


__all__ = [
    "decode_error",
    "decode_outcome",
    "decode_settled",
    "encode_error",
    "encode_outcome",
    "encode_settled",
    "recv_json",
    "send_json",
]
