"""Typed failures of the sharding layer.

Shard failures must be *typed* for the same reason service failures are
(:mod:`repro.service.errors`): a multi-tenant gateway has to distinguish
"this shard's process is gone, the statement is refusable right now"
(:class:`ShardUnavailable`) from "this tenant exhausted its own allowance"
(:class:`TenantRateLimited`, :class:`TenantBudgetExceeded`) from a plain
misconfiguration (:class:`ShardError`).  Every one of them settles as a
:class:`~repro.federation.coordinator.QueryRefused` on the batch path, so a
dead shard degrades the statements routed to it and nothing else.
"""

from __future__ import annotations


class ShardError(RuntimeError):
    """Base class for sharding-layer failures (routing, wire, membership)."""


class ShardUnavailable(ShardError):
    """A shard's backing process/socket is unreachable.

    Raised (and settled per statement) when a process shard's worker died,
    timed out, or closed the connection mid-request.  The failure is local
    to the shard: statements routed to live shards keep being served.
    """

    def __init__(self, message: str, *, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


class TenantRateLimited(ShardError):
    """The tenant's cross-shard token bucket is empty; retry later."""


class TenantBudgetExceeded(ShardError):
    """The tenant's cumulative LoP budget cannot cover this statement.

    Unlike :class:`TenantRateLimited` this does not clear with time: the
    tenant has spent its privacy allowance for the session and further
    ranking statements are refused up front — before any shard runs a
    protocol — by the planner's feasibility filter.
    """


__all__ = [
    "ShardError",
    "ShardUnavailable",
    "TenantBudgetExceeded",
    "TenantRateLimited",
]
