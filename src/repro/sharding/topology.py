"""Deterministic sharded-deployment builders for tests and benchmarks.

A :class:`ShardTopology` fixes everything about a sharded deployment —
which tables exist, which rows each party of each shard holds, which
tables are row-partitioned across every shard — from one seed, so the same
topology can be materialized three interchangeable ways:

* :func:`single_federation` — one federation over *all* parties holding
  *all* the rows (the bit-identity oracle the property tests compare
  against);
* :func:`local_shards` — one in-process federation per shard;
* :func:`process_shards` — one :mod:`repro.sharding.worker` subprocess per
  shard, speaking the wire protocol.

Row values are drawn as domain integers, so every protocol arithmetic in
the exactness argument (docs/SHARDING.md) stays bit-exact: integer-valued
doubles survive the secure-sum mask round trip and ranking comparisons
unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.driver import RunConfig
from ..core.params import ProtocolParams
from ..core.schedule import ExponentialSchedule
from ..database.database import PrivateDatabase
from ..database.query import PAPER_DOMAIN, Domain
from ..database.schema import Schema
from ..federation.coordinator import Federation
from .errors import ShardError
from .federation import ShardedFederation
from .router import ShardRouter, shard_index
from .shards import LocalShard, ProcessShard


@dataclass(frozen=True)
class ShardTopology:
    """A fully-determined sharded data layout.

    ``assignments[shard][owner][table]`` is the list of row values that
    party (``owner``, living on ``shard``) holds for ``table``.  Every
    shard's parties share one table namespace: each party materializes
    every table its shard serves (empty where it holds no rows), so the
    federation-wide schema precondition holds per shard by construction.
    """

    shard_count: int
    parties_per_shard: int
    attribute: str
    domain: Domain
    tables: tuple[str, ...]
    partitioned: tuple[str, ...]
    assignments: tuple[dict[str, dict[str, list[float]]], ...]
    seed: int

    def shard_tables(self, shard: int) -> tuple[str, ...]:
        """Every table shard ``shard`` serves (owned + partitioned)."""
        owned = tuple(
            t
            for t in self.tables
            if t not in self.partitioned
            and shard_index(t, self.shard_count) == shard
        )
        return tuple(sorted(owned + self.partitioned))

    def table_values(self, table: str) -> list[float]:
        """The table's full row set (union over all shards and parties)."""
        values: list[float] = []
        for shard in self.assignments:
            for tables in shard.values():
                values.extend(tables.get(table, ()))
        return values

    def party_names(self) -> list[str]:
        return [name for shard in self.assignments for name in sorted(shard)]


def build_topology(
    *,
    shards: int,
    parties_per_shard: int = 3,
    tables: int = 8,
    rows_per_table: int = 40,
    partitioned: int = 1,
    seed: int = 0,
    domain: Domain = PAPER_DOMAIN,
    attribute: str = "value",
) -> ShardTopology:
    """Generate a deterministic topology of synthetic integer tables.

    ``tables`` routed tables named ``t00..`` place by SHA-256
    (:func:`~repro.sharding.router.shard_index`); the first ``partitioned``
    of an extra ``part00..`` family split their rows round-robin across
    *every* party of *every* shard.  Rows are uniform domain integers.
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    if parties_per_shard < 3:
        raise ShardError(
            f"each shard is a ring protocol and needs >= 3 parties, "
            f"got {parties_per_shard}"
        )
    rng = random.Random(seed)
    routed_names = tuple(f"t{i:02d}" for i in range(tables))
    part_names = tuple(f"part{i:02d}" for i in range(partitioned))
    assignments: list[dict[str, dict[str, list[float]]]] = [
        {
            f"org{s:02d}x{p:02d}": {}
            for p in range(parties_per_shard)
        }
        for s in range(shards)
    ]

    def draw_rows() -> list[float]:
        low, high = int(domain.low), int(domain.high)
        return [float(rng.randint(low, high)) for _ in range(rows_per_table)]

    for table in routed_names:
        owner_shard = shard_index(table, shards)
        parties = sorted(assignments[owner_shard])
        for i, value in enumerate(draw_rows()):
            owner = parties[i % len(parties)]
            assignments[owner_shard][owner].setdefault(table, []).append(value)
    all_parties = [
        (s, owner)
        for s in range(shards)
        for owner in sorted(assignments[s])
    ]
    for table in part_names:
        for i, value in enumerate(draw_rows()):
            s, owner = all_parties[i % len(all_parties)]
            assignments[s][owner].setdefault(table, []).append(value)

    return ShardTopology(
        shard_count=shards,
        parties_per_shard=parties_per_shard,
        attribute=attribute,
        domain=domain,
        tables=routed_names + part_names,
        partitioned=part_names,
        assignments=tuple(assignments),
        seed=seed,
    )


def exact_config(*, rounds: int = 4, protocol: str = "probabilistic") -> RunConfig:
    """A run configuration whose answers are exact (the bit-identity regime).

    ``p0=0`` means no node ever randomizes, so the probabilistic protocol
    returns the true top-k; the naive protocol is exact by construction.
    """
    return RunConfig(
        protocol=protocol,
        params=ProtocolParams(schedule=ExponentialSchedule(p0=0.0), rounds=rounds),
    )


def _build_party(
    owner: str,
    tables: "tuple[str, ...]",
    held: dict[str, list[float]],
    attribute: str,
) -> PrivateDatabase:
    db = PrivateDatabase(owner)
    for table_name in tables:
        table = db.create_table(table_name, Schema.of((attribute, "INTEGER")))
        values = held.get(table_name, ())
        if values:
            table.insert_many({attribute: int(v)} for v in values)
    return db


def single_federation(
    topology: ShardTopology, *, config: RunConfig | None = None, **kwargs
) -> Federation:
    """One federation over every party and every row — the sharding oracle."""
    federation = Federation(
        domain=topology.domain,
        config=config if config is not None else exact_config(),
        seed=topology.seed,
        **kwargs,
    )
    for shard in topology.assignments:
        for owner in sorted(shard):
            federation.register(
                _build_party(owner, topology.tables, shard[owner], topology.attribute)
            )
    return federation


def local_shards(
    topology: ShardTopology, *, config: RunConfig | None = None, **kwargs
) -> list[LocalShard]:
    """One in-process federation per shard, holding only its table slice."""
    shards: list[LocalShard] = []
    for index, assignment in enumerate(topology.assignments):
        federation = Federation(
            domain=topology.domain,
            config=config if config is not None else exact_config(),
            seed=topology.seed + index,
            **kwargs,
        )
        tables = topology.shard_tables(index)
        for owner in sorted(assignment):
            federation.register(
                _build_party(owner, tables, assignment[owner], topology.attribute)
            )
        shards.append(LocalShard(federation, index=index))
    return shards


def shard_spec(
    topology: ShardTopology,
    shard: int,
    *,
    rounds: int = 4,
    protocol: str = "probabilistic",
    p0: float = 0.0,
    d: float = 0.5,
) -> dict:
    """The :mod:`repro.sharding.worker` stdin spec for one shard."""
    assignment = topology.assignments[shard]
    tables = topology.shard_tables(shard)
    return {
        "shard": shard,
        "seed": topology.seed + shard,
        "domain": {
            "low": topology.domain.low,
            "high": topology.domain.high,
            "integral": topology.domain.integral,
        },
        "attribute": topology.attribute,
        "schedule": {"p0": p0, "d": d},
        "rounds": rounds,
        "protocol": protocol,
        "parties": [
            {
                "owner": owner,
                "tables": {t: assignment[owner].get(t, []) for t in tables},
            }
            for owner in sorted(assignment)
        ],
        "types": {t: "INTEGER" for t in tables},
    }


def process_shards(
    topology: ShardTopology,
    *,
    rounds: int = 4,
    protocol: str = "probabilistic",
    timeout: float = 10.0,
    boot_timeout: float = 30.0,
) -> list[ProcessShard]:
    """Spawn one worker process per shard; closes the spawned on failure."""
    shards: list[ProcessShard] = []
    try:
        for index in range(topology.shard_count):
            shards.append(
                ProcessShard.spawn(
                    shard_spec(topology, index, rounds=rounds, protocol=protocol),
                    index=index,
                    timeout=timeout,
                    boot_timeout=boot_timeout,
                )
            )
    except Exception:
        for shard in shards:
            shard.close()
        raise
    return shards


def sharded_federation(
    topology: ShardTopology,
    *,
    processes: bool = False,
    config: RunConfig | None = None,
    **kwargs,
) -> ShardedFederation:
    """A ready :class:`ShardedFederation` over the topology's shards.

    ``processes=True`` spawns one worker subprocess per shard; otherwise
    shards are in-process federations.  The router already knows the
    topology's partitioned tables, and DP statements calibrate against the
    topology's domain unless a ``domain=`` override is passed.
    """
    router = ShardRouter(topology.shard_count, partitioned=topology.partitioned)
    backends = (
        process_shards(topology)
        if processes
        else local_shards(topology, config=config)
    )
    kwargs.setdefault("domain", topology.domain)
    return ShardedFederation(backends, router=router, **kwargs)


def topology_workload(
    topology: ShardTopology,
    queries: int,
    *,
    seed: int = 0,
    repeat_fraction: float = 0.3,
    max_k: int = 5,
) -> list[str]:
    """A deterministic mixed statement stream over the topology's tables.

    The shape mirrors :func:`repro.service.workload.mixed_workload` (repeats
    exercise the cache fast path) but draws the table per statement, so the
    stream spreads across shards and includes fan-outs over the partitioned
    tables.
    """
    if queries < 1:
        raise ShardError(f"queries must be >= 1, got {queries}")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ShardError(
            f"repeat_fraction must be in [0, 1), got {repeat_fraction}"
        )
    templates = (
        "SELECT TOP {k} {attr} FROM {table}",
        "SELECT BOTTOM {k} {attr} FROM {table}",
        "SELECT MAX({attr}) FROM {table}",
        "SELECT MIN({attr}) FROM {table}",
        "SELECT SUM({attr}) FROM {table}",
        "SELECT COUNT({attr}) FROM {table}",
        "SELECT AVG({attr}) FROM {table}",
    )
    rng = random.Random(seed)
    statements: list[str] = []
    for _ in range(queries):
        if statements and rng.random() < repeat_fraction:
            statements.append(rng.choice(statements))
            continue
        template = rng.choice(templates)
        statements.append(
            template.format(
                k=rng.randint(1, max_k),
                attr=topology.attribute,
                table=rng.choice(topology.tables),
            )
        )
    return statements


__all__ = [
    "ShardTopology",
    "build_topology",
    "exact_config",
    "local_shards",
    "process_shards",
    "shard_spec",
    "sharded_federation",
    "single_federation",
    "topology_workload",
]
