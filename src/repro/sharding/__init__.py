"""Sharded federations: routing, fan-out, exact merge, tenant budgets.

The gateway-facing entry point is :class:`ShardedFederation`, which
duck-types the single-federation query surface over a set of shard
backends (:class:`LocalShard` in-process, :class:`ProcessShard` worker
subprocesses).  See docs/SHARDING.md for the routing and merge-exactness
story.
"""

from .errors import (
    ShardError,
    ShardUnavailable,
    TenantBudgetExceeded,
    TenantRateLimited,
)
from .federation import ShardedFederation
from .router import ALL_SHARDS, ShardRouter, TenantPolicy, shard_index
from .shards import LocalShard, ProcessShard
from .topology import (
    ShardTopology,
    build_topology,
    exact_config,
    local_shards,
    process_shards,
    shard_spec,
    sharded_federation,
    single_federation,
    topology_workload,
)

__all__ = [
    "ALL_SHARDS",
    "LocalShard",
    "ProcessShard",
    "ShardError",
    "ShardRouter",
    "ShardTopology",
    "ShardUnavailable",
    "ShardedFederation",
    "TenantBudgetExceeded",
    "TenantPolicy",
    "TenantRateLimited",
    "build_topology",
    "exact_config",
    "local_shards",
    "process_shards",
    "shard_spec",
    "shard_index",
    "sharded_federation",
    "single_federation",
    "topology_workload",
]
