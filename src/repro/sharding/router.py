"""Statement routing and per-tenant admission for sharded federations.

Routing is by *table*: the key space (table names) is hashed onto shards
with a stable SHA-256 placement, so every process — gateway, worker,
topology builder — independently agrees where a table lives without any
coordination service.  Tables registered as *partitioned* hold disjoint row
sets on every shard; statements over them fan out to all shards and merge
(:mod:`repro.sharding.federation`).

The router also owns the cross-shard tenant controls the ROADMAP's
scale-out item asks for: a per-tenant token bucket (requests/second across
*all* shards, not per shard) and a per-tenant LoP budget.  The budget feeds
the planner's feasibility filter: a ranking statement is planned with its
``max_lop`` objective tightened to the tenant's remaining allowance, so an
unaffordable statement is refused typed and up front —
:class:`~repro.sharding.errors.TenantBudgetExceeded` — before any shard
spends a protocol round on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..privacy.dp import PrivacyAccountant, SpendMeter
from ..service.scheduler import TokenBucket
from .errors import ShardError, TenantRateLimited


def shard_index(table: str, shard_count: int) -> int:
    """Stable placement of ``table`` on one of ``shard_count`` shards.

    SHA-256 over the table name, like every other derived identity in this
    codebase (federation seeds, trial seeds): collision-free in practice,
    identical across processes and Python versions — ``hash()`` is salted
    per interpreter and would scatter tables differently in every worker.
    """
    if shard_count < 1:
        raise ShardError(f"shard_count must be >= 1, got {shard_count}")
    digest = hashlib.sha256(table.encode()).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass(frozen=True)
class TenantPolicy:
    """Cross-shard allowances for one tenant (issuer).

    ``lop_budget`` caps the tenant's cumulative *expected* LoP across every
    ranking statement it executes (cache hits are free — nothing runs, no
    new exposure).  ``dp_epsilon_budget``/``dp_delta_budget`` cap the
    tenant's composed differential-privacy spend across its DP releases
    under the same rule — a cached re-serve of an existing release spends
    nothing; both budgets meter through the shared
    :class:`~repro.privacy.dp.SpendMeter` surface.  ``rate``/``burst``
    configure the tenant's token bucket; ``rate=None`` disables rate
    limiting for the tenant.
    """

    lop_budget: float | None = None
    rate: float | None = None
    burst: int = 8
    dp_epsilon_budget: float | None = None
    dp_delta_budget: float | None = None

    def __post_init__(self) -> None:
        if self.lop_budget is not None and self.lop_budget < 0:
            raise ShardError(f"lop_budget must be >= 0, got {self.lop_budget}")
        if self.rate is not None and self.rate <= 0:
            raise ShardError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ShardError(f"burst must be >= 1, got {self.burst}")
        if self.dp_epsilon_budget is not None and self.dp_epsilon_budget < 0:
            raise ShardError(
                f"dp_epsilon_budget must be >= 0, got {self.dp_epsilon_budget}"
            )
        if self.dp_delta_budget is not None and not 0.0 <= self.dp_delta_budget < 1.0:
            raise ShardError(
                f"dp_delta_budget must be in [0, 1), got {self.dp_delta_budget}"
            )


@dataclass
class TenantAccount:
    """Mutable per-tenant state: LoP meter, DP accountant, token bucket.

    LoP and DP spend through the same accounting surface
    (:class:`~repro.privacy.dp.SpendMeter`), which is what pins the shared
    "spent on a cache hit is free" rule: the sharded federation charges
    *both* only for outcomes whose ``cached`` flag is false.
    """

    policy: TenantPolicy
    lop: SpendMeter = field(default_factory=SpendMeter)
    bucket: TokenBucket | None = None
    queries: int = 0
    refusals: int = 0
    dp: PrivacyAccountant = field(default_factory=PrivacyAccountant)

    def __post_init__(self) -> None:
        self.bind_policy(self.policy)

    def bind_policy(self, policy: TenantPolicy) -> None:
        """Point the meters at ``policy``'s budgets, keeping spent history."""
        self.policy = policy
        self.lop.budget = policy.lop_budget
        self.dp.epsilon.budget = policy.dp_epsilon_budget
        self.dp.delta.budget = policy.dp_delta_budget

    @property
    def lop_spent(self) -> float:
        return self.lop.spent

    def remaining_lop(self) -> float | None:
        if self.policy.lop_budget is None:
            return None
        return self.lop.remaining()


#: Sentinel routing target: the statement fans out to every shard.
ALL_SHARDS = -1


class ShardRouter:
    """Table-to-shard placement plus per-tenant admission state.

    The router is deliberately free of execution concerns — it answers
    "which shard(s)?" and "may this tenant proceed right now?" and counts
    what it decided; :class:`~repro.sharding.federation.ShardedFederation`
    drives it.
    """

    def __init__(
        self,
        shard_count: int,
        *,
        partitioned: "tuple[str, ...] | list[str]" = (),
    ) -> None:
        if shard_count < 1:
            raise ShardError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count
        self._partitioned = frozenset(partitioned)
        self._tenants: dict[str, TenantAccount] = {}
        #: Routing decision counters, keyed by shard index (ALL_SHARDS for
        #: fan-outs); exported through the gateway's metrics registry.
        self.routed: dict[int, int] = {}

    # -- placement ----------------------------------------------------------

    def declare_partitioned(self, table: str) -> None:
        """Mark ``table`` as row-partitioned across every shard."""
        self._partitioned = self._partitioned | {table}

    def is_partitioned(self, table: str) -> bool:
        return table in self._partitioned

    @property
    def partitioned_tables(self) -> tuple[str, ...]:
        return tuple(sorted(self._partitioned))

    def route(self, table: str) -> int:
        """The shard serving ``table``: an index, or :data:`ALL_SHARDS`."""
        target = (
            ALL_SHARDS
            if table in self._partitioned
            else shard_index(table, self.shard_count)
        )
        self.routed[target] = self.routed.get(target, 0) + 1
        return target

    # -- tenants ------------------------------------------------------------

    def set_tenant(self, issuer: str, policy: TenantPolicy) -> None:
        """Install (or replace) one tenant's allowances.

        Replacing a policy keeps the tenant's spent-LoP history: budgets are
        session-cumulative, exactly like the federation's
        :class:`~repro.privacy.accounting.ExposureLedger`.
        """
        account = self._tenants.get(issuer)
        if account is None:
            self._tenants[issuer] = TenantAccount(policy=policy)
        else:
            account.bind_policy(policy)
            account.bucket = None  # rebuilt lazily against the new rate

    def tenant(self, issuer: str) -> TenantAccount | None:
        return self._tenants.get(issuer)

    def admit(self, issuer: str, now: float) -> None:
        """Charge one request against the tenant's token bucket.

        Tenants without a policy (or without a rate) are unrestricted — the
        gateway's own per-issuer bucket still applies above this layer.
        Raises :class:`TenantRateLimited` when the bucket is empty.
        """
        account = self._tenants.get(issuer)
        if account is None:
            return
        account.queries += 1
        policy = account.policy
        if policy.rate is None:
            return
        if account.bucket is None:
            account.bucket = TokenBucket(
                rate=policy.rate, burst=float(policy.burst), updated=now
            )
        if not account.bucket.try_take(now):
            account.refusals += 1
            raise TenantRateLimited(
                f"tenant {issuer!r} exceeded {policy.rate}/s "
                f"(burst {policy.burst}) across shards"
            )

    def remaining_lop(self, issuer: str) -> float | None:
        """The tenant's unspent LoP budget; ``None`` means unbudgeted."""
        account = self._tenants.get(issuer)
        if account is None:
            return None
        return account.remaining_lop()

    def charge_lop(self, issuer: str, expected_lop: float) -> None:
        """Record one executed ranking statement's expected LoP.

        Like :meth:`charge_dp`, budgeted and unbudgeted accounts both
        record — the :class:`~repro.privacy.dp.SpendMeter` treats
        ``budget=None`` as unmetered — so the snapshot shows every tenant's
        cumulative spend and a budget installed later via :meth:`set_tenant`
        binds against the history already accrued.
        """
        account = self._tenants.get(issuer)
        if account is not None:
            account.lop.charge(expected_lop)

    # -- differential privacy -----------------------------------------------

    def dp_headroom(
        self,
        issuer: str,
        epsilon: float,
        delta: float,
        *,
        pending_epsilon: float = 0.0,
        pending_delta: float = 0.0,
    ) -> str | None:
        """Why a tenant DP charge would refuse, or ``None`` when it fits."""
        account = self._tenants.get(issuer)
        if account is None:
            return None
        reason = account.dp.headroom_reason(
            epsilon,
            delta,
            pending_epsilon=pending_epsilon,
            pending_delta=pending_delta,
        )
        if reason is not None:
            return f"tenant {issuer!r} {reason}"
        return None

    def charge_dp(
        self, issuer: str, epsilon: float, delta: float, *, statement: str
    ) -> None:
        """Record one fresh DP release against the tenant's accountant.

        Tenants without an account spend into the void (there is nothing to
        meter); budgeted and unbudgeted accounts both record, so the
        snapshot shows every tenant's composed spend.
        """
        account = self._tenants.get(issuer)
        if account is not None:
            account.dp.charge(epsilon, delta, statement=statement)

    def note_refusal(self, issuer: str) -> None:
        account = self._tenants.get(issuer)
        if account is not None:
            account.refusals += 1

    def tenant_snapshot(self) -> dict[str, dict[str, float | int | None]]:
        """Per-tenant accounting for metrics/exports (deterministic order)."""
        return {
            issuer: {
                "queries": account.queries,
                "refusals": account.refusals,
                "lop_spent": round(account.lop_spent, 9),
                "lop_budget": account.policy.lop_budget,
                "dp_epsilon_spent": round(account.dp.epsilon.spent, 9),
                "dp_epsilon_budget": account.policy.dp_epsilon_budget,
                "dp_delta_spent": round(account.dp.delta.spent, 12),
                "dp_delta_budget": account.policy.dp_delta_budget,
            }
            for issuer, account in sorted(self._tenants.items())
        }


__all__ = [
    "ALL_SHARDS",
    "ShardRouter",
    "TenantAccount",
    "TenantPolicy",
    "shard_index",
]
