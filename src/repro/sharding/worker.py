"""Standalone shard worker: one federation behind a TCP request loop.

``python -m repro.sharding.worker`` reads a JSON shard spec on stdin,
builds a :class:`~repro.federation.coordinator.Federation` over the spec's
synthetic parties, binds an OS-assigned localhost port, announces
``PORT <n>`` on stdout, and then serves framed-JSON requests
(:mod:`repro.sharding.protocol`) until told to shut down.  This is the
process-per-shard deployment the ROADMAP's scale-out item asks for: each
shard is its own OS process speaking the deploy layer's wire framing, so
the chaos sweep can SIGKILL a *real* process and the gateway must degrade
through :class:`~repro.sharding.errors.ShardUnavailable` refusals.

Spec format::

    {
      "shard": 0,
      "seed": 2025,
      "domain": {"low": 1, "high": 10000, "integral": true},
      "attribute": "value",
      "schedule": {"p0": 1.0, "d": 0.5},      # optional; paper defaults
      "rounds": null,                           # optional explicit rounds
      "protocol": "probabilistic",             # optional
      "privacy_budget": null,                   # optional per-party LoP cap
      "parties": [
        {"owner": "org00", "tables": {"t00": [3.0, 1.0], "hot": []}}
      ],
      "types": {"t00": "REAL", "hot": "INTEGER"}
    }

Every table in ``types`` is created for every party (empty where the party
holds no rows) so the federation-wide schema precondition holds by
construction.
"""

from __future__ import annotations

import json
import socket
import sys

from ..core.driver import RunConfig
from ..core.params import ProtocolParams
from ..core.schedule import ExponentialSchedule
from ..database.database import PrivateDatabase, database_from_values
from ..database.query import Domain
from ..database.schema import Schema
from ..federation.coordinator import Federation
from .protocol import encode_outcome, encode_settled, recv_json, send_json


def build_federation(spec: dict) -> Federation:
    """Materialize the spec's federation (deterministic per spec)."""
    domain_spec = spec.get("domain", {})
    domain = Domain(
        low=float(domain_spec.get("low", 1)),
        high=float(domain_spec.get("high", 10_000)),
        integral=bool(domain_spec.get("integral", True)),
    )
    schedule_spec = spec.get("schedule") or {}
    params = ProtocolParams(
        schedule=ExponentialSchedule(
            p0=float(schedule_spec.get("p0", 1.0)),
            d=float(schedule_spec.get("d", 0.5)),
        ),
        rounds=spec.get("rounds"),
    )
    config = RunConfig(
        protocol=str(spec.get("protocol", "probabilistic")), params=params
    )
    federation = Federation(
        domain=domain,
        config=config,
        seed=int(spec.get("seed", 0)),
        privacy_budget=spec.get("privacy_budget"),
    )
    attribute = str(spec.get("attribute", "value"))
    types = {str(t): str(ctype) for t, ctype in spec.get("types", {}).items()}
    for party in spec.get("parties", ()):
        db = PrivateDatabase(str(party["owner"]))
        tables = {str(t): values for t, values in party.get("tables", {}).items()}
        for table_name in sorted(set(types) | set(tables)):
            ctype = types.get(table_name, "REAL")
            table = db.create_table(table_name, Schema.of((attribute, ctype)))
            values = tables.get(table_name, ())
            if values:
                cast = int if ctype == "INTEGER" else float
                table.insert_many({attribute: cast(v)} for v in values)
        federation.register(db)
    return federation


def _handle(federation: Federation, request: dict) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"ok": True}
    if op == "members":
        return {"ok": True, "members": list(federation.members)}
    if op == "cache_stats":
        cache = federation.cache
        return {"ok": True, "hits": cache.hits, "misses": cache.misses}
    if op == "execute_many_settled":
        settled = federation.execute_many_settled(
            [str(s) for s in request.get("statements", ())],
            issuer=str(request.get("issuer", "anonymous")),
        )
        return {"ok": True, "results": encode_settled(settled)}
    if op == "try_cached":
        outcome = federation.try_cached(
            str(request.get("statement", "")),
            issuer=str(request.get("issuer", "anonymous")),
        )
        return {
            "ok": True,
            "outcome": None if outcome is None else encode_outcome(outcome),
        }
    if op == "register_values":
        federation.register(
            database_from_values(
                str(request["owner"]),
                [float(v) for v in request.get("values", ())],
                table=str(request.get("table", "data")),
                attribute=str(request.get("attribute", "value")),
            )
        )
        return {"ok": True}
    if op == "deregister":
        federation.deregister(str(request["owner"]))
        return {"ok": True}
    if op == "shutdown":
        return {"ok": True, "bye": True}
    return {"ok": False, "message": f"unknown op {op!r}"}


def serve(federation: Federation, listener: socket.socket) -> None:
    """Accept loop: one connection at a time, requests served in order.

    A shard's federation is single-threaded state (seed draws, cache,
    ledger), so serial request handling is the correctness-preserving
    choice; concurrency across shards comes from running many workers.
    """
    while True:
        conn, _addr = listener.accept()
        with conn:
            while True:
                try:
                    request = recv_json(conn)
                except Exception:
                    break  # client gone; await the next connection
                try:
                    response = _handle(federation, request)
                except Exception as exc:  # noqa: BLE001 — reported, not fatal
                    response = {
                        "ok": False,
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                try:
                    send_json(conn, response)
                except OSError:
                    break
                if response.get("bye"):
                    return


def main() -> int:
    spec = json.loads(sys.stdin.read())
    federation = build_federation(spec)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", int(spec.get("port", 0))))
    listener.listen(8)
    port = listener.getsockname()[1]
    print(f"PORT {port}", flush=True)
    try:
        serve(federation, listener)
    finally:
        listener.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
