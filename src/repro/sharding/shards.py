"""Shard backends: in-process federations and worker processes.

A *shard* is one complete :class:`~repro.federation.coordinator.Federation`
serving a slice of the table space.  Two interchangeable backends implement
the same small surface (``members``, ``execute_many_settled``,
``try_cached``, ``cache_stats``, ``close``):

:class:`LocalShard`
    Wraps a federation in this process.  Deterministic and traceable — the
    property tests' substrate, and the default for ``serve --shards``.

:class:`ProcessShard`
    A client to a :mod:`repro.sharding.worker` subprocess speaking framed
    JSON over TCP (the deploy layer's wire framing).  Every socket
    operation runs under a timeout and every transport failure — refused
    connection, timeout, reset, truncated frame — surfaces as a typed
    :class:`~repro.sharding.errors.ShardUnavailable`, never a hang: a
    SIGKILLed worker degrades exactly the statements routed to it.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
from collections.abc import Sequence
from pathlib import Path

from ..deploy.wire import WireError
from ..federation.coordinator import Federation, QueryOutcome, QueryRefused
from ..observability.trace import TraceContext
from ..planner.plan import Plan
from .errors import ShardError, ShardUnavailable
from .protocol import decode_outcome, decode_settled, recv_json, send_json


class LocalShard:
    """One federation living in the gateway's own process."""

    #: Local shards share the caller's tracer and interpreter state, so the
    #: sharded federation dispatches to them sequentially (deterministic
    #: traces); process shards are safe to fan out on threads.
    concurrent = False

    def __init__(self, federation: Federation, *, index: int = 0) -> None:
        self.federation = federation
        self.index = index

    def members(self) -> tuple[str, ...]:
        return self.federation.members

    def execute_many_settled(
        self,
        statements: Sequence[str],
        *,
        issuer: str = "anonymous",
        traces: "Sequence[TraceContext | None] | None" = None,
        plans: "Sequence[Plan | None] | None" = None,
    ) -> "list[QueryOutcome | QueryRefused]":
        return self.federation.execute_many_settled(
            statements, issuer=issuer, traces=traces, plans=plans
        )

    def try_cached(
        self, statement: str, *, issuer: str = "anonymous"
    ) -> QueryOutcome | None:
        return self.federation.try_cached(statement, issuer=issuer)

    def cache_stats(self) -> tuple[int, int]:
        cache = self.federation.cache
        return cache.hits, cache.misses

    def register(self, database) -> None:
        self.federation.register(database)

    def deregister(self, owner: str) -> None:
        self.federation.deregister(owner)

    def close(self) -> None:
        return None


class ProcessShard:
    """Client to one shard worker process over framed JSON / TCP."""

    concurrent = True

    def __init__(
        self,
        host: str,
        port: int,
        *,
        index: int = 0,
        timeout: float = 10.0,
        process: "subprocess.Popen | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.index = index
        self.timeout = timeout
        self.process = process
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._members: tuple[str, ...] | None = None

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def spawn(
        cls,
        spec: dict,
        *,
        index: int = 0,
        timeout: float = 10.0,
        boot_timeout: float = 30.0,
    ) -> "ProcessShard":
        """Launch a :mod:`repro.sharding.worker` subprocess for ``spec``.

        The worker receives its federation spec on stdin, binds an
        OS-assigned port on localhost, and announces ``PORT <n>`` on stdout
        once it is accepting — the one synchronization point, so spawning
        never races the first request.
        """
        src_dir = str(Path(__file__).resolve().parent.parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.sharding.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        assert process.stdin is not None and process.stdout is not None
        process.stdin.write(json.dumps(spec))
        process.stdin.close()
        # The worker prints exactly one line before serving; a worker that
        # dies instead (bad spec, import failure) closes stdout, and the
        # readline returns "" — surfaced with its stderr for diagnosis.
        timer = threading.Timer(boot_timeout, process.kill)
        timer.start()
        try:
            line = process.stdout.readline()
        finally:
            timer.cancel()
        if not line.startswith("PORT "):
            stderr = process.stderr.read() if process.stderr else ""
            process.kill()
            raise ShardError(
                f"shard worker failed to start (got {line!r}): {stderr.strip()}"
            )
        return cls(
            "127.0.0.1",
            int(line.split()[1]),
            index=index,
            timeout=timeout,
            process=process,
        )

    def close(self) -> None:
        """Graceful shutdown: ask the worker to exit, then reap it."""
        try:
            self._request({"op": "shutdown"})
        except ShardUnavailable:
            pass
        self._drop_socket()
        if self.process is not None:
            try:
                self.process.wait(timeout=self.timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()

    def kill(self) -> None:
        """SIGKILL the worker process (the chaos sweep's failure mode)."""
        if self.process is not None:
            try:
                self.process.send_signal(signal.SIGKILL)
            except ProcessLookupError:
                pass
            self.process.wait()
        self._drop_socket()

    # -- wire ---------------------------------------------------------------

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.settimeout(self.timeout)
        return sock

    def _request(self, payload: dict) -> dict:
        """One request/response exchange; typed failure on any wire error.

        The socket is persistent across requests; a stale socket (worker
        restarted between calls) gets exactly one reconnect attempt, but a
        failure *mid-exchange* does not retry — the worker may have half-
        executed the batch, and replaying it would double protocol runs and
        exposure.
        """
        with self._lock:
            fresh = self._sock is None
            try:
                if self._sock is None:
                    self._sock = self._connect()
                send_json(self._sock, payload)
                response = recv_json(self._sock)
            except (OSError, WireError, ValueError) as exc:
                self._drop_socket()
                if fresh:
                    raise ShardUnavailable(
                        f"shard {self.index} at {self.host}:{self.port} "
                        f"unreachable: {exc}",
                        shard=self.index,
                    ) from exc
                raise ShardUnavailable(
                    f"shard {self.index} at {self.host}:{self.port} failed "
                    f"mid-request: {exc}",
                    shard=self.index,
                ) from exc
        if not response.get("ok", False):
            raise ShardError(
                f"shard {self.index} rejected {payload.get('op')!r}: "
                f"{response.get('message')}"
            )
        return response

    # -- shard surface -------------------------------------------------------

    def members(self) -> tuple[str, ...]:
        if self._members is None:
            response = self._request({"op": "members"})
            self._members = tuple(str(m) for m in response["members"])
        return self._members

    def execute_many_settled(
        self,
        statements: Sequence[str],
        *,
        issuer: str = "anonymous",
        traces: "Sequence[TraceContext | None] | None" = None,
        plans: "Sequence[Plan | None] | None" = None,
    ) -> "list[QueryOutcome | QueryRefused]":
        # Traces and plan objects stay in the gateway process: spans for
        # remote work are recorded by the sharded federation around this
        # call, and workers re-plan SLO'd statements themselves.
        del traces, plans
        response = self._request(
            {
                "op": "execute_many_settled",
                "statements": list(statements),
                "issuer": issuer,
            }
        )
        return decode_settled(response["results"])

    def try_cached(
        self, statement: str, *, issuer: str = "anonymous"
    ) -> QueryOutcome | None:
        response = self._request(
            {"op": "try_cached", "statement": statement, "issuer": issuer}
        )
        payload = response.get("outcome")
        return None if payload is None else decode_outcome(payload)

    def cache_stats(self) -> tuple[int, int]:
        response = self._request({"op": "cache_stats"})
        return int(response["hits"]), int(response["misses"])

    def register(self, database) -> None:
        raise ShardError(
            "registering a live database object over the wire is not "
            "supported; use register_values for synthetic parties"
        )

    def register_values(
        self, owner: str, table: str, attribute: str, values: list[float]
    ) -> None:
        """Enroll a synthetic single-table party in the worker's federation."""
        self._request(
            {
                "op": "register_values",
                "owner": owner,
                "table": table,
                "attribute": attribute,
                "values": list(values),
            }
        )
        self._members = None

    def deregister(self, owner: str) -> None:
        self._request({"op": "deregister", "owner": owner})
        self._members = None


__all__ = ["LocalShard", "ProcessShard"]
