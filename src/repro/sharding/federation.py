"""A federation of federations: routing, concurrent fan-out, exact merge.

``ShardedFederation`` presents the same query surface the gateway already
drives (``execute_many_settled``, ``try_cached``, ``members``, ``cache``,
``planner``) over a set of shard backends, so ``QueryService`` serves a
sharded deployment without a single special case: statements are routed to
the shard owning their table, statements over *partitioned* tables fan out
to every shard, and the partial answers merge exactly.

Merge exactness (the docs/SHARDING.md argument, pinned by the property
tests): the protocols' ranking answers are order-preserving —
``topk(A ∪ B) == topk(topk(A) ∪ topk(B))`` for any partition of the rows —
so concatenating per-shard top-k vectors and keeping the k best reproduces
the unsharded vector.  MAX/MIN are the k=1 case; COUNT is a sum of exact
integers; SUM/AVG combine per-shard secure-sum totals additively.  On
workloads where the protocol itself is exact (``p0=0`` schedules, the naive
protocol, integer-valued aggregates) the sharded result is therefore
*bit-identical* to a single federation holding all the data.

The router's per-tenant controls run here, before any shard is touched: a
tenant's cross-shard token bucket sheds with
:class:`~repro.sharding.errors.TenantRateLimited`, and ranking statements
under a tenant LoP budget are planned with ``max_lop`` tightened to the
remaining allowance — the planner's feasibility filter refuses what the
tenant can no longer afford (:class:`TenantBudgetExceeded`) without
spending a protocol round.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from ..database.query import Domain
from ..federation.coordinator import FederationError, QueryOutcome, QueryRefused
from ..federation.sql import SqlError
from ..observability.metrics import MetricsRegistry
from ..observability.trace import TraceContext
from ..planner.errors import PlanInfeasible
from ..planner.plan import Plan
from ..planner.planner import QueryPlanner
from ..planner.spec import QuerySpec, SloError, parse_spec
from ..privacy.dp import BudgetExhausted, DpError, DpGate, DpPolicy, build_request
from .errors import ShardError, ShardUnavailable, TenantBudgetExceeded
from .router import ALL_SHARDS, ShardRouter, TenantPolicy


class _ShardedCacheStats:
    """Read-only aggregate of every shard's result-cache statistics.

    Duck-types the ``hits``/``misses``/``hit_rate`` surface the gateway's
    metrics snapshot reads.  An unreachable shard contributes its last
    known counts (initially zero) instead of failing a metrics read.
    """

    def __init__(self, owner: "ShardedFederation") -> None:
        self._owner = owner
        self._last: dict[int, tuple[int, int]] = {}

    def _totals(self) -> tuple[int, int]:
        hits = misses = 0
        for index, shard in enumerate(self._owner.shards):
            try:
                stats = shard.cache_stats()
                self._last[index] = stats
            except ShardUnavailable:
                stats = self._last.get(index, (0, 0))
            hits += stats[0]
            misses += stats[1]
        return hits, misses

    @property
    def hits(self) -> int:
        return self._totals()[0]

    @property
    def misses(self) -> int:
        return self._totals()[1]

    @property
    def hit_rate(self) -> float:
        hits, misses = self._totals()
        total = hits + misses
        return hits / total if total else 0.0


class ShardedFederation:
    """Route, fan out, and merge federated statements across shards.

    Parameters
    ----------
    shards:
        The shard backends, in placement order (index ``i`` serves the
        tables :func:`~repro.sharding.router.shard_index` maps to ``i``).
        Mixing :class:`~repro.sharding.shards.LocalShard` and
        :class:`~repro.sharding.shards.ProcessShard` is allowed.
    router:
        Placement + tenant admission; defaults to a fresh
        :class:`~repro.sharding.router.ShardRouter` over ``len(shards)``
        with no partitioned tables and no tenant policies.
    planner:
        Used for the tenant LoP feasibility filter; defaults to a planner
        over the default run configuration (matching the workers').
    clock:
        Time source for tenant token buckets (a ``() -> float`` callable).
        Defaults to ``time.monotonic``; deterministic deployments pass
        their service clock's ``now``.
    dp:
        Differential-privacy policy for the federation-wide release gate
        (see :mod:`repro.privacy.dp`).  The gate lives *here*, above the
        shards, so a DP statement's budget is composed once regardless of
        how its inner statements scatter — which is what keeps the
        accountant's ledger byte-identical to a flat federation serving
        the same workload.
    domain:
        Default public :class:`~repro.database.query.Domain` used to
        calibrate DP mechanisms when no per-attribute domain was
        registered via :meth:`register_domain`.  ``None`` means DP
        statements refuse until a domain is declared.
    """

    def __init__(
        self,
        shards: Sequence,
        *,
        router: "ShardRouter | None" = None,
        planner: "QueryPlanner | None" = None,
        clock: "Callable[[], float] | None" = None,
        dp: "DpPolicy | None" = None,
        domain: "Domain | None" = None,
    ) -> None:
        if not shards:
            raise ShardError("at least one shard is required")
        self.shards = list(shards)
        self.router = (
            router if router is not None else ShardRouter(len(self.shards))
        )
        if self.router.shard_count != len(self.shards):
            raise ShardError(
                f"router places tables on {self.router.shard_count} shards "
                f"but {len(self.shards)} were supplied"
            )
        self.planner = planner if planner is not None else QueryPlanner()
        self._clock = clock if clock is not None else time.monotonic
        self.cache = _ShardedCacheStats(self)
        self._members: tuple[str, ...] | None = None
        #: Per-shard serving counters (statements dispatched, refusals,
        #: unavailable refusals, simulated seconds), for metrics export.
        self.shard_queries: dict[int, int] = {}
        self.shard_refusals: dict[int, int] = {}
        self.shard_unavailable: dict[int, int] = {}
        self.fanout_statements = 0
        self.domain = domain
        self._attribute_domains: dict[tuple[str, str], Domain] = {}
        self.dp_gate = DpGate(dp)
        #: Fresh-release epsilon attributed to the shard whose data backed
        #: it ("all" for fan-outs over partitioned tables).
        self.dp_spend_by_shard: dict[str, float] = {}

    # -- domains -------------------------------------------------------------

    def register_domain(self, table: str, attribute: str, domain: Domain) -> None:
        """Declare the public domain of one attribute (DP calibration input)."""
        self._attribute_domains[(table, attribute)] = domain

    def domain_for(self, table: str, attribute: str) -> "Domain | None":
        return self._attribute_domains.get((table, attribute), self.domain)

    # -- membership ----------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        if self._members is None:
            seen: set[str] = set()
            for shard in self.shards:
                seen.update(shard.members())
            self._members = tuple(sorted(seen))
        return self._members

    def register(self, database, *, shard: int) -> None:
        """Enroll one party's database into shard ``shard``.

        Membership is per shard: the shard's epoch bumps and its cached
        answers (including every fan-out partial it contributed) are
        invalidated; other shards' caches are untouched.
        """
        self.shards[self._shard_of(shard)].register(database)
        self._members = None

    def deregister(self, owner: str, *, shard: int) -> None:
        self.shards[self._shard_of(shard)].deregister(owner)
        self._members = None

    def _shard_of(self, index: int) -> int:
        if not 0 <= index < len(self.shards):
            raise ShardError(
                f"no such shard {index}; have {len(self.shards)}"
            )
        return index

    def set_tenant(self, issuer: str, policy: TenantPolicy) -> None:
        """Install one tenant's cross-shard allowances on the router."""
        self.router.set_tenant(issuer, policy)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    # -- query surface -------------------------------------------------------

    def execute(
        self,
        statement_text: str,
        *,
        issuer: str = "anonymous",
        use_cache: bool = False,
    ) -> QueryOutcome:
        del use_cache  # repeats always flow through the shard caches
        outcome = self.execute_many([statement_text], issuer=issuer)[0]
        return outcome

    def execute_many(
        self,
        statements: Iterable[str],
        *,
        issuer: str = "anonymous",
        traces: "Sequence[TraceContext | None] | None" = None,
        plans: "Sequence[Plan | None] | None" = None,
    ) -> list[QueryOutcome]:
        settled = self.execute_many_settled(
            statements, issuer=issuer, traces=traces, plans=plans
        )
        outcomes: list[QueryOutcome] = []
        for result in settled:
            if isinstance(result, QueryRefused):
                raise result.error
            outcomes.append(result)
        return outcomes

    def try_cached(
        self, statement_text: str, *, issuer: str = "anonymous"
    ) -> QueryOutcome | None:
        """Serve a statement from the shard caches, or ``None`` on a miss.

        Routed statements consult the owning shard's cache; fan-out
        statements are a hit only when *every* shard holds the partial —
        which is exactly what makes cross-shard epoch invalidation work:
        one shard's membership/data change misses there and forces a fresh
        fan-out.  An unreachable shard reads as a miss, so the admission
        fast path never throws; the statement is refused typed when it
        actually executes.
        """
        try:
            spec = parse_spec(statement_text)
        except (SqlError, SloError):
            return None
        if spec.slo.has_dp:
            return self._try_cached_dp(spec, issuer)
        return self._try_cached_plain(spec, statement_text, issuer)

    def _try_cached_plain(
        self, spec: QuerySpec, statement_text: str, issuer: str
    ) -> QueryOutcome | None:
        statement = spec.statement
        target = self.router.route(statement.table)
        try:
            if target != ALL_SHARDS:
                return self.shards[target].try_cached(
                    statement_text, issuer=issuer
                )
            partials: list[list[QueryOutcome]] = []
            for shard in self.shards:
                hits = []
                for text in _fanout_texts(statement):
                    hit = shard.try_cached(text, issuer=issuer)
                    if hit is None:
                        return None
                    hits.append(hit)
                partials.append(hits)
        except ShardUnavailable:
            return None
        return _merge_fanout(statement, statement_text, partials)

    def _try_cached_dp(self, spec: QuerySpec, issuer: str) -> QueryOutcome | None:
        """DP admission fast path: free re-serve of an existing release.

        Mirrors the flat federation: serves only when the release key has
        released before, *every* inner answer is still cache-valid on its
        shard(s), and those answers are the very ones the release perturbed
        (a shard cache re-populated over mutated data must not replay old
        noise); the re-served values are byte-identical to that release and
        spend zero budget (federation and tenant both).
        """
        statement = spec.statement
        try:
            request = build_request(
                spec, self.domain_for(statement.table, statement.attribute)
            )
        except DpError:
            return None  # the batch path raises the typed refusal
        assert request is not None
        if not self.dp_gate.reusable(request):
            return None
        answers = []
        for inner_text in request.inner_texts:
            try:
                inner_spec = parse_spec(inner_text)
            except (SqlError, SloError):  # pragma: no cover - inner is well-formed
                return None
            hit = self._try_cached_plain(inner_spec, inner_text, issuer)
            if hit is None:
                return None
            answers.append(hit)
        inner_values = [a.values for a in answers]
        if not self.dp_gate.replayable(request, inner_values):
            return None  # the data changed under the release; must re-charge
        values, _charged = self.dp_gate.finalize(
            request, inner_values, inner_cached=True
        )
        return QueryOutcome(
            statement=statement.text,
            values=values,
            protocol=f"{answers[0].protocol}+dp",
            rounds=0,
            messages=0,
            trace=None,
            cached=True,
        )

    def dp_admission_check(
        self, spec: QuerySpec, *, issuer: str = "anonymous"
    ) -> None:
        """Gateway hook: refuse a DP statement that can neither reuse nor pay.

        Checks the federation-wide accountant *and* the tenant's DP meters;
        raises :class:`~repro.privacy.dp.BudgetExhausted` (or
        :class:`~repro.privacy.dp.DpError` for unresolvable requests)
        before the statement consumes a queue slot.
        """
        if not spec.slo.has_dp:
            return
        statement = spec.statement
        request = build_request(
            spec, self.domain_for(statement.table, statement.attribute)
        )
        assert request is not None
        if self.dp_gate.reusable(request):
            return
        reason = self.dp_gate.accountant.headroom_reason(
            request.epsilon, request.delta
        )
        if reason is not None:
            self.dp_gate.accountant.note_refusal()
            raise BudgetExhausted(reason, statement=spec.text)
        tenant_reason = self.router.dp_headroom(
            issuer, request.epsilon, request.delta
        )
        if tenant_reason is not None:
            self.router.note_refusal(issuer)
            raise BudgetExhausted(tenant_reason, statement=spec.text)

    def execute_many_settled(
        self,
        statements: Iterable[str],
        *,
        issuer: str = "anonymous",
        traces: "Sequence[TraceContext | None] | None" = None,
        plans: "Sequence[Plan | None] | None" = None,
    ) -> "list[QueryOutcome | QueryRefused]":
        """Serve a batch across shards; every refusal settles per statement.

        Per statement, in order: parse → tenant token bucket → tenant LoP
        feasibility → route.  Routed statements dispatch to their shard as
        one sub-batch (preserving statement order, so each shard's seed
        draws and dedupe behave exactly like an unsharded batch of that
        sub-stream); fan-out statements dispatch to every shard and merge.
        A shard that fails — unreachable process, poisoned batch — refuses
        exactly the statements routed to it, typed, while the rest of the
        batch is served normally.
        """
        texts = list(statements)
        if not texts:
            return []
        if traces is not None and len(traces) != len(texts):
            raise FederationError(
                f"got {len(texts)} statements but {len(traces)} trace contexts"
            )
        if plans is not None and len(plans) != len(texts):
            raise FederationError(
                f"got {len(texts)} statements but {len(plans)} plans"
            )
        results: "list[QueryOutcome | QueryRefused | None]" = [None] * len(texts)
        #: shard index -> (statement positions, texts, traces, plans)
        routed: dict[int, list[tuple[int, str]]] = {}
        #: fan-out bookkeeping: position -> parsed statement
        fanouts: dict[int, QuerySpec] = {}
        pending_lop: dict[int, float] = {}
        #: DP expansion: original position -> (request, inner synthetic
        #: positions, routing target, bare statement text).  Inner texts
        #: occupy synthetic positions past ``len(texts)`` so they ride the
        #: ordinary routed/fan-out dispatch untouched.
        dp_slots: dict[int, tuple] = {}
        extra_texts: list[str] = []
        dp_pending = self.dp_gate.new_pending()
        tenant_pending = {"epsilon": 0.0, "delta": 0.0}
        now = self._clock()

        for position, text in enumerate(texts):
            try:
                spec = parse_spec(text)
            except (SqlError, SloError) as exc:
                results[position] = QueryRefused(statement=text, error=exc)
                continue
            statement = spec.statement
            try:
                self.router.admit(issuer, now)
            except ShardError as exc:
                results[position] = QueryRefused(statement=text, error=exc)
                continue
            target = self.router.route(statement.table)
            parties = self._parties_for(target)
            try:
                charge = self._tenant_feasibility(spec, issuer, parties)
            except (TenantBudgetExceeded, PlanInfeasible) as exc:
                self.router.note_refusal(issuer)
                results[position] = QueryRefused(statement=text, error=exc)
                continue
            if charge is not None:
                pending_lop[position] = charge
            self._trace_route(traces, position, target, statement.table)
            if spec.slo.has_dp:
                self._admit_dp(
                    position,
                    spec,
                    text,
                    issuer,
                    target,
                    results,
                    routed,
                    fanouts,
                    dp_slots,
                    extra_texts,
                    dp_pending,
                    tenant_pending,
                    base=len(texts),
                )
                continue
            if target == ALL_SHARDS:
                fanouts[position] = spec
                self.fanout_statements += 1
            else:
                routed.setdefault(target, []).append((position, text))

        texts_ext: list[str] = texts
        traces_ext: "Sequence[TraceContext | None] | None" = traces
        plans_ext: "Sequence[Plan | None] | None" = plans
        if dp_slots:
            results.extend([None] * len(extra_texts))
            texts_ext = texts + extra_texts
            if traces is not None:
                traces_ext = list(traces) + [None] * len(extra_texts)
            if plans is not None:
                plans_ext = list(plans) + [None] * len(extra_texts)
            for position, (request, inner_positions, _target, _bare) in dp_slots.items():
                # The original statement's trace follows its first inner
                # form; a pre-resolved plan transfers only when the inner
                # form is the statement it was planned for.
                if traces is not None:
                    traces_ext[position] = None  # type: ignore[index]
                    traces_ext[inner_positions[0]] = traces[position]  # type: ignore[index]
                if plans is not None and len(inner_positions) == 1:
                    plans_ext[inner_positions[0]] = plans[position]  # type: ignore[index]

        self._dispatch_routed(routed, results, texts_ext, issuer, traces_ext, plans_ext)
        self._dispatch_fanouts(fanouts, results, texts_ext, issuer)
        #: DP positions whose inner statements actually ran a protocol
        #: (LoP exposure happened); cached inner answers expose nothing.
        dp_executed: dict[int, bool] = {}
        if dp_slots:
            self._assemble_dp(dp_slots, results, texts, issuer, dp_executed)

        # Tenant LoP charges land only for statements that actually ran a
        # protocol: cache hits and refusals spend nothing.  For DP
        # statements that is decided by the *inner* executions — a fresh
        # noisy release over still-cached inner answers runs no protocol.
        for position, charge in pending_lop.items():
            outcome = results[position]
            if not isinstance(outcome, QueryOutcome):
                continue
            if position in dp_slots:
                if dp_executed.get(position, False):
                    self.router.charge_lop(issuer, charge)
            elif not outcome.cached:
                self.router.charge_lop(issuer, charge)
        return results[: len(texts)]  # type: ignore[return-value]  # slots filled

    # -- tenant admission ----------------------------------------------------

    def _parties_for(self, target: int) -> int:
        try:
            if target == ALL_SHARDS:
                return max(len(shard.members()) for shard in self.shards)
            return len(self.shards[target].members())
        except ShardUnavailable:
            return len(self.members) or 3

    def _tenant_feasibility(
        self, spec: QuerySpec, issuer: str, parties: int
    ) -> float | None:
        """Plan under the tenant's remaining LoP budget; return the charge.

        Returns the expected-LoP charge to record if the statement
        executes, or ``None`` when the tenant is unregistered or the
        statement is additive (secure sums are charged nothing, exactly
        like the federation's own ledger).  A registered tenant *without*
        an LoP budget still gets a charge — its meter is unmetered but
        records, so the snapshot shows real spend and a budget installed
        later binds against history — just with no tightening and no
        budget refusal.  Raises :class:`TenantBudgetExceeded` when only
        the budget tightening made the plan infeasible, and lets a
        genuinely unsatisfiable SLO propagate as :class:`PlanInfeasible`.
        """
        if not spec.statement.is_ranking:
            return None
        remaining = self.router.remaining_lop(issuer)
        if remaining is None:
            if self.router.tenant(issuer) is None:
                return None
            try:
                plan = self.planner.plan(spec, parties=parties)
            except PlanInfeasible:
                # The owning shard refuses this statement itself; keep the
                # unbudgeted path's refusal attribution unchanged.
                return None
            return plan.estimate.expected_lop
        if remaining <= 0.0:
            raise TenantBudgetExceeded(
                f"tenant {issuer!r} has exhausted its LoP budget; "
                f"{spec.statement.text!r} refused"
            )
        slo_cap = spec.slo.max_lop
        # Slo.max_lop lives in (0, 1] — LoP is a probability — so a budget
        # remainder above 1.0 cannot bind a single statement and clamps.
        tightened = min(1.0, remaining if slo_cap is None else min(slo_cap, remaining))
        budget_spec = replace(spec, slo=replace(spec.slo, max_lop=tightened))
        try:
            plan = self.planner.plan(budget_spec, parties=parties)
        except PlanInfeasible as exc:
            if slo_cap is not None and slo_cap <= tightened:
                raise  # the declared SLO itself is unsatisfiable
            raise TenantBudgetExceeded(
                f"tenant {issuer!r} has {remaining:.4f} LoP budget left; "
                f"no plan for {spec.statement.text!r} fits it: {exc}"
            ) from exc
        return plan.estimate.expected_lop

    # -- differential privacy ------------------------------------------------

    def _admit_dp(
        self,
        position: int,
        spec: QuerySpec,
        text: str,
        issuer: str,
        target: int,
        results: "list[QueryOutcome | QueryRefused | None]",
        routed: dict[int, list[tuple[int, str]]],
        fanouts: dict[int, QuerySpec],
        dp_slots: dict[int, tuple],
        extra_texts: list[str],
        dp_pending,
        tenant_pending: dict[str, float],
        *,
        base: int,
    ) -> None:
        """Admit one DP statement and enqueue its inner statements.

        Mirrors the flat federation's admission: the release gate refuses
        over-budget *fresh* releases up front, optimistically admitting
        keys that have released before (finalize settles those if their
        inner answers turn out invalidated).  The tenant's DP meters are
        checked with the same batch-pending accounting, so admission does
        not depend on how a workload was split into batches.
        """
        gate = self.dp_gate
        statement = spec.statement
        try:
            request = build_request(
                spec, self.domain_for(statement.table, statement.attribute)
            )
        except DpError as exc:
            self.router.note_refusal(issuer)
            results[position] = QueryRefused(statement=text, error=exc)
            return
        assert request is not None
        fresh = not (gate.reusable(request) or request.key in dp_pending.keys)
        if fresh:
            reason = gate.accountant.headroom_reason(
                request.epsilon,
                request.delta,
                pending_epsilon=dp_pending.epsilon,
                pending_delta=dp_pending.delta,
            )
            if reason is not None:
                gate.accountant.note_refusal()
                self.router.note_refusal(issuer)
                results[position] = QueryRefused(
                    statement=text,
                    error=BudgetExhausted(reason, statement=text),
                )
                return
            tenant_reason = self.router.dp_headroom(
                issuer,
                request.epsilon,
                request.delta,
                pending_epsilon=tenant_pending["epsilon"],
                pending_delta=tenant_pending["delta"],
            )
            if tenant_reason is not None:
                self.router.note_refusal(issuer)
                results[position] = QueryRefused(
                    statement=text,
                    error=BudgetExhausted(tenant_reason, statement=text),
                )
                return
            dp_pending.epsilon += request.epsilon
            dp_pending.delta += request.delta
            dp_pending.keys.add(request.key)
            tenant_pending["epsilon"] += request.epsilon
            tenant_pending["delta"] += request.delta
        inner_positions: list[int] = []
        for inner_text in request.inner_texts:
            synthetic = base + len(extra_texts)
            extra_texts.append(inner_text)
            inner_positions.append(synthetic)
            if target == ALL_SHARDS:
                fanouts[synthetic] = parse_spec(inner_text)
            else:
                routed.setdefault(target, []).append((synthetic, inner_text))
        if target == ALL_SHARDS:
            self.fanout_statements += 1
        dp_slots[position] = (request, inner_positions, target, statement.text)

    def _assemble_dp(
        self,
        dp_slots: dict[int, tuple],
        results: "list[QueryOutcome | QueryRefused | None]",
        texts: list[str],
        issuer: str,
        dp_executed: dict[int, bool],
    ) -> None:
        """Settle each admitted DP statement from its inner outcomes.

        Statements settle in batch order, so federation and tenant charges
        land in exactly the order a flat federation would record them —
        that is what keeps the two ledgers byte-identical per seed.
        """
        for position in sorted(dp_slots):
            request, inner_positions, target, bare_text = dp_slots[position]
            inner = [results[p] for p in inner_positions]
            refused = next(
                (r for r in inner if isinstance(r, QueryRefused)), None
            )
            if refused is not None:
                results[position] = QueryRefused(
                    statement=texts[position], error=refused.error
                )
                continue
            inner_cached = all(o.cached for o in inner)  # type: ignore[union-attr]
            inner_values = [o.values for o in inner]  # type: ignore[union-attr]
            if self.dp_gate.would_charge(request, inner_cached, inner_values):
                # Optimistic reuse admissions skipped the tenant headroom
                # check; settle it before the gate records the charge.
                tenant_reason = self.router.dp_headroom(
                    issuer, request.epsilon, request.delta
                )
                if tenant_reason is not None:
                    self.router.note_refusal(issuer)
                    results[position] = QueryRefused(
                        statement=texts[position],
                        error=BudgetExhausted(
                            tenant_reason, statement=texts[position]
                        ),
                    )
                    continue
            try:
                values, charged = self.dp_gate.finalize(
                    request,
                    inner_values,
                    inner_cached=inner_cached,
                )
            except BudgetExhausted as exc:
                self.router.note_refusal(issuer)
                results[position] = QueryRefused(
                    statement=texts[position], error=exc
                )
                continue
            first = inner[0]
            dp_executed[position] = not inner_cached
            results[position] = QueryOutcome(
                statement=bare_text,
                values=values,
                protocol=f"{first.protocol}+dp",  # type: ignore[union-attr]
                rounds=max(o.rounds for o in inner),  # type: ignore[union-attr]
                messages=sum(o.messages for o in inner),  # type: ignore[union-attr]
                trace=None,
                cached=not charged,
                simulated_seconds=max(o.simulated_seconds for o in inner),  # type: ignore[union-attr]
            )
            if charged:
                self.router.charge_dp(
                    issuer,
                    request.epsilon,
                    request.delta,
                    statement=request.label,
                )
                shard_key = "all" if target == ALL_SHARDS else str(target)
                self.dp_spend_by_shard[shard_key] = (
                    self.dp_spend_by_shard.get(shard_key, 0.0) + request.epsilon
                )

    # -- dispatch ------------------------------------------------------------

    def _trace_route(
        self,
        traces: "Sequence[TraceContext | None] | None",
        position: int,
        target: int,
        table: str,
    ) -> None:
        """Tag the statement's span with its routing decision."""
        if traces is None:
            return
        trace = traces[position]
        if trace is None or not trace.tracer.enabled or trace.span_id is None:
            return
        trace.tracer.event(
            trace,
            "shard-route",
            at=0.0,
            attrs={
                "shard": "all" if target == ALL_SHARDS else target,
                "table": table,
            },
        )

    def _settle_shard(
        self,
        index: int,
        jobs: list[tuple[int, str]],
        issuer: str,
        traces: "Sequence[TraceContext | None] | None",
        plans: "Sequence[Plan | None] | None",
    ) -> "list[QueryOutcome | QueryRefused]":
        shard = self.shards[index]
        self.shard_queries[index] = self.shard_queries.get(index, 0) + len(jobs)
        sub_texts = [text for _pos, text in jobs]
        sub_traces = (
            [traces[pos] for pos, _text in jobs] if traces is not None else None
        )
        sub_plans = (
            [plans[pos] for pos, _text in jobs] if plans is not None else None
        )
        try:
            return shard.execute_many_settled(
                sub_texts, issuer=issuer, traces=sub_traces, plans=sub_plans
            )
        except ShardUnavailable as exc:
            self.shard_unavailable[index] = (
                self.shard_unavailable.get(index, 0) + len(jobs)
            )
            return [
                QueryRefused(statement=text, error=exc) for text in sub_texts
            ]
        except Exception as exc:  # noqa: BLE001 — shard failure stays local
            error = ShardError(
                f"shard {index} failed its batch: {type(exc).__name__}: {exc}"
            )
            error.__cause__ = exc
            return [
                QueryRefused(statement=text, error=error) for text in sub_texts
            ]

    def _dispatch_routed(
        self,
        routed: dict[int, list[tuple[int, str]]],
        results: "list[QueryOutcome | QueryRefused | None]",
        texts: list[str],
        issuer: str,
        traces: "Sequence[TraceContext | None] | None",
        plans: "Sequence[Plan | None] | None",
    ) -> None:
        if not routed:
            return
        ordered = sorted(routed.items())
        concurrent = len(ordered) > 1 and all(
            getattr(self.shards[index], "concurrent", False)
            for index, _jobs in ordered
        )
        if concurrent:
            with ThreadPoolExecutor(max_workers=len(ordered)) as pool:
                settled_lists = list(
                    pool.map(
                        lambda item: self._settle_shard(
                            item[0], item[1], issuer, traces, plans
                        ),
                        ordered,
                    )
                )
        else:
            settled_lists = [
                self._settle_shard(index, jobs, issuer, traces, plans)
                for index, jobs in ordered
            ]
        for (index, jobs), settled in zip(ordered, settled_lists):
            for (position, _text), result in zip(jobs, settled):
                if isinstance(result, QueryRefused):
                    self.shard_refusals[index] = (
                        self.shard_refusals.get(index, 0) + 1
                    )
                results[position] = result

    def _dispatch_fanouts(
        self,
        fanouts: dict[int, QuerySpec],
        results: "list[QueryOutcome | QueryRefused | None]",
        texts: list[str],
        issuer: str,
    ) -> None:
        """Fan each partitioned-table statement out to every shard and merge.

        Fan-out sub-batches keep the fan-out statements' relative order per
        shard; the shards execute concurrently when all are process-backed.
        """
        if not fanouts:
            return
        positions = sorted(fanouts)
        per_shard_texts: list[str] = []
        slices: list[tuple[int, int]] = []  # (position, width) in batch order
        for position in positions:
            sub = _fanout_texts(fanouts[position].statement)
            slices.append((position, len(sub)))
            per_shard_texts.extend(sub)

        def run_shard(index: int) -> "list[QueryOutcome | QueryRefused]":
            self.shard_queries[index] = (
                self.shard_queries.get(index, 0) + len(per_shard_texts)
            )
            return self._settle_shard_texts(index, per_shard_texts, issuer)

        indices = range(len(self.shards))
        concurrent = len(self.shards) > 1 and all(
            getattr(shard, "concurrent", False) for shard in self.shards
        )
        if concurrent:
            with ThreadPoolExecutor(max_workers=len(self.shards)) as pool:
                shard_settled = list(pool.map(run_shard, indices))
        else:
            shard_settled = [run_shard(index) for index in indices]

        cursor = 0
        for position, width in slices:
            partials: list[list[QueryOutcome]] = []
            refusal: QueryRefused | None = None
            for index in indices:
                window = shard_settled[index][cursor : cursor + width]
                refused = next(
                    (r for r in window if isinstance(r, QueryRefused)), None
                )
                if refused is not None:
                    self.shard_refusals[index] = (
                        self.shard_refusals.get(index, 0) + 1
                    )
                    if refusal is None:
                        refusal = QueryRefused(
                            statement=texts[position], error=refused.error
                        )
                    continue
                partials.append(window)  # type: ignore[arg-type]
            if refusal is not None:
                results[position] = refusal
            else:
                try:
                    results[position] = _merge_fanout(
                        fanouts[position].statement, texts[position], partials
                    )
                except FederationError as exc:
                    results[position] = QueryRefused(
                        statement=texts[position], error=exc
                    )
            cursor += width

    def _settle_shard_texts(
        self, index: int, sub_texts: list[str], issuer: str
    ) -> "list[QueryOutcome | QueryRefused]":
        try:
            return self.shards[index].execute_many_settled(
                sub_texts, issuer=issuer
            )
        except ShardUnavailable as exc:
            self.shard_unavailable[index] = (
                self.shard_unavailable.get(index, 0) + len(sub_texts)
            )
            return [
                QueryRefused(statement=text, error=exc) for text in sub_texts
            ]
        except Exception as exc:  # noqa: BLE001 — shard failure stays local
            error = ShardError(
                f"shard {index} failed its batch: {type(exc).__name__}: {exc}"
            )
            error.__cause__ = exc
            return [
                QueryRefused(statement=text, error=error) for text in sub_texts
            ]

    # -- metrics -------------------------------------------------------------

    def shard_snapshot(self) -> dict[str, object]:
        """Deterministic counters for snapshots and the soak benchmark."""
        return {
            "shards": len(self.shards),
            "partitioned_tables": list(self.router.partitioned_tables),
            "queries_by_shard": {
                str(k): v for k, v in sorted(self.shard_queries.items())
            },
            "refusals_by_shard": {
                str(k): v for k, v in sorted(self.shard_refusals.items())
            },
            "unavailable_by_shard": {
                str(k): v for k, v in sorted(self.shard_unavailable.items())
            },
            "fanout_statements": self.fanout_statements,
            "tenants": self.router.tenant_snapshot(),
            "dp": self.dp_gate.snapshot(),
            "dp_epsilon_by_shard": {
                key: round(value, 9)
                for key, value in sorted(self.dp_spend_by_shard.items())
            },
        }

    def export_shard_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish shard/tenant counters into a central metrics registry."""
        queries = registry.counter(
            "repro_shard_statements_total",
            "Statements dispatched to each shard.",
            ("shard",),
        )
        for index, count in sorted(self.shard_queries.items()):
            queries.inc(count, labels={"shard": str(index)})
        refusals = registry.counter(
            "repro_shard_refusals_total",
            "Statements refused per shard (typed errors).",
            ("shard",),
        )
        for index, count in sorted(self.shard_refusals.items()):
            refusals.inc(count, labels={"shard": str(index)})
        unavailable = registry.counter(
            "repro_shard_unavailable_total",
            "Statements refused because the shard was unreachable.",
            ("shard",),
        )
        for index, count in sorted(self.shard_unavailable.items()):
            unavailable.inc(count, labels={"shard": str(index)})
        fanout = registry.counter(
            "repro_shard_fanout_statements_total",
            "Statements fanned out to every shard (partitioned tables).",
        )
        fanout.inc(self.fanout_statements)
        spent = registry.gauge(
            "repro_tenant_lop_spent",
            "Cumulative expected LoP charged per tenant.",
            ("tenant",),
        )
        tenant_dp = registry.gauge(
            "repro_tenant_dp_epsilon_spent",
            "Cumulative DP epsilon charged per tenant.",
            ("tenant",),
        )
        for issuer, account in sorted(self.router.tenant_snapshot().items()):
            spent.set(float(account["lop_spent"] or 0.0), labels={"tenant": issuer})
            tenant_dp.set(
                float(account["dp_epsilon_spent"] or 0.0), labels={"tenant": issuer}
            )
        shard_dp = registry.gauge(
            "repro_dp_epsilon_spent_by_shard",
            "Fresh-release DP epsilon attributed to the shard owning the data.",
            ("shard",),
        )
        for shard_key, eps in sorted(self.dp_spend_by_shard.items()):
            shard_dp.set(round(eps, 9), labels={"shard": shard_key})


# -- merge ---------------------------------------------------------------------


def _fanout_texts(statement) -> list[str]:
    """The statement texts each shard answers for one fan-out statement.

    Every operation except AVG merges from per-shard answers to *the same*
    statement; AVG is the one non-decomposable aggregate — it recombines
    from per-shard SUM and COUNT (avg = Σsum / Σcount), exactly how the
    unsharded coordinator computes it from its own secure sums.
    """
    if statement.operation == "AVG":
        return [
            f"SELECT SUM({statement.attribute}) FROM {statement.table}",
            f"SELECT COUNT({statement.attribute}) FROM {statement.table}",
        ]
    return [statement.text]


def _merge_fanout(
    statement,
    statement_text: str,
    partials: "list[list[QueryOutcome]]",
) -> QueryOutcome:
    """Combine per-shard partial outcomes into the statement's answer.

    ``partials`` holds one entry per shard, in shard order, each a list of
    outcomes aligned with :func:`_fanout_texts`.  Rounds and simulated
    seconds merge as maxima (shards run in parallel); messages sum.
    """
    if not partials:
        raise FederationError(f"no shard answered {statement_text!r}")
    op = statement.operation
    if op == "AVG":
        total = sum(p[0].values[0] for p in partials)
        count = round(sum(p[1].values[0] for p in partials))
        if count == 0:
            raise FederationError("AVG over zero rows")
        values: tuple[float, ...] = (float(total / count),)
    elif op == "SUM":
        values = (float(sum(p[0].values[0] for p in partials)),)
    elif op == "COUNT":
        values = (float(round(sum(p[0].values[0] for p in partials))),)
    elif op in ("MAX", "TOP"):
        pool = [v for p in partials for v in p[0].values]
        values = tuple(sorted(pool, reverse=True)[: statement.k])
    elif op in ("MIN", "BOTTOM"):
        pool = [v for p in partials for v in p[0].values]
        values = tuple(sorted(pool)[: statement.k])
    else:  # pragma: no cover - the dialect has no other operations
        raise FederationError(f"cannot merge operation {op!r}")
    flat = [outcome for p in partials for outcome in p]
    return QueryOutcome(
        statement=statement_text,
        values=values,
        protocol=flat[0].protocol,
        rounds=max(o.rounds for o in flat),
        messages=sum(o.messages for o in flat),
        trace=None,
        cached=all(o.cached for o in flat),
        simulated_seconds=max(o.simulated_seconds for o in flat),
    )


__all__ = ["ShardedFederation"]
