"""Traffic accounting for the efficiency experiments.

Section 4.2 analyses communication cost as (cost per round) x (number of
rounds), with cost per round proportional to the number of nodes.  The
simulator measures this directly: every delivered message is counted here,
per link and per round, in both messages and payload bytes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .message import Message


@dataclass
class TrafficStats:
    """Mutable accumulator of message/byte counts."""

    messages_total: int = 0
    bytes_total: int = 0
    per_link: Counter = field(default_factory=Counter)
    per_round: Counter = field(default_factory=Counter)
    per_type: Counter = field(default_factory=Counter)
    #: Messages per query tag ("" for untagged single-query traffic) — the
    #: per-query accounting of the multi-query pipelining path.
    per_query: Counter = field(default_factory=Counter)

    def record(self, message: Message) -> None:
        size = message.size_bytes
        self.messages_total += 1
        self.bytes_total += size
        self.per_link[(message.sender, message.receiver)] += 1
        self.per_round[message.round] += 1
        self.per_type[message.type.value] += 1
        self.per_query[message.query] += 1

    def messages_for_query(self, query: str) -> int:
        return self.per_query.get(query, 0)

    def messages_in_round(self, round_number: int) -> int:
        return self.per_round.get(round_number, 0)

    @property
    def rounds_seen(self) -> int:
        """Highest round number with traffic (setup round 0 excluded)."""
        data_rounds = [r for r in self.per_round if r > 0]
        return max(data_rounds, default=0)

    def merge(self, other: "TrafficStats") -> None:
        """Fold another accumulator into this one (for multi-trial totals)."""
        self.messages_total += other.messages_total
        self.bytes_total += other.bytes_total
        self.per_link.update(other.per_link)
        self.per_round.update(other.per_round)
        self.per_type.update(other.per_type)
        self.per_query.update(other.per_query)

    def summary(self) -> dict[str, float]:
        """Flat summary used by reports and benchmarks."""
        return {
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            "rounds_seen": self.rounds_seen,
            "mean_bytes_per_message": (
                self.bytes_total / self.messages_total if self.messages_total else 0.0
            ),
        }
