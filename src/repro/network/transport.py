"""In-memory message transport with simulated latency, encryption and accounting.

This is the substrate substitution documented in DESIGN.md: the paper's
protocol runs over a real network, but its correctness and privacy behaviour
depend only on message contents and ordering, which this transport reproduces
exactly while adding per-message accounting that a real deployment could not
observe as cheaply.

Delivery model: ``send`` enqueues a message with a delivery timestamp drawn
from a latency model; ``deliver_next`` pops messages in timestamp order and
hands them to the registered handler.  Payloads are round-tripped through the
channel cipher when a keyring is configured, so the encryption path is
genuinely exercised.

Multi-query pipelining: endpoints register under a *channel* (the message's
``query`` tag), so several independent protocol runs — each with the same
party names — can interleave their tokens on one shared transport.  Delivery
remains strictly (timestamp, seq)-ordered across channels, which is what
makes the interleaving fair: no query can starve another, and a batch of Q
queries completes in simulated time close to the *slowest* query rather than
the sum.  Per-channel accounting (:meth:`InMemoryTransport.open_channel`)
gives every query its own :class:`~repro.network.stats.TrafficStats`,
:class:`~repro.network.events.EventLog` and completion clock, identical to
what a dedicated transport would have recorded.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable
from dataclasses import dataclass, field

from .crypto import Keyring
from .events import EventLog
from .failures import FailureInjector
from .message import Message
from .stats import TrafficStats

#: Latency models map (sender, receiver) -> seconds.
LatencyModel = Callable[[str, str], float]
Handler = Callable[[Message], None]

#: Delivery bound covering one query's worth of traffic; multi-query callers
#: scale this by the number of interleaved queries.
DEFAULT_MAX_DELIVERIES = 1_000_000


def constant_latency(seconds: float = 0.001) -> LatencyModel:
    """Same latency on every link."""
    if seconds < 0:
        raise ValueError("latency must be non-negative")
    return lambda _sender, _receiver: seconds


def jitter_latency(
    base_seconds: float, jitter_seconds: float, rng: "random.Random"
) -> LatencyModel:
    """Constant latency plus uniform per-message jitter.

    Jitter does not reorder a ring protocol (there is one token in flight),
    but it makes simulated wall-clock realistic and exercises timestamp
    ordering in multi-query scenarios.
    """
    if base_seconds < 0 or jitter_seconds < 0:
        raise ValueError("latency components must be non-negative")
    return lambda _sender, _receiver: base_seconds + rng.uniform(0, jitter_seconds)


@dataclass(frozen=True)
class BandwidthLatency:
    """Size-aware link delay: ``base + bytes / bytes_per_second``.

    Top-k tokens grow with k, so on thin links the payload size matters;
    this model makes the simulator's clock reflect it.  Pass as ``latency``
    to the transport, which detects the size-aware ``delay`` method.
    """

    base_seconds: float = 0.001
    bytes_per_second: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.base_seconds < 0:
            raise ValueError("base latency must be non-negative")
        if self.bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")

    def delay(self, _sender: str, _receiver: str, size_bytes: int) -> float:
        return self.base_seconds + size_bytes / self.bytes_per_second


class TransportError(RuntimeError):
    """Raised on misuse of the transport (unknown endpoints, etc.)."""


@dataclass
class ChannelAccounting:
    """Per-query bookkeeping on a shared transport.

    ``last_delivery_at`` is the simulated timestamp of the channel's most
    recent delivery — for a completed protocol run it is that query's
    completion time, the quantity the throughput benchmarks compare against
    sequential execution.

    ``on_delivery`` is the tracing tap: when set, it is invoked for every
    delivery on this channel with the (decrypted) message and the simulated
    delivery time, after the accounting above is recorded and before the
    receiver's handler runs — so a hop span exists by the time any round
    hook fires.
    """

    stats: TrafficStats = field(default_factory=TrafficStats)
    event_log: EventLog = field(default_factory=EventLog)
    last_delivery_at: float = 0.0
    deliveries: int = 0
    on_delivery: "Callable[[Message, float], None] | None" = None


@dataclass(frozen=True)
class _Envelope:
    deliver_at: float
    seq: int
    message: Message
    ciphertext: bytes | None

    def __lt__(self, other: "_Envelope") -> bool:
        return (self.deliver_at, self.seq) < (other.deliver_at, other.seq)


class InMemoryTransport:
    """Point-to-point transport among registered endpoints."""

    def __init__(
        self,
        *,
        latency: "LatencyModel | BandwidthLatency | None" = None,
        keyring: Keyring | None = None,
        failures: FailureInjector | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        self._latency = latency or constant_latency()
        self._keyring = keyring
        self._failures = failures
        #: Handlers keyed by (channel, node id); channel "" is the classic
        #: single-query traffic, a query id otherwise.
        self._handlers: dict[tuple[str, str], Handler] = {}
        self._channels: dict[str, ChannelAccounting] = {}
        self._queue: list[_Envelope] = []
        self._seq = itertools.count()
        self._clock = 0.0
        self.stats = TrafficStats()
        self.event_log = event_log if event_log is not None else EventLog()
        self.dropped = 0

    # -- membership -----------------------------------------------------------

    def register(self, node_id: str, handler: Handler, *, channel: str = "") -> None:
        """Attach a delivery handler for ``node_id`` on ``channel``.

        The same node id may be registered once per channel, which is how one
        party participates in many in-flight queries simultaneously.
        """
        if (channel, node_id) in self._handlers:
            raise TransportError(
                f"node {node_id!r} already registered"
                + (f" on channel {channel!r}" if channel else "")
            )
        self._handlers[(channel, node_id)] = handler

    def unregister(self, node_id: str, *, channel: str = "") -> None:
        self._handlers.pop((channel, node_id), None)

    @property
    def endpoints(self) -> tuple[str, ...]:
        return tuple(sorted({node for _channel, node in self._handlers}))

    # -- per-query accounting -------------------------------------------------

    def open_channel(self, channel: str) -> ChannelAccounting:
        """Create (or return) the accounting record for ``channel``.

        Deliveries tagged with ``channel`` are recorded into its stats and
        event log *in addition to* the transport-wide ones, so a query on a
        shared transport sees exactly the accounting a dedicated transport
        would have produced.
        """
        return self._channels.setdefault(channel, ChannelAccounting())

    def channel(self, channel: str) -> ChannelAccounting:
        try:
            return self._channels[channel]
        except KeyError:
            raise TransportError(f"no such channel: {channel!r}") from None

    # -- clock ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Simulated time, advanced by deliveries."""
        return self._clock

    # -- sending/delivery ---------------------------------------------------------

    def send(self, message: Message) -> None:
        """Enqueue ``message`` for future delivery."""
        if (message.query, message.receiver) not in self._handlers:
            raise TransportError(
                f"unknown receiver: {message.receiver!r}"
                + (f" on channel {message.query!r}" if message.query else "")
            )
        if self._failures and self._failures.should_drop(message):
            self.dropped += 1
            return
        ciphertext = None
        if self._keyring is not None:
            ciphertext = self._keyring.seal(
                message.sender, message.receiver, message.encode()
            )
        delay_method = getattr(self._latency, "delay", None)
        if delay_method is not None:
            wire_bytes = len(ciphertext) if ciphertext is not None else message.size_bytes
            link_delay = delay_method(message.sender, message.receiver, wire_bytes)
        else:
            link_delay = self._latency(message.sender, message.receiver)
        deliver_at = self._clock + link_delay
        heapq.heappush(
            self._queue,
            _Envelope(deliver_at, next(self._seq), message, ciphertext),
        )

    @property
    def pending(self) -> int:
        return len(self._queue)

    def deliver_next(self) -> Message | None:
        """Deliver the earliest pending message; None when the queue is empty."""
        if not self._queue:
            return None
        envelope = heapq.heappop(self._queue)
        self._clock = max(self._clock, envelope.deliver_at)
        message = envelope.message
        if self._keyring is not None and envelope.ciphertext is not None:
            # Round-trip through the cipher: what the wire carried is the
            # ciphertext; the receiver decrypts and re-parses.
            raw = self._keyring.open(message.sender, message.receiver, envelope.ciphertext)
            message = Message.decode(raw)
        if self._failures and self._failures.is_crashed(message.receiver):
            self.dropped += 1
            return None
        handler = self._handlers.get((message.query, message.receiver))
        if handler is None:
            self.dropped += 1
            return None
        self.stats.record(message)
        self.event_log.record(message)
        accounting = self._channels.get(message.query)
        if accounting is not None:
            # Record before invoking the handler: round hooks fired from the
            # handler read the channel's event log for the just-delivered
            # message.
            accounting.stats.record(message)
            accounting.event_log.record(message)
            accounting.last_delivery_at = self._clock
            accounting.deliveries += 1
            if accounting.on_delivery is not None:
                accounting.on_delivery(message, self._clock)
        handler(message)
        return message

    def run_until_idle(self, max_deliveries: int = DEFAULT_MAX_DELIVERIES) -> int:
        """Pump the queue until empty; returns the number of deliveries.

        ``max_deliveries`` bounds runaway protocols (a delivery may enqueue
        follow-up messages).  The default covers one query's worth of
        traffic; callers pumping Q interleaved queries should scale the
        bound by Q (``DEFAULT_MAX_DELIVERIES * q``) so a legitimate
        multi-query load is not misdiagnosed as a runaway protocol.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_deliveries:
                raise TransportError(
                    f"exceeded {max_deliveries} deliveries; protocol did not quiesce"
                )
            if self.deliver_next() is not None:
                delivered += 1
        return delivered
