"""Passive-logging event capture for privacy analysis.

The semi-honest adversary "can later use what it sees during execution of the
protocol" (Section 2.1).  What a node sees is exactly the sequence of token
messages delivered to it.  The event log records every delivery so that,
after a run, adversary models in :mod:`repro.privacy` can replay any node's
(or coalition's) view and quantify the resulting loss of privacy.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from .message import Message, MessageType


@dataclass(frozen=True)
class Observation:
    """One message as seen by its receiver.

    ``vector`` is the global vector carried by the token; scalar protocols
    (max/min) use length-1 vectors.  ``kind`` distinguishes in-protocol
    token traffic from the final-result broadcast — privacy analysis scores
    only the former (the result is public by definition).
    """

    round: int
    sender: str
    receiver: str
    vector: tuple[float, ...]
    msg_id: int
    kind: str = "token"
    #: Query tag for multi-query traffic ("" for single-query runs).
    query: str = ""

    @classmethod
    def from_message(cls, message: Message) -> "Observation":
        vector = tuple(message.payload.get("vector", ()))
        return cls(
            round=message.round,
            sender=message.sender,
            receiver=message.receiver,
            vector=vector,
            msg_id=message.msg_id,
            kind=message.type.value,
            query=message.query,
        )


class EventLog:
    """Ordered record of all token/result deliveries in one protocol run."""

    def __init__(self) -> None:
        self._observations: list[Observation] = []

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    def record(self, message: Message) -> None:
        if message.type in (MessageType.TOKEN, MessageType.RESULT):
            self._observations.append(Observation.from_message(message))

    def observe(self, observation: Observation) -> None:
        """Append a pre-built observation (the message-free kernel's path)."""
        self._observations.append(observation)

    @classmethod
    def from_observations(cls, observations: list[Observation]) -> "EventLog":
        """Adopt a pre-built observation list (ownership transfers)."""
        log = cls()
        log._observations = observations
        return log

    # -- adversary views -----------------------------------------------------

    def received_by(self, node: str) -> list[Observation]:
        """Everything ``node`` saw: the basis of the semi-honest adversary view."""
        return [o for o in self._observations if o.receiver == node]

    def sent_by(self, node: str) -> list[Observation]:
        """Everything ``node`` emitted (known to the node itself)."""
        return [o for o in self._observations if o.sender == node]

    def outputs_of(self, node: str) -> dict[int, tuple[float, ...]]:
        """Map round -> token vector that ``node`` passed to its successor.

        This is the quantity `g_i(r)` / `G_i(r)` the privacy analysis of
        Section 4.3 reasons about.  Result-broadcast traffic is excluded.
        """
        return {
            o.round: o.vector
            for o in self._observations
            if o.sender == node and o.kind == "token"
        }

    def inputs_of(self, node: str) -> dict[int, tuple[float, ...]]:
        """Map round -> token vector that ``node`` received from its predecessor."""
        return {
            o.round: o.vector
            for o in self._observations
            if o.receiver == node and o.kind == "token"
        }

    def rounds(self) -> list[int]:
        """Protocol rounds with token traffic (result broadcast excluded)."""
        return sorted(
            {o.round for o in self._observations if o.round > 0 and o.kind == "token"}
        )

    def coalition_view(self, members: set[str]) -> list[Observation]:
        """Union of views of a colluding group (Section 4.3 collusion analysis).

        A coalition sees every message any member received, plus every message
        any member sent (a sender knows its own output).
        """
        return [
            o
            for o in self._observations
            if o.receiver in members or o.sender in members
        ]
