"""Simulated peer-to-peer network substrate: transport, ring, nodes, crypto."""

from .crypto import ChannelKey, CryptoError, Keyring
from .events import EventLog, Observation
from .failures import FailureInjector, NodeFailedError
from .message import (
    Message,
    MessageError,
    MessageType,
    result_message,
    token_message,
)
from .node import LocalAlgorithm, NodeError, ProtocolNode
from .ring import RingError, RingTopology
from .stats import TrafficStats
from .transport import (
    BandwidthLatency,
    InMemoryTransport,
    LatencyModel,
    TransportError,
    constant_latency,
    jitter_latency,
)
from .trust import TrustError, TrustGraph, build_trusted_ring

__all__ = [
    "BandwidthLatency",
    "ChannelKey",
    "CryptoError",
    "EventLog",
    "FailureInjector",
    "InMemoryTransport",
    "Keyring",
    "LatencyModel",
    "LocalAlgorithm",
    "Message",
    "MessageError",
    "MessageType",
    "NodeError",
    "NodeFailedError",
    "Observation",
    "ProtocolNode",
    "RingError",
    "RingTopology",
    "TrafficStats",
    "TransportError",
    "TrustError",
    "TrustGraph",
    "build_trusted_ring",
    "constant_latency",
    "jitter_latency",
    "result_message",
    "token_message",
]
