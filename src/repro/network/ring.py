"""Ring topology management.

Section 3.2: "Nodes are mapped into a ring randomly.  Each node has a
predecessor and successor.  It is important to have the random mapping to
reduce the cases where two colluding adversaries are the predecessor and
successor of an innocent node."

The ring supports the Section 4.3 collusion countermeasure of re-randomizing
the mapping every round (:meth:`RingTopology.remap`) and the Section 3.2
failure repair of splicing out a crashed node (:meth:`RingTopology.repair`).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence


class RingError(ValueError):
    """Raised for invalid ring construction or lookups."""


class RingTopology:
    """A cyclic ordering of node identifiers."""

    def __init__(self, order: Sequence[str]) -> None:
        order = list(order)
        if len(order) < 3:
            # The protocol requires n >= 3 (Section 3): with two nodes the
            # successor can always invert the local computation.
            raise RingError(f"a ring needs at least 3 nodes, got {len(order)}")
        if len(set(order)) != len(order):
            raise RingError("ring members must be unique")
        self._order = order
        self._position = {node: i for i, node in enumerate(order)}

    # -- construction -----------------------------------------------------------

    @classmethod
    def random(cls, members: Iterable[str], rng: random.Random) -> "RingTopology":
        """The paper's random mapping of nodes onto the ring."""
        order = list(members)
        rng.shuffle(order)
        return cls(order)

    # -- introspection ------------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        """Ring order, starting from the ring's internal index 0."""
        return tuple(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: object) -> bool:
        return node in self._position

    def position(self, node: str) -> int:
        try:
            return self._position[node]
        except KeyError:
            raise RingError(f"node {node!r} is not on the ring") from None

    def successor(self, node: str) -> str:
        i = self.position(node)
        return self._order[(i + 1) % len(self._order)]

    def predecessor(self, node: str) -> str:
        i = self.position(node)
        return self._order[(i - 1) % len(self._order)]

    def walk_from(self, start: str) -> list[str]:
        """Ring members in token-passing order, beginning at ``start``."""
        i = self.position(start)
        return [self._order[(i + j) % len(self._order)] for j in range(len(self._order))]

    def neighbors(self, node: str) -> tuple[str, str]:
        """(predecessor, successor) of ``node``."""
        return self.predecessor(node), self.successor(node)

    def are_sandwiching(self, pair: tuple[str, str], victim: str) -> bool:
        """True when ``pair`` are exactly the victim's two neighbours.

        This is the colluding-neighbour configuration analysed in Section 4.3.
        """
        return set(pair) == set(self.neighbors(victim))

    # -- dynamics ------------------------------------------------------------------

    def remap(self, rng: random.Random) -> "RingTopology":
        """A fresh random mapping of the same members (per-round remapping)."""
        return RingTopology.random(self._order, rng)

    def repair(self, failed: str) -> "RingTopology":
        """Splice out a failed node, connecting its predecessor and successor."""
        if failed not in self._position:
            raise RingError(f"node {failed!r} is not on the ring")
        remaining = [n for n in self._order if n != failed]
        return RingTopology(remaining)
