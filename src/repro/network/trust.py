"""Trust-aware ring construction (Section 4.3).

"One technique to minimize the effect of collusion is for a node to ensure
that at least one of its neighbors is trustworthy.  This can be achieved in
practice by having nodes arrange themselves along the network ring(s)
according to certain trust relationships such as digital certificate based
combined with reputation-based."

This module provides the trust substrate: a pairwise trust graph (scores in
[0, 1], e.g. from certificates and reputation systems), updates from
observed behaviour, and a ring builder that greedily maximizes neighbour
trust so that untrusted parties end up adjacent to each other rather than
sandwiching honest nodes.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from .ring import RingError, RingTopology


class TrustError(ValueError):
    """Raised for invalid trust scores or unknown parties."""


class TrustGraph:
    """Symmetric pairwise trust scores with a configurable default."""

    def __init__(self, members: Iterable[str], *, default: float = 0.5) -> None:
        self._members = sorted(set(members))
        if len(self._members) < 3:
            raise TrustError(f"a trust graph needs >= 3 members, got {len(self._members)}")
        if not 0.0 <= default <= 1.0:
            raise TrustError(f"default trust must be in [0, 1], got {default}")
        self._default = default
        self._scores: dict[frozenset[str], float] = {}

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(self._members)

    def _link(self, a: str, b: str) -> frozenset[str]:
        if a == b:
            raise TrustError("self-trust is not a link")
        for node in (a, b):
            if node not in self._members:
                raise TrustError(f"unknown member {node!r}")
        return frozenset((a, b))

    def set_trust(self, a: str, b: str, score: float) -> None:
        if not 0.0 <= score <= 1.0:
            raise TrustError(f"trust must be in [0, 1], got {score}")
        self._scores[self._link(a, b)] = score

    def trust(self, a: str, b: str) -> float:
        return self._scores.get(self._link(a, b), self._default)

    def observe(self, a: str, b: str, *, honest: bool, weight: float = 0.1) -> None:
        """Reputation update: move the score toward 1 (honest) or 0 (not).

        The exponential moving average is the standard reputation-system
        update (cf. PeerTrust, which the paper cites).
        """
        if not 0.0 < weight <= 1.0:
            raise TrustError(f"weight must be in (0, 1], got {weight}")
        current = self.trust(a, b)
        target = 1.0 if honest else 0.0
        self._scores[self._link(a, b)] = (1 - weight) * current + weight * target

    def least_trusted(self, node: str) -> str:
        """The member ``node`` trusts least (tie-broken lexicographically)."""
        others = [m for m in self._members if m != node]
        return min(others, key=lambda m: (self.trust(node, m), m))

    def ring_trust(self, ring: RingTopology) -> float:
        """Mean trust across all ring links — the builder's objective."""
        total = 0.0
        for node in ring.members:
            total += self.trust(node, ring.successor(node))
        return total / len(ring)

    def min_neighbor_trust(self, ring: RingTopology, node: str) -> float:
        """The weaker of a node's two neighbour links."""
        predecessor, successor = ring.neighbors(node)
        return min(self.trust(node, predecessor), self.trust(node, successor))


def build_trusted_ring(
    graph: TrustGraph, rng: random.Random, *, restarts: int = 8
) -> RingTopology:
    """Greedy nearest-neighbour ring maximizing link trust, with restarts.

    Classic TSP-flavoured construction: from a random anchor, repeatedly
    append the unplaced member most trusted by the current tail.  Several
    random restarts keep one bad anchor from dominating; the best ring by
    mean link trust wins.  Randomness preserves unpredictability of the
    final layout (an adversary must not be able to plan its position).
    """
    members = list(graph.members)
    best: RingTopology | None = None
    best_score = -1.0
    for _ in range(max(1, restarts)):
        anchor = rng.choice(members)
        placed = [anchor]
        remaining = set(members) - {anchor}
        while remaining:
            tail = placed[-1]
            # Highest-trust next hop; random tie-break for unpredictability.
            top_score = max(graph.trust(tail, m) for m in remaining)
            candidates = sorted(
                m for m in remaining if graph.trust(tail, m) == top_score
            )
            chosen = rng.choice(candidates)
            placed.append(chosen)
            remaining.remove(chosen)
        try:
            ring = RingTopology(placed)
        except RingError as exc:  # pragma: no cover - guarded by TrustGraph
            raise TrustError(str(exc)) from exc
        score = graph.ring_trust(ring)
        if score > best_score:
            best, best_score = ring, score
    assert best is not None
    return best
