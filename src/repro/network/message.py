"""Wire messages exchanged between nodes on the ring.

Messages carry the current global vector from a node to its successor.  They
are plain data: a typed header plus a JSON-serializable payload.  The byte
size of the encoded payload is what the transport's traffic accounting (and
hence the communication-cost experiments) measures.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Claim the next id from the global message-id sequence.

    The message-free kernel (:mod:`repro.core.kernel`) records observations
    without constructing :class:`Message` objects but draws from the same
    sequence, so ids stay unique and ordered even when kernel and session
    runs interleave in one process.
    """
    return next(_message_ids)


class MessageType(Enum):
    """Kinds of protocol traffic.

    TOKEN carries the global vector around the ring; CONTROL covers
    initialization/termination signalling; RESULT broadcasts the final answer.
    """

    TOKEN = "token"
    CONTROL = "control"
    RESULT = "result"


class MessageError(ValueError):
    """Raised for malformed or unserializable messages."""


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    Attributes
    ----------
    sender, receiver:
        Node identifiers (opaque strings).
    round:
        Protocol round the message belongs to (1-based; 0 for setup traffic).
    type:
        A :class:`MessageType`.
    payload:
        JSON-serializable body.  For TOKEN messages this is the global vector
        under key ``"vector"``.
    msg_id:
        Monotonically increasing id, assigned at construction; used for
        stable ordering in logs.
    query:
        Query id tagging which protocol run the message belongs to.  The
        empty string (the default) is the classic single-query traffic; a
        non-empty tag lets several independent queries interleave their
        tokens on one shared transport (the multi-query pipelining path).
    """

    sender: str
    receiver: str
    round: int
    type: MessageType = MessageType.TOKEN
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    query: str = ""

    def __post_init__(self) -> None:
        if not self.sender or not self.receiver:
            raise MessageError("sender and receiver must be non-empty")
        if self.round < 0:
            raise MessageError(f"round must be >= 0, got {self.round}")
        try:
            json.dumps(self.payload)
        except (TypeError, ValueError) as exc:
            raise MessageError(f"payload is not JSON-serializable: {exc}") from exc

    def encode(self) -> bytes:
        """Serialize the message body for transmission (and byte accounting).

        Cached: messages are conceptually immutable and the hot path
        (accounting + optional sealing + size-aware latency) would otherwise
        serialize each token several times.
        """
        cached = self.__dict__.get("_encoded")
        if cached is None:
            body = {
                "sender": self.sender,
                "receiver": self.receiver,
                "round": self.round,
                "type": self.type.value,
                "payload": self.payload,
            }
            if self.query:
                # Only tagged (multi-query) traffic pays the extra field, so
                # single-query byte accounting matches the paper's analysis.
                body["query"] = self.query
            cached = json.dumps(body, separators=(",", ":"), sort_keys=True).encode()
            # frozen dataclass: stash through object.__setattr__.
            object.__setattr__(self, "_encoded", cached)
        return cached

    @classmethod
    def decode(cls, raw: bytes) -> "Message":
        """Inverse of :meth:`encode`."""
        try:
            body = json.loads(raw.decode())
            if not isinstance(body, dict):
                raise MessageError(f"message body must be an object, got {type(body).__name__}")
            if not isinstance(body.get("round"), int):
                raise MessageError("message round must be an integer")
            if not isinstance(body.get("sender"), str) or not isinstance(
                body.get("receiver"), str
            ):
                raise MessageError("sender and receiver must be strings")
            if not isinstance(body.get("payload"), dict):
                raise MessageError("message payload must be an object")
            if not isinstance(body.get("query", ""), str):
                raise MessageError("message query tag must be a string")
            return cls(
                sender=body["sender"],
                receiver=body["receiver"],
                round=body["round"],
                type=MessageType(body["type"]),
                payload=body["payload"],
                query=body.get("query", ""),
            )
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
            if isinstance(exc, MessageError):
                raise
            raise MessageError(f"cannot decode message: {exc}") from exc

    @property
    def size_bytes(self) -> int:
        return len(self.encode())


def token_message(
    sender: str,
    receiver: str,
    round_number: int,
    vector: list[float],
    *,
    query: str = "",
) -> Message:
    """Build the TOKEN message carrying the global vector."""
    return Message(
        sender=sender,
        receiver=receiver,
        round=round_number,
        type=MessageType.TOKEN,
        payload={"vector": list(vector)},
        query=query,
    )


def result_message(
    sender: str,
    receiver: str,
    round_number: int,
    vector: list[float],
    *,
    query: str = "",
) -> Message:
    """Build the RESULT message broadcasting the final answer."""
    return Message(
        sender=sender,
        receiver=receiver,
        round=round_number,
        type=MessageType.RESULT,
        payload={"vector": list(vector)},
        query=query,
    )
