"""Channel encryption for ring links.

Section 3.2: "Encryption techniques can be used so that data are protected on
the communication channel."  The protocol's privacy properties do not depend
on the cipher — encryption only shields the channel from *outside* observers,
not from the receiving successor — so we provide a small, functional,
dependency-free symmetric cipher: a SHA-256-based keystream XORed over the
plaintext, with a random per-message nonce and a truncated HMAC for
integrity.  It is a faithful stand-in for, e.g., AES-CTR+HMAC on a real
deployment, with the same interface and observable behaviour.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

_NONCE_BYTES = 16
_TAG_BYTES = 16
_BLOCK_BYTES = 32  # SHA-256 digest size


class CryptoError(ValueError):
    """Raised on decryption/authentication failure."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream: SHA256(key || nonce || counter) blocks."""
    blocks = []
    for counter in range((length + _BLOCK_BYTES - 1) // _BLOCK_BYTES):
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


@dataclass(frozen=True)
class ChannelKey:
    """A symmetric key shared by the two endpoints of one ring link."""

    key: bytes

    def __post_init__(self) -> None:
        if len(self.key) < 16:
            raise CryptoError("channel keys must be at least 128 bits")

    @classmethod
    def generate(cls) -> "ChannelKey":
        return cls(os.urandom(32))

    def encrypt(self, plaintext: bytes) -> bytes:
        """nonce || ciphertext || tag."""
        nonce = os.urandom(_NONCE_BYTES)
        ciphertext = _xor(plaintext, _keystream(self.key, nonce, len(plaintext)))
        tag = hmac.new(self.key, nonce + ciphertext, hashlib.sha256).digest()
        return nonce + ciphertext + tag[:_TAG_BYTES]

    def decrypt(self, blob: bytes) -> bytes:
        if len(blob) < _NONCE_BYTES + _TAG_BYTES:
            raise CryptoError("ciphertext too short")
        nonce = blob[:_NONCE_BYTES]
        ciphertext = blob[_NONCE_BYTES:-_TAG_BYTES]
        tag = blob[-_TAG_BYTES:]
        expected = hmac.new(self.key, nonce + ciphertext, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected[:_TAG_BYTES]):
            raise CryptoError("message authentication failed")
        return _xor(ciphertext, _keystream(self.key, nonce, len(ciphertext)))


class Keyring:
    """Pairwise channel keys for all links in the system.

    Keys are created lazily per unordered node pair, mimicking a key exchange
    performed when the ring is formed.
    """

    def __init__(self) -> None:
        self._keys: dict[frozenset[str], ChannelKey] = {}

    def key_for(self, a: str, b: str) -> ChannelKey:
        if a == b:
            raise CryptoError("a channel needs two distinct endpoints")
        link = frozenset((a, b))
        if link not in self._keys:
            self._keys[link] = ChannelKey.generate()
        return self._keys[link]

    def seal(self, sender: str, receiver: str, plaintext: bytes) -> bytes:
        return self.key_for(sender, receiver).encrypt(plaintext)

    def open(self, sender: str, receiver: str, blob: bytes) -> bytes:
        return self.key_for(sender, receiver).decrypt(blob)
