"""The protocol node runtime.

A :class:`ProtocolNode` owns one private database's local top-k vector and a
pluggable *local computation module* (Section 3.2) — the only component that
differs between the naive and probabilistic protocols.  Nodes are reactive:
the transport calls :meth:`handle`, the node runs its local algorithm and
forwards the token to its current successor.

Round structure: the starting node emits the round-1 token; every other node
processes and forwards it within the same round; when the token returns to
the starting node, the round is complete.  The starting node then either
starts the next round or, after the configured number of rounds, circulates
the final result along the ring (the paper's termination round).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

from .message import Message, MessageType, result_message, token_message
from .transport import InMemoryTransport


class LocalAlgorithm(Protocol):
    """The per-node local computation module.

    Implementations live in :mod:`repro.core`; they hold the node's private
    local vector plus any per-node protocol state, and must be used by
    exactly one node.
    """

    def compute(self, incoming: list[float], round_number: int) -> list[float]:
        """Map the received global vector to the vector passed on."""
        ...


class NodeError(RuntimeError):
    """Raised on protocol-state violations inside a node."""


RoundHook = Callable[[int], None]


class ProtocolNode:
    """One participant on the ring."""

    def __init__(
        self,
        node_id: str,
        algorithm: LocalAlgorithm,
        transport: InMemoryTransport,
        *,
        is_starter: bool = False,
        total_rounds: int = 1,
        query_id: str = "",
    ) -> None:
        if total_rounds < 1:
            raise NodeError("total_rounds must be >= 1")
        self.node_id = node_id
        self.algorithm = algorithm
        self.transport = transport
        self.is_starter = is_starter
        self.total_rounds = total_rounds
        #: Which query's traffic this node instance handles.  One party
        #: participates in Q in-flight queries through Q node instances, each
        #: registered on its own transport channel.
        self.query_id = query_id
        self.successor: str | None = None
        #: Final result vector, set once the RESULT token reaches this node.
        self.final_result: list[float] | None = None
        #: Last token this node emitted (round, vector) — kept on the node,
        #: not the transport, because a dropped send never reaches any log
        #: and crash recovery needs to replay exactly what was lost.
        self.last_sent_round: int = 0
        self.last_sent_vector: list[float] | None = None
        #: Called by the starter when a round completes (driver installs it to
        #: snapshot state or remap the ring between rounds).
        self.round_hook: RoundHook | None = None
        self._rounds_completed = 0
        transport.register(node_id, self.handle, channel=query_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "starter" if self.is_starter else "member"
        return f"ProtocolNode({self.node_id!r}, {role})"

    # -- protocol actions ----------------------------------------------------

    def start(self, identity_vector: list[float]) -> None:
        """Starter only: kick off round 1 from the domain identity vector."""
        if not self.is_starter:
            raise NodeError(f"{self.node_id} is not the starting node")
        output = self.algorithm.compute(list(identity_vector), 1)
        self._forward_token(1, output)

    def handle(self, message: Message) -> None:
        """Transport delivery callback."""
        if message.type is MessageType.RESULT:
            self._handle_result(message)
        elif message.type is MessageType.TOKEN:
            self._handle_token(message)
        # CONTROL messages are driver-internal and need no node action.

    # -- internals -------------------------------------------------------------

    def _handle_token(self, message: Message) -> None:
        vector = [float(v) for v in message.payload["vector"]]
        round_number = message.round
        if self.is_starter:
            # Token returning to the starter closes round `round_number`.
            self._rounds_completed = round_number
            if self.round_hook is not None:
                self.round_hook(round_number)
            if round_number >= self.total_rounds:
                self.final_result = vector
                self._forward_result(round_number + 1, vector)
                return
            next_round = round_number + 1
            output = self.algorithm.compute(vector, next_round)
            self._forward_token(next_round, output)
        else:
            output = self.algorithm.compute(vector, round_number)
            self._forward_token(round_number, output)

    def _handle_result(self, message: Message) -> None:
        vector = [float(v) for v in message.payload["vector"]]
        if self.is_starter:
            # Result token came full circle; everyone has the answer now.
            return
        self.final_result = vector
        self._forward_result(message.round, vector)

    def _forward_token(self, round_number: int, vector: list[float]) -> None:
        if self.successor is None:
            raise NodeError(f"{self.node_id} has no successor configured")
        self.last_sent_round = round_number
        self.last_sent_vector = list(vector)
        self.transport.send(
            token_message(
                self.node_id, self.successor, round_number, vector,
                query=self.query_id,
            )
        )

    def _forward_result(self, round_number: int, vector: list[float]) -> None:
        if self.successor is None:
            raise NodeError(f"{self.node_id} has no successor configured")
        self.transport.send(
            result_message(
                self.node_id, self.successor, round_number, vector,
                query=self.query_id,
            )
        )

    @property
    def rounds_completed(self) -> int:
        """Rounds the starter has seen complete (starter only; 0 otherwise)."""
        return self._rounds_completed
