"""Failure injection for the simulated network.

Section 3.2: "In case there is a node failure on the ring, the ring can be
reconstructed from scratch or simply by connecting the predecessor and
successor of the failed node."  The injector models crash-stop node failures
and lossy links; the ring module implements the repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .message import Message


class NodeFailedError(RuntimeError):
    """Raised when a message is addressed to (or from) a crashed node."""


@dataclass
class FailureInjector:
    """Deterministic, scriptable failures.

    Parameters
    ----------
    drop_probability:
        Probability an individual message is silently lost in transit.
        Must be in ``[0, 1)``: a certain drop (1.0) would make every
        protocol stall unconditionally, which is a configuration error,
        not a failure model.
    rng:
        Randomness source for probabilistic drops.
    """

    drop_probability: float = 0.0
    rng: random.Random = field(default_factory=random.Random)
    _crashed: set[str] = field(default_factory=set)
    _scheduled: list[tuple[int, str]] = field(default_factory=list)
    _messages_seen: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")

    # -- node crashes ---------------------------------------------------------

    def crash(self, node: str) -> None:
        """Crash-stop ``node``; it neither sends nor receives afterwards."""
        self._crashed.add(node)

    def schedule_crash(self, node: str, after_messages: int) -> None:
        """Crash ``node`` once ``after_messages`` messages have transited.

        Deterministic mid-run failures for tests and experiments: the crash
        fires the first time the transport consults the injector at or past
        the given message count.
        """
        if after_messages < 0:
            raise ValueError("after_messages must be non-negative")
        self._scheduled.append((after_messages, node))

    def recover(self, node: str) -> None:
        self._crashed.discard(node)

    def is_crashed(self, node: str) -> bool:
        return node in self._crashed

    @property
    def crashed_nodes(self) -> frozenset[str]:
        return frozenset(self._crashed)

    # -- transport hook ---------------------------------------------------------

    def should_drop(self, message: Message) -> bool:
        """True when the transport must not deliver ``message``."""
        self._messages_seen += 1
        if self._scheduled:
            due = [n for at, n in self._scheduled if self._messages_seen >= at]
            if due:
                self._crashed.update(due)
                self._scheduled = [
                    (at, n) for at, n in self._scheduled if n not in self._crashed
                ]
        if message.sender in self._crashed or message.receiver in self._crashed:
            return True
        if self.drop_probability and self.rng.random() < self.drop_probability:
            return True
        return False


class NullFailureInjector(FailureInjector):
    """An immutable injector that never fails anything.

    :data:`NO_FAILURES` is module-level and potentially shared by every
    transport that wants "no failure injection"; a shared *mutable*
    :class:`FailureInjector` would be a trap — ``should_drop`` advances the
    message counter and a stray ``crash()`` would poison every sharer.  This
    subclass is safe to share: its observation hook mutates nothing and its
    mutators refuse loudly, directing callers to construct their own
    injector.
    """

    def crash(self, node: str) -> None:
        raise TypeError(
            "NO_FAILURES is immutable and shared; construct your own "
            "FailureInjector to crash nodes"
        )

    def schedule_crash(self, node: str, after_messages: int) -> None:
        raise TypeError(
            "NO_FAILURES is immutable and shared; construct your own "
            "FailureInjector to schedule crashes"
        )

    def recover(self, node: str) -> None:
        raise TypeError(
            "NO_FAILURES is immutable and shared; construct your own "
            "FailureInjector to manage node state"
        )

    def should_drop(self, message: Message) -> bool:
        # Deliberately does NOT call the base implementation: the base
        # advances the shared message counter, which would make one
        # transport's traffic visible to another through the singleton.
        return False


#: Shared do-nothing injector.  Immutable by construction — see
#: :class:`NullFailureInjector`.
NO_FAILURES = NullFailureInjector()
