"""Figure 11: precision of top-k selection vs rounds, for varying k.

The general-protocol counterpart of Figure 6.  Expected shapes: every k
reaches 100% precision after sufficient rounds, and k has no significant
effect on convergence speed.
"""

from __future__ import annotations

from ..config import PAPER_TRIALS
from ..runner import mean_precision_by_round, run_trials
from .common import MAX_ROUNDS, FigureData, Series, TrialSetup, params_with

FIGURE_ID = "fig11"

K_SWEEP = (1, 2, 4, 8)
N_NODES = 10
#: Enough per-node values that every node has a full local top-k.
VALUES_PER_NODE = 16


def _series(k: int, trials: int, seed: int) -> Series:
    setup = TrialSetup(
        n=N_NODES,
        k=k,
        params=params_with(1.0, 0.5, rounds=MAX_ROUNDS),
        trials=trials,
        values_per_node=VALUES_PER_NODE,
        seed=seed,
    )
    results = run_trials(setup)
    return Series(f"k={k}", tuple(mean_precision_by_round(results, MAX_ROUNDS)))


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    figure = FigureData(
        figure_id="fig11",
        title="Measured top-k precision vs rounds (varying k)",
        xlabel="rounds",
        ylabel="precision",
        series=tuple(_series(k, trials, seed) for k in K_SWEEP),
        expectation="all k reach 100%; k does not materially affect convergence",
        metadata={"n": N_NODES, "trials": trials},
    )
    return [figure]
