"""Extension experiment: colluding neighbours and the remapping countermeasure.

Section 4.3 analyses the predecessor+successor coalition and proposes
per-round ring remapping.  This experiment measures (a) coalition LoP vs the
single-adversary LoP across node counts, and (b) how often a *static* pair
of colluders actually sandwiches its chosen victim under the two ring
policies — remapping reduces their useful rounds to chance.
"""

from __future__ import annotations

from ...privacy.adversary import victim_is_sandwiched
from ..config import PAPER_TRIALS
from ..runner import (
    aggregate_coalition_lop,
    aggregate_node_lop,
    run_trials,
)
from .common import FigureData, Series, TrialSetup, params_with

FIGURE_ID = "ext-collusion"

N_SWEEP = (4, 8, 16, 32)
ROUNDS = 8


def _sandwich_rate(results, remap: bool) -> float:
    """Fraction of (trial, round) slots where a fixed pair sandwiches its victim.

    The colluders pick their victim from the round-1 layout (the best they
    can do before the run); remapping then changes the neighbourhood under
    them.
    """
    hits = total = 0
    for result in results:
        ring = result.ring_history[1]
        victim = ring[1]
        colluders = (ring[0], ring[2])
        for round_number in result.event_log.rounds():
            total += 1
            hits += victim_is_sandwiched(result, victim, colluders, round_number)
    return hits / total if total else 0.0


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS

    single_points, coalition_points = [], []
    for n in N_SWEEP:
        setup = TrialSetup(
            n=n, k=1, params=params_with(1.0, 0.5, rounds=ROUNDS),
            trials=trials, seed=seed,
        )
        results = run_trials(setup)
        single, _ = aggregate_node_lop(results)
        coalition, _ = aggregate_coalition_lop(results)
        single_points.append((float(n), single))
        coalition_points.append((float(n), coalition))
    lop_panel = FigureData(
        figure_id="ext-collusion-lop",
        title="Single adversary vs colluding neighbours (average LoP)",
        xlabel="nodes",
        ylabel="average LoP",
        series=(
            Series("successor only", tuple(single_points)),
            Series("colluding pair", tuple(coalition_points)),
        ),
        expectation="collusion strictly increases exposure; both fall with n",
        metadata={"rounds": ROUNDS, "trials": trials},
    )

    rate_points = {"static": [], "remap": []}
    for label, remap in (("static", False), ("remap", True)):
        for n in N_SWEEP:
            setup = TrialSetup(
                n=n,
                k=1,
                params=params_with(1.0, 0.5, rounds=ROUNDS, remap_each_round=remap),
                trials=max(10, trials // 2),
                seed=seed,
            )
            results = run_trials(setup)
            rate_points[label].append((float(n), _sandwich_rate(results, remap)))
    sandwich_panel = FigureData(
        figure_id="ext-collusion-sandwich",
        title="How often a fixed colluding pair sandwiches its victim",
        xlabel="nodes",
        ylabel="sandwich rate",
        series=(
            Series("static ring", tuple(rate_points["static"])),
            Series("remap each round", tuple(rate_points["remap"])),
        ),
        expectation="static: 100% every round; remap: falls toward chance ~2/(n-1)",
        metadata={"rounds": ROUNDS},
    )
    return [lop_panel, sandwich_panel]
