"""Figure 3: analytical precision guarantee vs number of rounds (Equation 3).

Panel (a) varies the initial randomization probability ``p0`` with
``d = 1/2``; panel (b) varies the dampening factor ``d`` with ``p0 = 1``.
Expected shapes: the bound rises monotonically to 1; smaller ``p0`` starts
higher and converges (slightly) sooner; smaller ``d`` converges much faster.
"""

from __future__ import annotations

from ...analysis.correctness import precision_bound_series
from .common import D_SWEEP, FIXED_D, FIXED_P0, MAX_ROUNDS, P0_SWEEP, FigureData, Series

FIGURE_ID = "fig3"


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    """Analytic figure: ``trials``/``seed`` accepted for interface uniformity."""
    del trials, seed
    panel_a = FigureData(
        figure_id="fig3a",
        title="Precision bound vs rounds (varying p0, d=1/2)",
        xlabel="rounds",
        ylabel="precision bound",
        series=tuple(
            Series(
                f"p0={p0}",
                tuple(
                    (float(r), bound)
                    for r, bound in precision_bound_series(p0, FIXED_D, MAX_ROUNDS)
                ),
            )
            for p0 in P0_SWEEP
        ),
        expectation=(
            "monotone to 1.0; smaller p0 gives higher early-round precision"
        ),
    )
    panel_b = FigureData(
        figure_id="fig3b",
        title="Precision bound vs rounds (varying d, p0=1)",
        xlabel="rounds",
        ylabel="precision bound",
        series=tuple(
            Series(
                f"d={d}",
                tuple(
                    (float(r), bound)
                    for r, bound in precision_bound_series(FIXED_P0, d, MAX_ROUNDS)
                ),
            )
            for d in D_SWEEP
        ),
        expectation="monotone to 1.0; smaller d converges much faster",
    )
    return [panel_a, panel_b]
