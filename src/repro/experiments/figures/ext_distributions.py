"""Extension experiment: data-distribution robustness.

Section 5.1: "We experimented with various distributions of data, such as
uniform distribution, normal distribution, and zipf distribution.  The
results are similar so we only report the results for the uniform
distribution."  This experiment validates that claim: precision-vs-rounds
and average LoP for all three distributions, same parameters.
"""

from __future__ import annotations

from ...database.generator import DISTRIBUTIONS
from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, mean_precision_by_round, run_trials
from .common import MAX_ROUNDS, FigureData, Series, TrialSetup, params_with

FIGURE_ID = "ext-distributions"

N_NODES = 10


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    precision_series = []
    lop_points = []
    for distribution in DISTRIBUTIONS:
        setup = TrialSetup(
            n=N_NODES,
            k=1,
            params=params_with(1.0, 0.5, rounds=MAX_ROUNDS),
            trials=trials,
            distribution=distribution,
            seed=seed,
        )
        results = run_trials(setup)
        precision_series.append(
            Series(distribution, tuple(mean_precision_by_round(results, MAX_ROUNDS)))
        )
        average, _ = aggregate_node_lop(results)
        lop_points.append((float(DISTRIBUTIONS.index(distribution)), average))
    precision_panel = FigureData(
        figure_id="ext-distributions-precision",
        title="Precision vs rounds across data distributions",
        xlabel="rounds",
        ylabel="precision",
        series=tuple(precision_series),
        expectation="the paper's claim: all three distributions behave alike",
        metadata={"n": N_NODES, "trials": trials},
    )
    lop_panel = FigureData(
        figure_id="ext-distributions-lop",
        title="Average LoP across data distributions (x = distribution index)",
        xlabel="distribution (0=uniform, 1=normal, 2=zipf)",
        ylabel="average LoP",
        series=(Series("avg LoP", tuple(lop_points)),),
        expectation="similar LoP for all three distributions",
        metadata={"distributions": DISTRIBUTIONS, "trials": trials},
    )
    return [precision_panel, lop_panel]
