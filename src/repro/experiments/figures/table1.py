"""Table 1: the experiment parameter glossary.

The only table in the paper's evaluation.  It has no measured values — it
documents the parameters every experiment sweeps — so its "reproduction" is
the rendered glossary plus the defaults this harness actually uses.
"""

from __future__ import annotations

from ...core.params import ProtocolParams
from ...core.schedule import ExponentialSchedule
from ..config import PAPER_TRIALS, TrialSetup

#: (symbol, description) rows exactly as in the paper's Table 1.
ROWS = (
    ("n", "# of nodes in the system"),
    ("k", "parameter in topk"),
    ("p0", "initial randomization prob."),
    ("d", "dampening factor for randomization prob."),
)


def defaults() -> dict[str, object]:
    """The defaults used throughout this reproduction's experiments."""
    params = ProtocolParams.paper_defaults()
    schedule = params.schedule
    assert isinstance(schedule, ExponentialSchedule)
    reference = TrialSetup(n=4)
    return {
        "n": reference.n,
        "k": reference.k,
        "p0": schedule.p0,
        "d": schedule.d,
        "trials": PAPER_TRIALS,
        "domain": f"[{int(reference.domain.low)}, {int(reference.domain.high)}]",
        "distribution": reference.distribution,
    }


def run() -> str:
    """Render Table 1 plus this harness's concrete defaults."""
    width = max(len(desc) for _, desc in ROWS)
    lines = ["== Table 1: Experiment Parameters =="]
    lines.append(f"{'Param.':<8} {'Description':<{width}}")
    lines.append("-" * (9 + width))
    for symbol, description in ROWS:
        lines.append(f"{symbol:<8} {description:<{width}}")
    lines.append("")
    lines.append("defaults used by this reproduction:")
    for key, value in defaults().items():
        lines.append(f"  {key:<14} {value}")
    return "\n".join(lines)
