"""Extension experiment: measured communication cost vs the Section 4.2 model.

The analysis says total cost is (messages per round = n) x (rounds from
Equation 4, independent of n), plus the termination round.  The simulator
counts every message, so we can overlay measurement on model — including the
group-parallel variant's cost and latency.
"""

from __future__ import annotations

import random

from ...analysis.efficiency import grouped_total_messages, total_messages
from ...core.driver import SESSION, RunConfig, run_protocol_on_vectors
from ...database.generator import DataGenerator
from ...database.query import PAPER_DOMAIN, TopKQuery
from ...extensions.groups import run_grouped_max
from ..config import PAPER_TRIALS
from .common import FigureData, Series, params_with

FIGURE_ID = "ext-communication"

N_SWEEP = (8, 16, 32, 64, 128)
GROUP_SIZE = 8
EPSILON = 1e-3


def _vectors(n: int, seed: int) -> dict[str, list[float]]:
    generator = DataGenerator(rng=random.Random(seed))
    return {
        f"n{i}": [float(v) for v in vs]
        for i, vs in enumerate(generator.node_datasets(n, 3))
    }


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = max(3, (trials or PAPER_TRIALS) // 10)  # costs have tiny variance
    query = TopKQuery(table="t", attribute="v", k=1, domain=PAPER_DOMAIN)
    params = params_with(1.0, 0.5)

    flat_measured, grouped_measured = [], []
    flat_model, grouped_model = [], []
    flat_latency, grouped_latency = [], []
    for n in N_SWEEP:
        flat_total = grouped_total = 0.0
        flat_secs = grouped_secs = 0.0
        for t in range(trials):
            vectors = _vectors(n, seed * 1000 + t)
            # Pinned to the transport-backed session path: this figure
            # measures communication cost, and the byte/message accounting
            # it plots should come from real encoded messages on a real
            # (simulated) wire — not the kernel's closed-form reconstruction
            # of them, however bit-identical.
            flat = run_protocol_on_vectors(
                vectors, query, RunConfig(params=params, seed=seed + t),
                backend=SESSION,
            )
            grouped = run_grouped_max(
                vectors, query, group_size=GROUP_SIZE, params=params, seed=seed + t
            )
            flat_total += flat.stats.messages_total
            grouped_total += grouped.messages_total
            flat_secs += flat.simulated_seconds
            grouped_secs += grouped.simulated_seconds
        flat_measured.append((float(n), flat_total / trials))
        grouped_measured.append((float(n), grouped_total / trials))
        flat_model.append((float(n), float(total_messages(n, 1.0, 0.5, EPSILON))))
        grouped_model.append(
            (float(n), float(grouped_total_messages(n, GROUP_SIZE, 1.0, 0.5, EPSILON)))
        )
        flat_latency.append((float(n), flat_secs / trials))
        grouped_latency.append((float(n), grouped_secs / trials))

    messages_panel = FigureData(
        figure_id="ext-communication-messages",
        title="Messages vs nodes: measured vs Section 4.2 model",
        xlabel="nodes",
        ylabel="messages per run",
        series=(
            Series("flat measured", tuple(flat_measured)),
            Series("flat model", tuple(flat_model)),
            Series("grouped measured", tuple(grouped_measured)),
            Series("grouped model", tuple(grouped_model)),
        ),
        expectation="linear in n; measurement within the analytic envelope",
        metadata={"epsilon": EPSILON, "group_size": GROUP_SIZE},
    )
    latency_panel = FigureData(
        figure_id="ext-communication-latency",
        title="Simulated wall-clock vs nodes: flat ring vs grouped",
        xlabel="nodes",
        ylabel="simulated seconds",
        series=(
            Series("flat", tuple(flat_latency)),
            Series("grouped", tuple(grouped_latency)),
        ),
        expectation="grouping flattens the latency growth (parallel groups)",
        metadata={"group_size": GROUP_SIZE},
    )
    return [messages_panel, latency_panel]
