"""Figure 8: measured loss of privacy vs number of nodes (max selection).

Each point is the system average LoP (per-node peak over rounds, averaged
over nodes and trials).  Expected shapes: LoP decreases with n — the more
nodes, the faster the global value climbs and the fewer nodes ever expose
their own values.
"""

from __future__ import annotations

from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, run_trials
from .common import (
    D_SWEEP,
    FIXED_D,
    FIXED_P0,
    P0_SWEEP,
    FigureData,
    Series,
    TrialSetup,
    params_with,
)

FIGURE_ID = "fig8"

#: Node-count sweep.
N_SWEEP = (4, 8, 16, 32, 64)
#: Rounds per run: enough for the default schedules to converge.
ROUNDS = 10


def _series(p0: float, d: float, label: str, trials: int, seed: int) -> Series:
    points = []
    for n in N_SWEEP:
        setup = TrialSetup(
            n=n,
            k=1,
            params=params_with(p0, d, rounds=ROUNDS),
            trials=trials,
            seed=seed,
        )
        average, _worst = aggregate_node_lop(run_trials(setup))
        points.append((float(n), average))
    return Series(label, tuple(points))


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    panel_a = FigureData(
        figure_id="fig8a",
        title="Measured LoP vs number of nodes (varying p0, d=1/2)",
        xlabel="nodes",
        ylabel="average LoP",
        series=tuple(
            _series(p0, FIXED_D, f"p0={p0}", trials, seed) for p0 in P0_SWEEP
        ),
        expectation="LoP decreases with n for every p0",
        metadata={"rounds": ROUNDS, "trials": trials},
    )
    panel_b = FigureData(
        figure_id="fig8b",
        title="Measured LoP vs number of nodes (varying d, p0=1)",
        xlabel="nodes",
        ylabel="average LoP",
        series=tuple(
            _series(FIXED_P0, d, f"d={d}", trials, seed) for d in D_SWEEP
        ),
        expectation="LoP decreases with n for every d",
        metadata={"rounds": ROUNDS, "trials": trials},
    )
    return [panel_a, panel_b]
