"""Shared sweeps and helpers for the per-figure experiment modules.

The parameter sweeps mirror the paper's panels: "(a)" panels vary the
initial randomization probability ``p0`` at fixed ``d = 1/2``; "(b)" panels
vary the dampening factor ``d`` at fixed ``p0 = 1``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...core.params import ProtocolParams
from ..config import PAPER_TRIALS, TrialSetup
from ...core.results import ProtocolResult
from ..runner import run_trials, run_trials_many
from ..series import FigureData, Series

#: p0 values swept in the "(a)" panels (paper plots a small spread of p0).
P0_SWEEP = (0.25, 0.5, 1.0)
#: d values swept in the "(b)" panels.
D_SWEEP = (0.25, 0.5, 0.75)
#: Fixed counterparts.
FIXED_D = 0.5
FIXED_P0 = 1.0
#: Rounds plotted on the x axis of the vs-rounds figures.
MAX_ROUNDS = 8

__all__ = [
    "D_SWEEP",
    "FIXED_D",
    "FIXED_P0",
    "MAX_ROUNDS",
    "P0_SWEEP",
    "PAPER_TRIALS",
    "FigureData",
    "Series",
    "TrialSetup",
    "params_with",
    "run_trials",
    "run_trials_many",
    "sweep_results",
]


def params_with(
    p0: float, d: float, rounds: int | None = None, **overrides: object
) -> ProtocolParams:
    """ProtocolParams with an exponential schedule and optional fixed rounds."""
    return ProtocolParams.with_randomization(p0, d, rounds=rounds, **overrides)


def sweep_results(setups: Sequence[TrialSetup]) -> list[list[ProtocolResult]]:
    """Trials for a whole sweep at once, one result list per setup.

    A thin alias for :func:`repro.experiments.runner.run_trials_many` under
    the ambient ``jobs`` default: with a worker pool active, the trials of
    *all* sweep points interleave across workers (no idle tail between
    points), and the per-setup result lists are bit-identical to running
    each setup serially.
    """
    return run_trials_many(setups)
