"""Extension experiment: the Equation 6 bound against measured LoP.

Section 5.3 claims the measured per-round loss of privacy "matches our
analysis in Section 4".  This experiment overlays the Equation 6 analytic
term and the measured per-round average LoP on the same axes (n = 4, the
paper's Figure 7 setting) so the claim is checkable at a glance: measurement
must track the bound's *shape* (zero at round 1 for p0 = 1, peak at round 2,
decay) and stay at or below it.
"""

from __future__ import annotations

from ...analysis.privacy_bounds import expected_lop_series
from ..config import PAPER_TRIALS
from ..runner import mean_lop_by_round, run_trials
from .common import MAX_ROUNDS, FigureData, Series, TrialSetup, params_with

FIGURE_ID = "ext-bound-check"

N_NODES = 4
PAIRS = ((1.0, 0.5), (0.5, 0.5), (1.0, 0.25))


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    panels = []
    for p0, d in PAIRS:
        setup = TrialSetup(
            n=N_NODES,
            k=1,
            params=params_with(p0, d, rounds=MAX_ROUNDS),
            trials=trials,
            seed=seed,
        )
        measured = mean_lop_by_round(run_trials(setup), MAX_ROUNDS)
        bound = [
            (float(r), v) for r, v in expected_lop_series(p0, d, MAX_ROUNDS)
        ]
        panels.append(
            FigureData(
                figure_id=f"ext-bound-check-p{p0}-d{d}",
                title=f"Measured LoP vs Eq. 6 bound (p0={p0}, d={d}, n=4)",
                xlabel="round",
                ylabel="LoP",
                series=(
                    Series("Eq. 6 bound", tuple(bound)),
                    Series("measured", tuple(measured)),
                ),
                expectation="measured tracks the bound's shape and stays below it",
                metadata={"n": N_NODES, "trials": trials, "p0": p0, "d": d},
            )
        )
    return panels
