"""Extension experiment: noise-placement strategies (Section 7's design axis).

Where injected noise lands in the admissible range trades off three ways:
convergence speed, value-exposure LoP (fast-climbing vectors mean fewer
reveals), and distribution exposure (noise near the hidden value is
informative to a Bayesian coalition).  This experiment measures the first
two per strategy; ``ext-bayes`` covers the third axis for the schedule.
"""

from __future__ import annotations

from ...core.noise import HighBiasedNoise, LowBiasedNoise, UniformNoise
from ...core.params import ProtocolParams
from ...core.schedule import ExponentialSchedule
from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, mean_precision_by_round, run_trials
from .common import MAX_ROUNDS, FigureData, Series, TrialSetup

FIGURE_ID = "ext-noise"

N_NODES = 8
STRATEGIES = (
    ("uniform", UniformNoise()),
    ("high-biased", HighBiasedNoise(order=3)),
    ("low-biased", LowBiasedNoise(order=3)),
)


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    precision_series = []
    lop_points = []
    for index, (label, strategy) in enumerate(STRATEGIES):
        params = ProtocolParams(
            schedule=ExponentialSchedule(1.0, 0.5),
            rounds=MAX_ROUNDS,
            noise=strategy,
        )
        setup = TrialSetup(n=N_NODES, k=1, params=params, trials=trials, seed=seed)
        results = run_trials(setup)
        precision_series.append(
            Series(label, tuple(mean_precision_by_round(results, MAX_ROUNDS)))
        )
        average, _ = aggregate_node_lop(results)
        lop_points.append((float(index), average))
    precision_panel = FigureData(
        figure_id="ext-noise-precision",
        title="Precision vs rounds per noise-placement strategy",
        xlabel="rounds",
        ylabel="precision",
        series=tuple(precision_series),
        expectation="high-biased converges fastest; all reach 100%",
        metadata={"n": N_NODES, "trials": trials},
    )
    lop_panel = FigureData(
        figure_id="ext-noise-lop",
        title="Average LoP per noise-placement strategy",
        xlabel="strategy (0=uniform, 1=high-biased, 2=low-biased)",
        ylabel="average LoP",
        series=(Series("avg LoP", tuple(lop_points)),),
        expectation=(
            "high-biased < uniform < low-biased: a fast-climbing vector "
            "means fewer nodes ever reveal their real values"
        ),
        metadata={"strategies": [label for label, _ in STRATEGIES], "trials": trials},
    )
    return [precision_panel, lop_panel]
