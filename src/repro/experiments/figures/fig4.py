"""Figure 4: required number of rounds vs precision guarantee (Equation 4).

X axis: the error bound ``ε`` on a log scale (the paper plots decreasing ε
rightwards; we plot ε directly with log x).  Y axis: ``r_min``.  Expected
shapes: ``r_min`` grows only as ``O(sqrt(log 1/ε))``; ``d`` has the larger
effect on the required rounds, ``p0`` a smaller one.
"""

from __future__ import annotations

from ...analysis.efficiency import rmin_series
from .common import D_SWEEP, FIXED_D, FIXED_P0, P0_SWEEP, FigureData, Series

FIGURE_ID = "fig4"

#: ε sweep: 10^-1 .. 10^-7 (the paper's log-scaled axis).
EPSILONS = tuple(10.0**-e for e in range(1, 8))


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    """Analytic figure: ``trials``/``seed`` accepted for interface uniformity."""
    del trials, seed
    panel_a = FigureData(
        figure_id="fig4a",
        title="Minimum rounds vs error bound (varying p0, d=1/2)",
        xlabel="epsilon",
        ylabel="r_min",
        log_x=True,
        series=tuple(
            Series(
                f"p0={p0}",
                tuple(
                    (eps, float(r))
                    for eps, r in rmin_series(p0, FIXED_D, list(EPSILONS))
                ),
            )
            for p0 in P0_SWEEP
        ),
        expectation="slow O(sqrt(log 1/eps)) growth; p0 shifts curves slightly",
    )
    panel_b = FigureData(
        figure_id="fig4b",
        title="Minimum rounds vs error bound (varying d, p0=1)",
        xlabel="epsilon",
        ylabel="r_min",
        log_x=True,
        series=tuple(
            Series(
                f"d={d}",
                tuple(
                    (eps, float(r))
                    for eps, r in rmin_series(FIXED_P0, d, list(EPSILONS))
                ),
            )
            for d in D_SWEEP
        ),
        expectation="d dominates: smaller d needs clearly fewer rounds",
    )
    return [panel_a, panel_b]
