"""Figure 6: empirical precision of max selection vs number of rounds.

The empirical counterpart of Figure 3: run the probabilistic max protocol
(k = 1) and measure the fraction of trials whose global value equals the
true maximum at the end of each round.  Expected shapes match the analytic
bounds: precision reaches 100% with rounds; smaller ``p0`` is higher in the
first round (small margin); smaller ``d`` reaches 100% much faster.
"""

from __future__ import annotations

from ..config import PAPER_TRIALS
from ..runner import mean_precision_by_round
from .common import (
    D_SWEEP,
    FIXED_D,
    FIXED_P0,
    MAX_ROUNDS,
    P0_SWEEP,
    FigureData,
    Series,
    TrialSetup,
    params_with,
    sweep_results,
)

FIGURE_ID = "fig6"

#: Node count for the precision experiments (paper does not fix one; the
#: result is n-independent per Section 4.2's analysis).
N_NODES = 10


def _setup(p0: float, d: float, trials: int, seed: int) -> TrialSetup:
    return TrialSetup(
        n=N_NODES,
        k=1,
        params=params_with(p0, d, rounds=MAX_ROUNDS),
        trials=trials,
        seed=seed,
    )


def _sweep(labels_and_setups: list[tuple[str, TrialSetup]]) -> tuple[Series, ...]:
    # All sweep points of a panel run as one batch so a worker pool stays
    # busy across point boundaries; serial runs are unaffected.
    setups = [setup for _label, setup in labels_and_setups]
    return tuple(
        Series(label, tuple(mean_precision_by_round(results, MAX_ROUNDS)))
        for (label, _setup), results in zip(labels_and_setups, sweep_results(setups))
    )


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    panel_a = FigureData(
        figure_id="fig6a",
        title="Measured max-selection precision vs rounds (varying p0, d=1/2)",
        xlabel="rounds",
        ylabel="precision",
        series=_sweep(
            [(f"p0={p0}", _setup(p0, FIXED_D, trials, seed)) for p0 in P0_SWEEP]
        ),
        expectation="matches Figure 3a: to 100%, smaller p0 higher early",
        metadata={"n": N_NODES, "trials": trials},
    )
    panel_b = FigureData(
        figure_id="fig6b",
        title="Measured max-selection precision vs rounds (varying d, p0=1)",
        xlabel="rounds",
        ylabel="precision",
        series=_sweep(
            [(f"d={d}", _setup(FIXED_P0, d, trials, seed)) for d in D_SWEEP]
        ),
        expectation="matches Figure 3b: smaller d reaches 100% much faster",
        metadata={"n": N_NODES, "trials": trials},
    )
    return [panel_a, panel_b]
