"""Extension experiment: differential privacy vs the paper's LoP metric.

The paper quantifies leakage as LoP — the probability a semi-honest
coalition pins a node's private value during protocol execution.  The DP
query mode (:mod:`repro.privacy.dp`) spends a different currency: every
released answer is perturbed so adjacent datasets are (ε, δ)-indistinguishable,
regardless of what the coalition observed in transit.  This experiment puts
the two on one axis:

* **utility panel** — mean absolute error of released answers (normalized
  by the domain width) vs ε, measured through a real
  :class:`~repro.federation.coordinator.Federation` running the DP mode
  end to end (exact inner protocol, so all error is calibrated noise);
* **privacy panel** — the analytic one-shot distinguishing advantage bound
  ``(e^ε − 1)/(e^ε + 1)``, the *measured* total-variation distance between
  release distributions on adjacent COUNTs, and the paper protocol's
  measured average LoP (n=4, paper defaults) as a horizontal reference:
  the ε below which a single DP release leaks less than one protocol run.

Everything is seeded: reruns produce byte-identical CSVs.
"""

from __future__ import annotations

import random
from collections import Counter

from ...database.database import PrivateDatabase
from ...database.query import Domain
from ...database.schema import Schema
from ...federation.coordinator import Federation
from ...privacy.dp import DpPolicy, calibrate_mechanism
from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, run_trials
from .common import FigureData, Series, TrialSetup

FIGURE_ID = "ext-dp"

#: Epsilons swept on the x axis (log-ish spread around the useful range).
EPSILON_SWEEP = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
#: Fresh releases averaged per (ε, operation) point in the utility panel.
RELEASES_PER_POINT = 8
#: Federation shape: small and exact, so noise is the only error source.
N_PARTIES = 4
ROWS_PER_PARTY = 25
DOMAIN = Domain(low=0.0, high=10_000.0, integral=True)
TABLE = "data"
ATTRIBUTE = "value"
#: Operations measured in the utility panel, with the statement template.
OPERATIONS = (
    ("MAX", "SELECT MAX({attr}) FROM {table}"),
    ("SUM", "SELECT SUM({attr}) FROM {table}"),
    ("COUNT", "SELECT COUNT({attr}) FROM {table}"),
)


def _build_federation(seed: int) -> tuple[Federation, dict[str, float]]:
    """An exact federation (``p0=0``) over seeded integer rows.

    Returns the federation plus the true (un-noised) answer per operation,
    computed directly from the generated rows.
    """
    from ...core.params import ProtocolParams
    from ...core.schedule import ExponentialSchedule
    from ...core.driver import RunConfig

    config = RunConfig(
        protocol="probabilistic",
        params=ProtocolParams(schedule=ExponentialSchedule(p0=0.0), rounds=4),
    )
    federation = Federation(
        domain=DOMAIN,
        config=config,
        seed=seed,
        dp=DpPolicy(seed=seed),  # unmetered: the sweep needs unlimited budget
    )
    rng = random.Random(seed)
    rows: list[int] = []
    for party in range(N_PARTIES):
        db = PrivateDatabase(f"org{party:02d}")
        table = db.create_table(TABLE, Schema.of((ATTRIBUTE, "INTEGER")))
        held = [
            rng.randint(int(DOMAIN.low), int(DOMAIN.high))
            for _ in range(ROWS_PER_PARTY)
        ]
        rows.extend(held)
        table.insert_many({ATTRIBUTE: value} for value in held)
        federation.register(db)
    truth = {
        "MAX": float(max(rows)),
        "SUM": float(sum(rows)),
        "COUNT": float(len(rows)),
    }
    return federation, truth


def _utility_panel(trials: int, seed: int) -> FigureData:
    """Normalized mean absolute release error vs ε, through the federation.

    Each point averages :data:`RELEASES_PER_POINT` *fresh* releases: the
    result cache is invalidated between repeats, so the release counter
    advances and every repeat draws new calibrated noise (a cached repeat
    would replay the same bytes by design — that is the free-re-serve
    guarantee, not a new sample).
    """
    releases = max(2, min(RELEASES_PER_POINT, trials))
    federation, truth = _build_federation(seed)
    width = DOMAIN.high - DOMAIN.low
    scale = {"MAX": width, "SUM": width, "COUNT": float(N_PARTIES * ROWS_PER_PARTY)}
    series = []
    for operation, template in OPERATIONS:
        statement = template.format(attr=ATTRIBUTE, table=TABLE)
        points = []
        for epsilon in EPSILON_SWEEP:
            text = f"{statement} WITH SLO(dp_epsilon={epsilon})"
            errors = []
            for _ in range(releases):
                federation.invalidate_cache()
                outcome = federation.execute(text)
                errors.append(abs(outcome.values[0] - truth[operation]))
            points.append(
                (epsilon, sum(errors) / len(errors) / scale[operation])
            )
        series.append(Series(operation, tuple(points)))
    return FigureData(
        figure_id="ext-dp-utility",
        title="DP release error vs epsilon (exact inner protocol)",
        xlabel="epsilon",
        ylabel="mean |error| / domain width",
        series=tuple(series),
        expectation="error falls roughly as 1/epsilon for every operation",
        metadata={
            "releases_per_point": releases,
            "parties": N_PARTIES,
            "rows_per_party": ROWS_PER_PARTY,
            "epsilon_sweep": list(EPSILON_SWEEP),
        },
    )


def _measured_tv(epsilon: float, samples: int, rng: random.Random) -> float:
    """Empirical total-variation distance between adjacent COUNT releases.

    Adjacent COUNTs differ by one row (sensitivity 1); the release
    mechanism is the two-sided geometric.  TV is estimated from sampled
    histograms of ``noise`` vs ``noise + 1``.
    """
    mechanism = calibrate_mechanism(1.0, epsilon, integral=True)
    base = Counter(int(mechanism.draw(rng)) for _ in range(samples))
    shifted = Counter(value + 1 for value in base.elements())
    support = set(base) | set(shifted)
    return 0.5 * sum(
        abs(base.get(k, 0) - shifted.get(k, 0)) for k in support
    ) / samples


def _privacy_panel(trials: int, seed: int) -> FigureData:
    """Distinguishing advantage vs ε, against the paper's LoP as reference."""
    import math

    samples = max(2_000, 200 * trials)
    rng = random.Random(seed + 1)
    bound_points = []
    tv_points = []
    for epsilon in EPSILON_SWEEP:
        bound_points.append(
            (epsilon, (math.exp(epsilon) - 1.0) / (math.exp(epsilon) + 1.0))
        )
        tv_points.append((epsilon, _measured_tv(epsilon, samples, rng)))
    setup = TrialSetup(n=N_PARTIES, k=1, trials=trials, seed=seed)
    lop_average, _ = aggregate_node_lop(run_trials(setup))
    lop_points = tuple((epsilon, lop_average) for epsilon in EPSILON_SWEEP)
    return FigureData(
        figure_id="ext-dp-privacy",
        title="Distinguishing advantage vs epsilon, LoP reference",
        xlabel="epsilon",
        ylabel="advantage / probability",
        series=(
            Series("advantage bound (e^eps-1)/(e^eps+1)", tuple(bound_points)),
            Series("measured TV, adjacent COUNTs", tuple(tv_points)),
            Series(f"paper protocol avg LoP (n={N_PARTIES})", lop_points),
        ),
        expectation=(
            "measured TV hugs the analytic bound from below; releases with "
            "epsilon below the LoP crossover leak less than one protocol run"
        ),
        metadata={
            "samples": samples,
            "trials": trials,
            "epsilon_sweep": list(EPSILON_SWEEP),
        },
    )


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    return [_utility_panel(trials, seed), _privacy_panel(trials, seed)]
