"""Figure 7: measured loss of privacy per round for max selection (n = 4).

The paper reports n = 4 because the per-round trends are most pronounced
with few nodes.  Expected shapes: with smaller ``p0`` the peak LoP is in
round 1, decaying as the protocol converges; with ``p0 = 1`` round 1 has
zero loss (every contributor randomizes) and the peak moves to round 2; a
larger ``p0`` lowers the peak; a smaller ``d`` raises it.
"""

from __future__ import annotations

from ..config import PAPER_TRIALS
from ..runner import mean_lop_by_round, run_trials
from .common import (
    D_SWEEP,
    FIXED_D,
    FIXED_P0,
    MAX_ROUNDS,
    P0_SWEEP,
    FigureData,
    Series,
    TrialSetup,
    params_with,
)

FIGURE_ID = "fig7"

#: The paper reports this figure for a 4-node system.
N_NODES = 4


def _series(p0: float, d: float, label: str, trials: int, seed: int) -> Series:
    setup = TrialSetup(
        n=N_NODES,
        k=1,
        params=params_with(p0, d, rounds=MAX_ROUNDS),
        trials=trials,
        seed=seed,
    )
    results = run_trials(setup)
    return Series(label, tuple(mean_lop_by_round(results, MAX_ROUNDS)))


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    panel_a = FigureData(
        figure_id="fig7a",
        title="Measured LoP per round, max selection, n=4 (varying p0, d=1/2)",
        xlabel="round",
        ylabel="average LoP",
        series=tuple(
            _series(p0, FIXED_D, f"p0={p0}", trials, seed) for p0 in P0_SWEEP
        ),
        expectation=(
            "p0=1: zero in round 1, peak in round 2, then decay; "
            "smaller p0 peaks in round 1; larger p0 has the lower peak"
        ),
        metadata={"n": N_NODES, "trials": trials},
    )
    panel_b = FigureData(
        figure_id="fig7b",
        title="Measured LoP per round, max selection, n=4 (varying d, p0=1)",
        xlabel="round",
        ylabel="average LoP",
        series=tuple(
            _series(FIXED_P0, d, f"d={d}", trials, seed) for d in D_SWEEP
        ),
        expectation=(
            "all zero in round 1, peak in round 2, decay after; "
            "smaller d peaks higher"
        ),
        metadata={"n": N_NODES, "trials": trials},
    )
    return [panel_a, panel_b]
