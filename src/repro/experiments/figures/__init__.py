"""Per-figure experiment modules and the experiment registry."""

from .registry import EXPERIMENTS, Experiment, all_experiment_ids, run_experiment

__all__ = ["EXPERIMENTS", "Experiment", "all_experiment_ids", "run_experiment"]
