"""Figure 12: loss of privacy vs k — probabilistic vs naive protocols.

Expected shapes: the probabilistic protocol stays far below both naive
variants for every k, but its LoP *increases* with k (a node exposes more of
its values to its successor when it inserts a larger local vector); the
naive worst case stays ~100% (the fixed starting node reveals its entire
local top-k).
"""

from __future__ import annotations

from ...core.driver import ANONYMOUS_NAIVE, NAIVE, PROBABILISTIC
from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, run_trials
from .common import FigureData, Series, TrialSetup, params_with

FIGURE_ID = "fig12"

K_SWEEP = (1, 2, 4, 8, 16)
N_NODES = 10
ROUNDS = 10
VALUES_PER_NODE = 32
PROTOCOL_LABELS = (
    (NAIVE, "naive"),
    (ANONYMOUS_NAIVE, "anonymous-naive"),
    (PROBABILISTIC, "probabilistic"),
)


def _measure(trials: int, seed: int) -> dict[str, list[tuple[float, float, float]]]:
    """protocol label -> [(k, average, worst)] over the k sweep."""
    measured: dict[str, list[tuple[float, float, float]]] = {}
    for protocol, label in PROTOCOL_LABELS:
        rows = []
        for k in K_SWEEP:
            setup = TrialSetup(
                n=N_NODES,
                k=k,
                protocol=protocol,
                params=params_with(1.0, 0.5, rounds=ROUNDS),
                trials=trials,
                values_per_node=VALUES_PER_NODE,
                seed=seed,
            )
            average, worst = aggregate_node_lop(run_trials(setup))
            rows.append((float(k), average, worst))
        measured[label] = rows
    return measured


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    measured = _measure(trials, seed)
    panel_a = FigureData(
        figure_id="fig12a",
        title="Average LoP vs k: naive vs anonymous vs probabilistic",
        xlabel="k",
        ylabel="average LoP",
        series=tuple(
            Series(label, tuple((k, avg) for k, avg, _ in rows))
            for label, rows in measured.items()
        ),
        expectation=(
            "probabilistic well below naive baselines but increasing with k"
        ),
        metadata={"n": N_NODES, "trials": trials, "rounds": ROUNDS},
    )
    panel_b = FigureData(
        figure_id="fig12b",
        title="Worst-case LoP vs k: naive vs anonymous vs probabilistic",
        xlabel="k",
        ylabel="worst-case LoP",
        series=tuple(
            Series(label, tuple((k, worst) for k, _, worst in rows))
            for label, rows in measured.items()
        ),
        expectation="naive ~100% at its starter for all k; probabilistic low",
        metadata={"n": N_NODES, "trials": trials, "rounds": ROUNDS},
    )
    return [panel_a, panel_b]
