"""Extension experiment: multi-round Bayesian aggregation (Section 7, #1).

How many *bits* about a victim's value does a colluding-neighbour pair
accumulate as rounds progress, for different initial randomization
probabilities?  The paper conjectures aggregated information "may help with
determining the probability distribution of the value"; this experiment
measures it with the exact posterior of
:mod:`repro.privacy.distribution`.
"""

from __future__ import annotations

from collections import defaultdict

from ...privacy.distribution import entropy_reduction_by_round
from ..config import PAPER_TRIALS
from ..runner import run_trials
from .common import FigureData, P0_SWEEP, Series, TrialSetup, params_with

FIGURE_ID = "ext-bayes"

N_NODES = 6
ROUNDS = 8


def _aggregation_curve(p0: float, trials: int, seed: int) -> list[tuple[float, float]]:
    setup = TrialSetup(
        n=N_NODES,
        k=1,
        params=params_with(p0, 0.5, rounds=ROUNDS),
        trials=trials,
        seed=seed,
    )
    results = run_trials(setup)
    sums: dict[int, float] = defaultdict(float)
    counts: dict[int, int] = defaultdict(int)
    for result in results:
        for victim in result.ring_order:
            for round_number, bits in entropy_reduction_by_round(result, victim):
                sums[round_number] += bits
                counts[round_number] += 1
    return [
        (float(r), sums[r] / counts[r]) for r in sorted(sums) if counts[r]
    ]


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    figure = FigureData(
        figure_id="ext-bayes",
        title="Coalition's cumulative information gain vs rounds (bits)",
        xlabel="rounds aggregated",
        ylabel="mean entropy reduction (bits)",
        series=tuple(
            Series(f"p0={p0}", tuple(_aggregation_curve(p0, trials, seed)))
            for p0 in P0_SWEEP
        ),
        expectation=(
            "gain grows with aggregated rounds and saturates; larger p0 "
            "(more noise) keeps the curve lower"
        ),
        metadata={"n": N_NODES, "rounds": ROUNDS, "trials": trials},
    )
    return [figure]
