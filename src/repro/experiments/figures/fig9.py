"""Figure 9: the privacy/efficiency tradeoff across (p0, d) pairs.

For each randomization-parameter pair, x is the measured average LoP and y
is the Equation 4 round count needed for the paper's precision guarantee
(ε = 0.001).  Expected shape: ``p0`` dominates privacy (x axis), ``d``
dominates cost (y axis); the pair (1, 1/2) sits at the lower-left knee and
is adopted as the default for the remaining experiments.
"""

from __future__ import annotations

from ...analysis.efficiency import minimum_rounds
from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, run_trials
from .common import FigureData, Series, TrialSetup, params_with

FIGURE_ID = "fig9"

#: The (p0, d) grid; one series per d so the scatter stays readable.
P0_GRID = (0.25, 0.5, 0.75, 1.0)
D_GRID = (0.125, 0.25, 0.5, 0.75)
#: Precision guarantee used for the y axis, as in the paper.
EPSILON = 1e-3
#: Node count for the LoP measurement.
N_NODES = 10
#: Rounds per run (enough for every grid point's schedule to converge).
ROUNDS = 12


def measure_point(
    p0: float, d: float, trials: int, seed: int
) -> tuple[float, float]:
    """(average LoP, r_min) for one parameter pair."""
    setup = TrialSetup(
        n=N_NODES,
        k=1,
        params=params_with(p0, d, rounds=ROUNDS),
        trials=trials,
        seed=seed,
    )
    average, _worst = aggregate_node_lop(run_trials(setup))
    return average, float(minimum_rounds(p0, d, EPSILON))


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    series = []
    for d in D_GRID:
        points = []
        for p0 in P0_GRID:
            lop, rmin = measure_point(p0, d, trials, seed)
            points.append((lop, rmin))
        series.append(Series(f"d={d}", tuple(points)))
    figure = FigureData(
        figure_id="fig9",
        title="Privacy (x) vs efficiency (y) across (p0, d) pairs",
        xlabel="average LoP (eps=0.001 guarantee)",
        ylabel="rounds required",
        series=tuple(series),
        expectation=(
            "p0 dominates LoP, d dominates rounds; (p0=1, d=1/2) is the knee"
        ),
        metadata={
            "n": N_NODES,
            "trials": trials,
            "epsilon": EPSILON,
            "p0_grid": P0_GRID,
        },
    )
    return [figure]
