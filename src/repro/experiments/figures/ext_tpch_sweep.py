"""Extension experiment: TPC-H scale-factor sweep of extraction and planning.

The ROADMAP's production-scale question, asked as a figure: as each party's
``lineitem`` table grows by TPC-H scale factor, (a) how does the node-local
extraction step — the only part of a protocol run that touches raw rows —
scale on the columnar engine vs the row store, with and without a ``where``
predicate (the vectorized mask path vs the scalar fallback), and (b) does
the query planner's cost model stay accurate, i.e. does predicted-vs-actual
drift stay flat as data volume grows?

The second panel is the planner's scale-invariance claim made measurable:
rounds, messages and simulated latency are functions of ``(n, k, params)``
only, so their drift should be identically zero at every scale factor; any
deviation means data volume leaked into a quantity the model says is
volume-free.

Scale factors here are deliberately tiny (thousands of rows per party, not
millions) so the figure runs in CI; the sweep is the harness for the
production-scale runs noted as headroom in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import time

from ...database.predicates import col
from ...database.tpch import (
    LINEITEM_ROWS_PER_SF,
    TPCH_ATTRIBUTE,
    TPCH_PRICE_DOMAIN,
    lineitem_database,
    lineitem_databases,
)
from ...federation.coordinator import Federation
from ...planner.accuracy import POINT_METRICS, PredictionLedger
from ...planner.spec import parse_spec
from ..series import FigureData, Series

FIGURE_ID = "ext-tpch-sweep"

#: Swept TPC-H scale factors (rows per party = sf x 6M).  Small enough for
#: CI; production runs pass larger factors through the same harness.
SF_SWEEP = (0.0005, 0.001, 0.002, 0.004)

PARTIES = 3
TOP_K = 5
#: Selective predicate for the filtered-extraction series (~half the rows).
_PREDICATE = col("l_quantity") >= 25


def _time_extraction(table, *, where, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one node-local filtered top-k."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        table.top_k(TPCH_ATTRIBUTE, TOP_K, where=where)
        best = min(best, time.perf_counter() - start)
    return best


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    repeats = max(3, (trials or 30) // 10)

    series: dict[str, list[tuple[float, float]]] = {
        "columnar top-k": [],
        "row top-k": [],
        "columnar filtered top-k (mask)": [],
        "row filtered top-k (scalar)": [],
    }
    drift_points: dict[str, list[tuple[float, float]]] = {
        metric: [] for metric in POINT_METRICS
    }

    for sf in SF_SWEEP:
        rows = int(sf * LINEITEM_ROWS_PER_SF)
        for engine, label in (("columnar", "columnar"), ("row", "row")):
            table = lineitem_database(
                "party0", seed=seed, rows=rows, engine=engine
            ).table("lineitem")
            series[f"{label} top-k"].append(
                (sf, _time_extraction(table, where=None, repeats=repeats))
            )
            suffix = "(mask)" if label == "columnar" else "(scalar)"
            series[f"{label} filtered top-k {suffix}"].append(
                (sf, _time_extraction(table, where=_PREDICATE, repeats=repeats))
            )

        # Planner accuracy at this scale: plan and execute distinct-k
        # ranking statements (distinct so the result cache never answers),
        # then compare predictions against the measured outcomes.
        federation = Federation(domain=TPCH_PRICE_DOMAIN, seed=seed)
        for database in lineitem_databases(
            PARTIES, seed=seed, rows_per_party=rows
        ):
            federation.register(database)
        ledger = PredictionLedger()
        for k in range(2, 2 + max(3, repeats)):
            text = (
                f"SELECT TOP {k} {TPCH_ATTRIBUTE} FROM lineitem "
                "WITH SLO(deadline=5.0)"
            )
            plan = federation.planner.plan(parse_spec(text), parties=PARTIES)
            outcome = federation.execute(text)
            ledger.record(
                plan,
                rounds=outcome.rounds,
                messages=outcome.messages,
                simulated_seconds=outcome.simulated_seconds,
            )
        for metric in POINT_METRICS:
            drift_points[metric].append((sf, ledger.drift(metric)))

    extraction_panel = FigureData(
        figure_id="ext-tpch-sweep-extraction",
        title="Node-local extraction seconds vs TPC-H scale factor",
        xlabel="scale factor (rows per party = sf x 6M)",
        ylabel="seconds (best of repeats)",
        series=tuple(
            Series(name, tuple(points)) for name, points in series.items()
        ),
        expectation=(
            "columnar scales sub-linearly ahead of the row store; the "
            "masked filtered path stays near the unfiltered columnar curve "
            "while the scalar filtered path grows fastest"
        ),
        metadata={"parties": PARTIES, "k": TOP_K, "timing": "wall-clock"},
    )
    drift_panel = FigureData(
        figure_id="ext-tpch-sweep-planner",
        title="Planner cost-prediction drift vs TPC-H scale factor",
        xlabel="scale factor (rows per party = sf x 6M)",
        ylabel="relative L1 drift",
        series=tuple(
            Series(f"{metric} drift", tuple(points))
            for metric, points in drift_points.items()
        ),
        expectation=(
            "identically zero at every scale factor: rounds, messages and "
            "simulated latency depend on (n, k, params), never on volume"
        ),
        metadata={"parties": PARTIES, "slo": "deadline=5.0"},
    )
    return [extraction_panel, drift_panel]
