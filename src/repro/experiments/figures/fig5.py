"""Figure 5: analytical expected loss of privacy per round (Equation 6).

Plots the Equation 6 inner term ``f(r) = (1/2^(r-1)) (1 - p0 d^(r-1))``.
Expected shapes: with large ``p0`` (e.g. 1) the loss is 0 in round 1, peaks
in round 2, then decays; with smaller ``p0`` the peak is in round 1 and
decays from there; comparing peaks, larger ``p0`` gives better privacy, and
larger ``d`` slightly lowers the loss from round 2 on.
"""

from __future__ import annotations

from ...analysis.privacy_bounds import expected_lop_series
from .common import D_SWEEP, FIXED_D, FIXED_P0, MAX_ROUNDS, P0_SWEEP, FigureData, Series

FIGURE_ID = "fig5"


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    """Analytic figure: ``trials``/``seed`` accepted for interface uniformity."""
    del trials, seed
    panel_a = FigureData(
        figure_id="fig5a",
        title="Expected LoP bound vs rounds (varying p0, d=1/2)",
        xlabel="rounds",
        ylabel="expected LoP bound",
        series=tuple(
            Series(
                f"p0={p0}",
                tuple(
                    (float(r), v)
                    for r, v in expected_lop_series(p0, FIXED_D, MAX_ROUNDS)
                ),
            )
            for p0 in P0_SWEEP
        ),
        expectation=(
            "p0=1 starts at 0 and peaks in round 2; smaller p0 peaks in round 1; "
            "larger p0 has the lower peak"
        ),
    )
    panel_b = FigureData(
        figure_id="fig5b",
        title="Expected LoP bound vs rounds (varying d, p0=1)",
        xlabel="rounds",
        ylabel="expected LoP bound",
        series=tuple(
            Series(
                f"d={d}",
                tuple(
                    (float(r), v)
                    for r, v in expected_lop_series(FIXED_P0, d, MAX_ROUNDS)
                ),
            )
            for d in D_SWEEP
        ),
        expectation="all start at 0, peak in round 2; smaller d peaks higher",
    )
    return [panel_a, panel_b]
