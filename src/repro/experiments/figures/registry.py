"""Registry mapping experiment ids to their runners.

Every table and figure of the paper's evaluation has an entry.  Figure
runners return ``list[FigureData]`` (one per panel); the table runner
returns rendered text.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import nullcontext
from dataclasses import dataclass

from .. import telemetry
from ..runner import using_backend, using_jobs
from ..series import FigureData
from . import (
    ext_bayes,
    ext_bound_check,
    ext_collusion,
    ext_communication,
    ext_distributions,
    ext_dp,
    ext_noise,
    ext_tpch_sweep,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)

FigureRunner = Callable[..., list[FigureData]]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    experiment_id: str
    paper_artifact: str
    kind: str  # "analytic" | "empirical" | "table"
    description: str
    runner: Callable


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment(
            "table1", "Table 1", "table",
            "experiment parameter glossary and harness defaults", table1.run,
        ),
        Experiment(
            "fig3", "Figure 3(a,b)", "analytic",
            "precision bound (Eq. 3) vs rounds", fig3.run,
        ),
        Experiment(
            "fig4", "Figure 4(a,b)", "analytic",
            "minimum rounds (Eq. 4) vs error bound", fig4.run,
        ),
        Experiment(
            "fig5", "Figure 5(a,b)", "analytic",
            "expected LoP bound (Eq. 6) vs rounds", fig5.run,
        ),
        Experiment(
            "fig6", "Figure 6(a,b)", "empirical",
            "measured max-selection precision vs rounds", fig6.run,
        ),
        Experiment(
            "fig7", "Figure 7(a,b)", "empirical",
            "measured per-round LoP of max selection (n=4)", fig7.run,
        ),
        Experiment(
            "fig8", "Figure 8(a,b)", "empirical",
            "measured LoP vs number of nodes", fig8.run,
        ),
        Experiment(
            "fig9", "Figure 9", "empirical",
            "privacy vs efficiency across (p0, d) pairs", fig9.run,
        ),
        Experiment(
            "fig10", "Figure 10(a,b)", "empirical",
            "LoP vs nodes: probabilistic vs naive baselines", fig10.run,
        ),
        Experiment(
            "fig11", "Figure 11", "empirical",
            "measured top-k precision vs rounds (varying k)", fig11.run,
        ),
        Experiment(
            "fig12", "Figure 12(a,b)", "empirical",
            "LoP vs k: probabilistic vs naive baselines", fig12.run,
        ),
        Experiment(
            "ext-distributions", "Section 5.1 claim", "extension",
            "precision/LoP across uniform, normal and zipf data",
            ext_distributions.run,
        ),
        Experiment(
            "ext-communication", "Section 4.2 model", "extension",
            "measured messages/latency vs the analytic cost model",
            ext_communication.run,
        ),
        Experiment(
            "ext-collusion", "Section 4.3 analysis", "extension",
            "coalition LoP and the per-round remapping countermeasure",
            ext_collusion.run,
        ),
        Experiment(
            "ext-bayes", "Section 7 future work", "extension",
            "multi-round Bayesian aggregation against one victim",
            ext_bayes.run,
        ),
        Experiment(
            "ext-noise", "Section 7 future work", "extension",
            "noise-placement strategies: precision vs LoP tradeoff",
            ext_noise.run,
        ),
        Experiment(
            "ext-dp", "ROADMAP privacy item", "extension",
            "DP release error and distinguishing advantage vs epsilon, "
            "with the paper's LoP as reference",
            ext_dp.run,
        ),
        Experiment(
            "ext-bound-check", "Section 5.3 claim", "extension",
            "measured per-round LoP against the Equation 6 bound",
            ext_bound_check.run,
        ),
        Experiment(
            "ext-tpch-sweep", "ROADMAP scale item", "extension",
            "extraction seconds and planner drift vs TPC-H scale factor",
            ext_tpch_sweep.run,
        ),
    )
}


def run_experiment(
    experiment_id: str,
    *,
    trials: int | None = None,
    seed: int = 0,
    jobs: int | None = None,
    backend: str | None = None,
    timing: bool = False,
) -> list[FigureData] | str:
    """Run one experiment by id; figures return panels, table1 returns text.

    ``jobs`` fans every sweep point's trials across that many worker
    processes (results stay bit-identical to serial; ``None`` keeps the
    ambient default).  ``backend`` scopes the execution substrate for the
    figure's trial runs (``None`` keeps the ambient default — the kernel
    fast path; figures that must measure the transport pin ``session``
    themselves regardless).  ``timing`` embeds the run's cost summary —
    wall clock, trial compute, worker utilization, failures — into each
    returned panel's ``metadata["timing"]`` so reports and SVG output can
    show what the panel cost.  Timing is opt-in because wall-clock values
    are non-deterministic and would churn otherwise-reproducible artifacts.
    """
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    if experiment.kind == "table":
        return experiment.runner()
    jobs_scope = using_jobs(jobs) if jobs is not None else nullcontext()
    backend_scope = using_backend(backend) if backend is not None else nullcontext()
    with jobs_scope, backend_scope, telemetry.collect() as collector:
        panels = experiment.runner(trials=trials, seed=seed)
    if timing and collector.points:
        for panel in panels:
            panel.metadata["timing"] = collector.summary()
    return panels


def all_experiment_ids() -> list[str]:
    """Experiment ids in paper order."""
    return list(EXPERIMENTS)
