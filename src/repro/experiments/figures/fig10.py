"""Figure 10: protocol comparison — LoP vs number of nodes (max selection).

Compares the probabilistic protocol against the naive protocol (fixed
starting node) and the anonymous-naive protocol (random starting node).
Expected shapes:

* average LoP (panel a): anonymous-naive ≈ naive; probabilistic far below
  both (close to 0); all decrease with n;
* worst-case LoP (panel b): the naive protocol's starting node is ~100%
  exposed regardless of n; the anonymous scheme stays near its average; the
  probabilistic protocol remains near 0.
"""

from __future__ import annotations

from ...core.driver import ANONYMOUS_NAIVE, NAIVE, PROBABILISTIC
from ..config import PAPER_TRIALS
from ..runner import aggregate_node_lop, run_trials
from .common import FigureData, Series, TrialSetup, params_with

FIGURE_ID = "fig10"

N_SWEEP = (4, 8, 16, 32, 64)
ROUNDS = 10
PROTOCOL_LABELS = (
    (NAIVE, "naive"),
    (ANONYMOUS_NAIVE, "anonymous-naive"),
    (PROBABILISTIC, "probabilistic"),
)


def _measure(trials: int, seed: int) -> dict[str, list[tuple[float, float, float]]]:
    """protocol label -> [(n, average, worst)] over the node sweep."""
    measured: dict[str, list[tuple[float, float, float]]] = {}
    for protocol, label in PROTOCOL_LABELS:
        rows = []
        for n in N_SWEEP:
            setup = TrialSetup(
                n=n,
                k=1,
                protocol=protocol,
                params=params_with(1.0, 0.5, rounds=ROUNDS),
                trials=trials,
                seed=seed,
            )
            average, worst = aggregate_node_lop(run_trials(setup))
            rows.append((float(n), average, worst))
        measured[label] = rows
    return measured


def run(trials: int | None = None, seed: int = 0) -> list[FigureData]:
    trials = trials or PAPER_TRIALS
    measured = _measure(trials, seed)
    panel_a = FigureData(
        figure_id="fig10a",
        title="Average LoP vs nodes: naive vs anonymous vs probabilistic",
        xlabel="nodes",
        ylabel="average LoP",
        series=tuple(
            Series(label, tuple((n, avg) for n, avg, _ in rows))
            for label, rows in measured.items()
        ),
        expectation=(
            "anonymous ≈ naive; probabilistic near 0; all decrease with n"
        ),
        metadata={"trials": trials, "rounds": ROUNDS},
    )
    panel_b = FigureData(
        figure_id="fig10b",
        title="Worst-case LoP vs nodes: naive vs anonymous vs probabilistic",
        xlabel="nodes",
        ylabel="worst-case LoP",
        series=tuple(
            Series(label, tuple((n, worst) for n, _, worst in rows))
            for label, rows in measured.items()
        ),
        expectation=(
            "naive ~100% at its starting node; anonymous near its average; "
            "probabilistic near 0"
        ),
        metadata={"trials": trials, "rounds": ROUNDS},
    )
    return [panel_a, panel_b]
