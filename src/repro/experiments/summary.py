"""One-shot reproduction report: every artifact, rendered as markdown.

``repro-topk report`` runs the full registry (paper figures plus extension
experiments) and produces a single self-contained markdown document with the
data tables and each panel's expected shape — the artifact to attach to a
reproduction review.
"""

from __future__ import annotations

from pathlib import Path

from .figures.registry import EXPERIMENTS, run_experiment
from .report import render_table, render_timing
from .series import FigureData


def _panel_markdown(panel: FigureData) -> str:
    lines = [f"### {panel.title} (`{panel.figure_id}`)", ""]
    lines.append("```")
    lines.append(render_table(panel))
    lines.append("```")
    parameters = {k: v for k, v in panel.metadata.items() if k != "timing"}
    if parameters:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(parameters.items()))
        lines.append(f"*parameters: {rendered}*")
    timing = render_timing(panel)
    if timing:
        lines.append(f"*{timing}*")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    *,
    trials: int | None = None,
    seed: int = 0,
    include_extensions: bool = True,
    jobs: int | None = None,
    backend: str | None = None,
    timing: bool = False,
) -> str:
    """Run every registered experiment and render the markdown report.

    ``backend`` scopes the trial-execution substrate (``None`` keeps the
    ambient default — the kernel fast path); figures that measure the
    transport itself stay pinned to the session path either way.
    """
    sections = [
        "# Reproduction report",
        "",
        "Regenerated from `repro-topk report`; every table/figure of "
        "'Topk Queries across Multiple Private Databases' (ICDCS 2005) "
        "plus this repository's extension experiments.",
        "",
        f"*trials per measured point: {trials or 'paper default (100)'}, "
        f"base seed: {seed}*",
        "",
    ]
    for experiment in EXPERIMENTS.values():
        if experiment.kind == "extension" and not include_extensions:
            continue
        sections.append(
            f"## {experiment.paper_artifact} — {experiment.description}"
        )
        sections.append("")
        outcome = run_experiment(
            experiment.experiment_id,
            trials=trials,
            seed=seed,
            jobs=jobs,
            backend=backend,
            timing=timing,
        )
        if isinstance(outcome, str):
            sections.extend(["```", outcome, "```", ""])
        else:
            for panel in outcome:
                sections.append(_panel_markdown(panel))
    return "\n".join(sections)


def write_report(
    path: Path | str,
    *,
    trials: int | None = None,
    seed: int = 0,
    include_extensions: bool = True,
    jobs: int | None = None,
    backend: str | None = None,
    timing: bool = False,
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        generate_report(
            trials=trials,
            seed=seed,
            include_extensions=include_extensions,
            jobs=jobs,
            backend=backend,
            timing=timing,
        )
    )
    return path
