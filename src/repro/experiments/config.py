"""Experiment configuration (the paper's Table 1 plus harness knobs).

Table 1's parameters: ``n`` (number of nodes), ``k`` (top-k parameter),
``p0`` (initial randomization probability), ``d`` (dampening factor).  The
harness adds what any empirical rig needs: trial counts, seeds, per-node
dataset sizes and the data distribution (Section 5.1: values are drawn over
the integer domain [1, 10000]; uniform/normal/zipf give similar results, and
the paper reports uniform).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from ..core.driver import PROBABILISTIC, PROTOCOLS
from ..core.params import ProtocolParams
from ..database.generator import DISTRIBUTIONS
from ..database.query import PAPER_DOMAIN, Domain

#: The paper averages every plot over 100 experiments (Section 5.1).
PAPER_TRIALS = 100


@dataclass(frozen=True)
class TrialSetup:
    """Everything needed to run one batch of repeated protocol trials."""

    n: int
    k: int = 1
    protocol: str = PROBABILISTIC
    params: ProtocolParams = field(default_factory=ProtocolParams.paper_defaults)
    trials: int = PAPER_TRIALS
    values_per_node: int = 10
    distribution: str = "uniform"
    domain: Domain = PAPER_DOMAIN
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"the protocol requires n >= 3, got {self.n}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.values_per_node < 1:
            raise ValueError(f"values_per_node must be >= 1, got {self.values_per_node}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def with_(self, **overrides: object) -> "TrialSetup":
        """A modified copy — the sweep helper used by every figure module."""
        return replace(self, **overrides)

    def _derived_seed(self, trial_index: int, stream: str) -> int:
        """SHA-256-derived 64-bit seed for one ``(seed, trial, stream)`` cell.

        Built with :mod:`hashlib` rather than ``hash()`` (whose string
        hashing is randomized per interpreter run) or modular arithmetic
        (whose 31-bit masking let distinct ``(seed, trial_index)`` pairs —
        and the old ``2s`` / ``2s+1`` data/protocol streams of *different*
        setups — collide).  Stable across processes, so parallel trial
        execution reproduces serial runs bit for bit.  Only ``seed``,
        ``trial_index`` and the stream tag enter the hash: two setups
        differing only in ``protocol`` see *paired* datasets — the protocol
        comparisons (Figures 10 and 12) are paired experiments.
        """
        if trial_index < 0:
            raise ValueError(f"trial_index must be >= 0, got {trial_index}")
        material = f"{self.seed}:{trial_index}:{stream}".encode()
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def trial_seed(self, trial_index: int) -> int:
        """Deterministic per-trial seed (stable across processes)."""
        return self._derived_seed(trial_index, "trial")

    def data_rng(self, trial_index: int) -> random.Random:
        return random.Random(self._derived_seed(trial_index, "data"))

    def protocol_seed(self, trial_index: int) -> int:
        return self._derived_seed(trial_index, "protocol")
