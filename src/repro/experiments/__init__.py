"""Experiment harness: trial runners, aggregation, figure registry, reports."""

from .config import PAPER_TRIALS, TrialSetup
from .figures import EXPERIMENTS, Experiment, all_experiment_ids, run_experiment
from .report import render_figure, render_table, render_timing, write_csv
from .runner import (
    TrialError,
    aggregate_coalition_lop,
    aggregate_node_lop,
    mean_final_precision,
    mean_lop_by_round,
    mean_messages,
    mean_precision_by_round,
    resolve_backend,
    resolve_jobs,
    run_single_trial,
    run_trials,
    run_trials_many,
    shutdown_pool,
    using_backend,
    using_jobs,
)
from .series import FigureData, Series
from .summary import generate_report, write_report
from .svg_plot import render_svg, write_all_svgs, write_svg
from .telemetry import (
    ExtractionProfiler,
    PhaseProfiler,
    PointTelemetry,
    TelemetryCollector,
    TrialTiming,
    collect,
    profile_extraction,
    profile_phases,
)
from .validate import Check, render_scorecard, scorecard, validate_experiment

__all__ = [
    "Check",
    "EXPERIMENTS",
    "Experiment",
    "ExtractionProfiler",
    "FigureData",
    "PAPER_TRIALS",
    "PhaseProfiler",
    "PointTelemetry",
    "Series",
    "TelemetryCollector",
    "TrialError",
    "TrialSetup",
    "TrialTiming",
    "aggregate_coalition_lop",
    "generate_report",
    "aggregate_node_lop",
    "all_experiment_ids",
    "collect",
    "mean_final_precision",
    "mean_lop_by_round",
    "mean_messages",
    "mean_precision_by_round",
    "render_figure",
    "render_scorecard",
    "render_svg",
    "render_table",
    "render_timing",
    "profile_extraction",
    "profile_phases",
    "resolve_backend",
    "resolve_jobs",
    "run_experiment",
    "run_single_trial",
    "run_trials",
    "run_trials_many",
    "scorecard",
    "shutdown_pool",
    "using_backend",
    "using_jobs",
    "validate_experiment",
    "write_all_svgs",
    "write_csv",
    "write_report",
    "write_svg",
]
