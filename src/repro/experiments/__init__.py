"""Experiment harness: trial runners, aggregation, figure registry, reports."""

from .config import PAPER_TRIALS, TrialSetup
from .figures import EXPERIMENTS, Experiment, all_experiment_ids, run_experiment
from .report import render_figure, render_table, write_csv
from .runner import (
    aggregate_coalition_lop,
    aggregate_node_lop,
    mean_final_precision,
    mean_lop_by_round,
    mean_messages,
    mean_precision_by_round,
    run_single_trial,
    run_trials,
)
from .series import FigureData, Series
from .summary import generate_report, write_report
from .svg_plot import render_svg, write_all_svgs, write_svg
from .validate import Check, render_scorecard, scorecard, validate_experiment

__all__ = [
    "Check",
    "EXPERIMENTS",
    "Experiment",
    "FigureData",
    "PAPER_TRIALS",
    "Series",
    "TrialSetup",
    "aggregate_coalition_lop",
    "generate_report",
    "aggregate_node_lop",
    "all_experiment_ids",
    "mean_final_precision",
    "mean_lop_by_round",
    "mean_messages",
    "mean_precision_by_round",
    "render_figure",
    "render_scorecard",
    "render_svg",
    "render_table",
    "run_experiment",
    "run_single_trial",
    "run_trials",
    "scorecard",
    "validate_experiment",
    "write_all_svgs",
    "write_csv",
    "write_report",
    "write_svg",
]
