"""Data containers for reproduced figures: labelled series of (x, y) points.

A paper figure maps to one or more :class:`FigureData` panels (e.g.
Figure 3(a) and 3(b)), each holding labelled series.  These are pure data —
rendering (tables, ASCII plots, CSV) lives in :mod:`repro.experiments.report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Series:
    """One labelled curve."""

    label: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError(f"series {self.label!r} has no points")

    @classmethod
    def from_lists(cls, label: str, xs: list[float], ys: list[float]) -> "Series":
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r}: {len(xs)} xs vs {len(ys)} ys")
        return cls(label, tuple(zip(xs, ys)))

    @property
    def xs(self) -> list[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> list[float]:
        return [p[1] for p in self.points]

    def y_at(self, x: float) -> float:
        # Tolerant match: x values accumulated in float (epsilon sweeps,
        # round counters built by repeated addition) can differ from the
        # queried literal by an ulp or two — exact equality silently missed.
        for px, py in self.points:
            if math.isclose(px, x, rel_tol=1e-9, abs_tol=1e-12):
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x}")


@dataclass(frozen=True)
class FigureData:
    """One reproduced panel: id, axis labels, and its series."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: tuple[Series, ...]
    #: Reproduction notes: what shape the paper reports for this panel.
    expectation: str = ""
    log_x: bool = False
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError(f"figure {self.figure_id!r} has no series")
        labels = [s.label for s in self.series]
        if len(labels) != len(set(labels)):
            raise ValueError(f"figure {self.figure_id!r} has duplicate series: {labels}")

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"figure {self.figure_id!r} has no series {label!r}")

    @property
    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def to_csv_rows(self) -> list[tuple[str, str, float, float]]:
        """Flat (figure_id, series, x, y) rows for CSV export."""
        return [
            (self.figure_id, s.label, x, y)
            for s in self.series
            for x, y in s.points
        ]
