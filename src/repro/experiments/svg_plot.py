"""Hand-rolled SVG line charts for reproduced figures.

The offline environment has no plotting libraries, but reviewers want real
figures.  This renders a :class:`~repro.experiments.series.FigureData` panel
as a self-contained SVG: axes with ticks, one polyline + markers per series,
and a legend.  No dependencies; the output opens in any browser.
"""

from __future__ import annotations

import math
from pathlib import Path

from .series import FigureData

#: Series colors: a color-blind-safe cycle.
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#F0E442", "#56B4E9")

WIDTH, HEIGHT = 640, 420
MARGIN_LEFT, MARGIN_RIGHT = 70, 20
MARGIN_TOP, MARGIN_BOTTOM = 50, 60


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    """Round-ish tick positions covering [lo, hi]."""
    if hi == lo:
        return [lo]
    raw_step = (hi - lo) / max(1, count - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    tick = first
    while tick <= hi + step / 2:
        if tick >= lo - step / 2:
            ticks.append(round(tick, 10))
        tick += step
    return ticks or [lo, hi]


def _fmt(value: float) -> str:
    return f"{value:g}"


class _Scale:
    def __init__(self, lo: float, hi: float, out_lo: float, out_hi: float, log: bool):
        self.log = log
        if log:
            lo, hi = math.log10(lo), math.log10(hi)
        if hi == lo:
            lo, hi = lo - 0.5, hi + 0.5
        self.lo, self.hi = lo, hi
        self.out_lo, self.out_hi = out_lo, out_hi

    def __call__(self, value: float) -> float:
        v = math.log10(value) if self.log else value
        t = (v - self.lo) / (self.hi - self.lo)
        return self.out_lo + t * (self.out_hi - self.out_lo)


def render_svg(figure: FigureData) -> str:
    """One panel as a standalone SVG document."""
    xs = [x for s in figure.series for x in s.xs]
    ys = [y for s in figure.series for y in s.ys]
    if figure.log_x and min(xs) <= 0:
        raise ValueError("log-x figures need positive x values")
    x_scale = _Scale(min(xs), max(xs), MARGIN_LEFT, WIDTH - MARGIN_RIGHT, figure.log_x)
    y_scale = _Scale(min(ys), max(ys), HEIGHT - MARGIN_BOTTOM, MARGIN_TOP, False)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" font-size="15" '
        f'font-weight="bold">{_escape(figure.title)}</text>',
    ]

    # Axes.
    x0, y0 = MARGIN_LEFT, HEIGHT - MARGIN_BOTTOM
    x1, y1 = WIDTH - MARGIN_RIGHT, MARGIN_TOP
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#333"/>'
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#333"/>'
    )
    # X ticks (log ticks at decades when log_x).
    if figure.log_x:
        lo_exp = math.floor(math.log10(min(xs)))
        hi_exp = math.ceil(math.log10(max(xs)))
        x_ticks = [10.0**e for e in range(lo_exp, hi_exp + 1)]
        x_ticks = [t for t in x_ticks if min(xs) / 1.01 <= t <= max(xs) * 1.01]
    else:
        x_ticks = _ticks(min(xs), max(xs))
    for tick in x_ticks:
        px = x_scale(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" y2="{y0 + 5}" stroke="#333"/>'
            f'<text x="{px:.1f}" y="{y0 + 18}" text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in _ticks(min(ys), max(ys)):
        py = y_scale(tick)
        parts.append(
            f'<line x1="{x0 - 5}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" stroke="#333"/>'
            f'<line x1="{x0}" y1="{py:.1f}" x2="{x1}" y2="{py:.1f}" stroke="#eee"/>'
            f'<text x="{x0 - 8}" y="{py + 4:.1f}" text-anchor="end">{_fmt(tick)}</text>'
        )
    # Axis labels.
    parts.append(
        f'<text x="{(x0 + x1) / 2}" y="{HEIGHT - 12}" text-anchor="middle">'
        f"{_escape(figure.xlabel)}</text>"
    )
    parts.append(
        f'<text x="16" y="{(y0 + y1) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {(y0 + y1) / 2})">{_escape(figure.ylabel)}</text>'
    )

    # Series.
    for index, series in enumerate(figure.series):
        color = PALETTE[index % len(PALETTE)]
        points = sorted(series.points)
        path = " ".join(
            f"{x_scale(x):.1f},{y_scale(y):.1f}" for x, y in points
        )
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in points:
            parts.append(
                f'<circle cx="{x_scale(x):.1f}" cy="{y_scale(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        # Legend entry.
        legend_y = MARGIN_TOP + 16 * index
        parts.append(
            f'<line x1="{x1 - 130}" y1="{legend_y}" x2="{x1 - 110}" y2="{legend_y}" '
            f'stroke="{color}" stroke-width="2"/>'
            f'<text x="{x1 - 104}" y="{legend_y + 4}">{_escape(series.label)}</text>'
        )

    # Cost footer, present only when the run embedded timing telemetry.
    from .report import render_timing

    timing = render_timing(figure)
    if timing:
        parts.append(
            f'<text x="{WIDTH - MARGIN_RIGHT}" y="{HEIGHT - 12}" '
            f'text-anchor="end" font-size="10" fill="#666">'
            f"{_escape(timing)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def write_svg(figure: FigureData, path: Path | str) -> Path:
    """Render ``figure`` and write it as an .svg file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(figure))
    return path


def write_all_svgs(figures: list[FigureData], directory: Path | str) -> list[Path]:
    """One SVG per panel, named by figure id."""
    directory = Path(directory)
    return [
        write_svg(figure, directory / f"{figure.figure_id}.svg")
        for figure in figures
    ]
