"""Rendering and persistence of reproduced figures.

Each figure becomes three artifacts:

* an aligned text table (all series side by side, one row per x);
* an ASCII plot for eyeballing shapes;
* a CSV file under ``results/`` for downstream tooling.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .ascii_plot import render_plot
from .series import FigureData


def render_table(figure: FigureData, *, precision: int = 4) -> str:
    """All series of a panel as one aligned table keyed by x."""
    xs = sorted({x for s in figure.series for x in s.xs})
    col_width = max(12, *(len(s.label) + 2 for s in figure.series))
    header = f"{figure.xlabel:>14} " + " ".join(
        f"{s.label:>{col_width}}" for s in figure.series
    )
    lines = [f"== {figure.title} [{figure.figure_id}] ==", header, "-" * len(header)]
    for x in xs:
        cells = []
        for s in figure.series:
            try:
                cells.append(f"{s.y_at(x):>{col_width}.{precision}g}")
            except KeyError:
                cells.append(f"{'-':>{col_width}}")
        lines.append(f"{x:>14.6g} " + " ".join(cells))
    if figure.expectation:
        lines.append(f"expected shape: {figure.expectation}")
    return "\n".join(lines)


def render_timing(figure: FigureData) -> str | None:
    """One-line cost summary when the run embedded timing telemetry.

    Present only when the experiment ran with ``timing=True`` (the CLI's
    ``--timing``); see :func:`repro.experiments.figures.registry.run_experiment`.
    """
    timing = figure.metadata.get("timing")
    if not isinstance(timing, dict):
        return None
    return (
        f"cost: {timing.get('trials', '?')} trials in "
        f"{timing.get('wall_seconds', 0.0):.3f}s wall — "
        f"jobs={timing.get('jobs', 1)}, "
        f"utilization={timing.get('utilization', 1.0):.0%}, "
        f"workers={timing.get('workers', 1)}, "
        f"failures={timing.get('failures', 0)}"
    )


def render_figure(figure: FigureData, *, plot: bool = True) -> str:
    """Table plus (optionally) the ASCII plot."""
    parts = [render_table(figure)]
    timing = render_timing(figure)
    if timing:
        parts.append(timing)
    if plot:
        parts.append(render_plot(figure))
    return "\n\n".join(parts)


def write_csv(figures: list[FigureData], path: Path | str) -> Path:
    """Write all panels' points as one CSV (figure_id, series, x, y)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure_id", "series", "x", "y"])
        for figure in figures:
            writer.writerows(figure.to_csv_rows())
    return path


def load_csv(path: Path | str) -> list[tuple[str, str, float, float]]:
    """Read back rows written by :func:`write_csv`."""
    path = Path(path)
    rows = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["figure_id", "series", "x", "y"]:
            raise ValueError(f"{path}: unexpected CSV header {header}")
        for figure_id, series, x, y in reader:
            rows.append((figure_id, series, float(x), float(y)))
    return rows
