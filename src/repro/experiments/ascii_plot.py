"""Terminal line plots, because the offline environment has no matplotlib.

The plots are deliberately simple: a fixed-size character grid, one marker
character per series, linear or log-10 x scaling.  They exist so a human can
eyeball the reproduced curve shapes straight from the CLI; the CSV export is
the machine-readable artifact.
"""

from __future__ import annotations

import math

from .series import FigureData, Series

#: Marker characters cycled across series.
MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi == lo:
        return 0
    t = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(t * (steps - 1))))


def _x_transform(value: float, log_x: bool) -> float:
    if not log_x:
        return value
    if value <= 0:
        raise ValueError(f"log-x plot cannot place x={value}")
    return math.log10(value)


def render_plot(
    figure: FigureData, *, width: int = 64, height: int = 18
) -> str:
    """Render all series of ``figure`` on one character grid."""
    if width < 16 or height < 6:
        raise ValueError("plot area too small to be legible")
    all_x = [
        _x_transform(x, figure.log_x) for s in figure.series for x in s.xs
    ]
    all_y = [y for s in figure.series for y in s.ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_lo == y_hi:  # flat lines still deserve a visible axis range
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(figure.series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in series.points:
            col = _scale(_x_transform(x, figure.log_x), x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines = [f"{figure.title}  [{figure.figure_id}]"]
    y_label_width = 9
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:>8.3g} "
        elif i == height - 1:
            label = f"{y_lo:>8.3g} "
        else:
            label = " " * y_label_width
        lines.append(label + "|" + "".join(row))
    x_axis = " " * y_label_width + "+" + "-" * width
    lines.append(x_axis)
    x_lo_label = f"{(10 ** x_lo if figure.log_x else x_lo):.3g}"
    x_hi_label = f"{(10 ** x_hi if figure.log_x else x_hi):.3g}"
    padding = width - len(x_lo_label) - len(x_hi_label)
    lines.append(
        " " * (y_label_width + 1) + x_lo_label + " " * max(1, padding) + x_hi_label
    )
    scale_note = " (log scale)" if figure.log_x else ""
    lines.append(f"{'':>{y_label_width}} x: {figure.xlabel}{scale_note}   y: {figure.ylabel}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} = {s.label}" for i, s in enumerate(figure.series)
    )
    lines.append(f"{'':>{y_label_width}} {legend}")
    return "\n".join(lines)


def render_series_table(series: Series, *, precision: int = 4) -> str:
    """Two-column table of one series (debugging helper)."""
    rows = [f"{'x':>12}  {'y':>12}"]
    rows.extend(
        f"{x:>12.{precision}g}  {y:>12.{precision}g}" for x, y in series.points
    )
    return "\n".join(rows)
