"""Run-time observability for the trial-execution engine.

The paper averages every plotted point over 100 trials; regenerating a
figure therefore runs hundreds to thousands of protocol executions.  This
module records what that run actually cost: per-trial wall-clock, per-
sweep-point wall-clock, which worker processes did the work, and how many
trials failed.  The runner reports into whatever collectors are active
(see :func:`collect`), so the CLI's ``--timing`` flag and the parity tests
can observe the same run without threading a collector through every
figure module.

All quantities here are *observability* data: they never influence the
experiment results themselves, which stay bit-identical for a given setup
regardless of ``jobs`` (see :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class TrialTiming:
    """Cost of one protocol trial."""

    trial_index: int
    seconds: float
    worker: int  # OS pid of the process that ran the trial
    ok: bool = True


@dataclass(frozen=True)
class PointTelemetry:
    """Cost of one sweep point (one ``run_trials`` batch).

    ``trial_seconds`` is the summed per-trial compute time; comparing it
    with ``wall_seconds * jobs`` gives worker utilization — how much of the
    pool's capacity the batch actually used.
    """

    label: str
    trials: int
    jobs: int
    mode: str  # "serial" | "parallel" | "serial-fallback"
    wall_seconds: float
    trial_seconds: float
    failures: int
    workers: tuple[int, ...]
    timings: tuple[TrialTiming, ...] = ()
    backend: str = "session"  # execution substrate ("session" | "kernel")

    @property
    def utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent in trials."""
        capacity = self.wall_seconds * max(1, self.jobs)
        if capacity <= 0.0:
            return 1.0
        return min(1.0, self.trial_seconds / capacity)


class TelemetryCollector:
    """Accumulates sweep-point telemetry for one experiment run."""

    def __init__(self) -> None:
        self.points: list[PointTelemetry] = []

    def record(self, point: PointTelemetry) -> None:
        self.points.append(point)

    # -- aggregation ---------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        return sum(p.wall_seconds for p in self.points)

    @property
    def trial_seconds(self) -> float:
        return sum(p.trial_seconds for p in self.points)

    @property
    def trials(self) -> int:
        return sum(p.trials for p in self.points)

    @property
    def failures(self) -> int:
        return sum(p.failures for p in self.points)

    @property
    def workers(self) -> tuple[int, ...]:
        seen: set[int] = set()
        for point in self.points:
            seen.update(point.workers)
        return tuple(sorted(seen))

    def summary(self) -> dict[str, object]:
        """A compact, metadata-embeddable cost summary."""
        jobs = max((p.jobs for p in self.points), default=1)
        capacity = sum(p.wall_seconds * max(1, p.jobs) for p in self.points)
        utilization = (
            min(1.0, self.trial_seconds / capacity) if capacity > 0 else 1.0
        )
        wall = self.wall_seconds
        backends = sorted({p.backend for p in self.points})
        return {
            "points": len(self.points),
            "trials": self.trials,
            "jobs": jobs,
            "backend": "/".join(backends) if backends else "session",
            "wall_seconds": round(wall, 6),
            "trial_seconds": round(self.trial_seconds, 6),
            "trials_per_second": round(self.trials / wall, 2) if wall > 0 else 0.0,
            "utilization": round(utilization, 4),
            "workers": len(self.workers) or 1,
            "failures": self.failures,
        }

    def render(self) -> str:
        """Human-readable per-point timing table for ``--timing`` output."""
        lines = [
            f"{'sweep point':<44} {'trials':>6} {'jobs':>4} {'mode':>15} "
            f"{'wall (s)':>9} {'util':>6} {'fail':>4}"
        ]
        lines.append("-" * len(lines[0]))
        for point in self.points:
            lines.append(
                f"{point.label:<44.44} {point.trials:>6} {point.jobs:>4} "
                f"{point.mode:>15} {point.wall_seconds:>9.3f} "
                f"{point.utilization:>6.0%} {point.failures:>4}"
            )
        summary = self.summary()
        lines.append("-" * len(lines[0]))
        lines.append(
            f"total: {summary['trials']} trials over {summary['points']} "
            f"sweep points in {summary['wall_seconds']:.3f}s wall "
            f"({summary['trials_per_second']:.1f} trials/s on the "
            f"{summary['backend']} backend, "
            f"{summary['trial_seconds']:.3f}s of trial compute, "
            f"{summary['utilization']:.0%} utilization, "
            f"{summary['workers']} worker(s), "
            f"{summary['failures']} failure(s))"
        )
        return "\n".join(lines)


class PhaseProfiler:
    """Aggregates the kernel's per-run phase samples (``--timing`` output).

    The fast-path kernel (:mod:`repro.core.kernel`) reports where each run
    spent its time — setup (RNG, params, algorithm construction), ring
    build, the round loop, and result finalization — whenever a sink is
    installed.  :func:`profile_phases` installs this profiler as that sink
    for a scope; the CLI shows the resulting table next to the trial-level
    timing one.  Session-backend runs report nothing here (the profiler
    stays empty), so the table doubles as confirmation of which backend
    actually executed.
    """

    _PHASES = ("setup", "ring", "round_loop", "finalize")

    def __init__(self) -> None:
        self.runs = 0
        self.rounds = 0
        self._totals = dict.fromkeys(self._PHASES, 0.0)

    def record(self, sample: object) -> None:
        """Sink for :func:`repro.core.kernel.set_phase_sink`."""
        self.runs += 1
        self.rounds += sample.rounds
        totals = self._totals
        totals["setup"] += sample.setup_seconds
        totals["ring"] += sample.ring_seconds
        totals["round_loop"] += sample.round_loop_seconds
        totals["finalize"] += sample.finalize_seconds

    @property
    def total_seconds(self) -> float:
        return sum(self._totals.values())

    def summary(self) -> dict[str, object]:
        """Per-phase totals plus run throughput, metadata-embeddable."""
        total = self.total_seconds
        return {
            "runs": self.runs,
            "rounds": self.rounds,
            "seconds": {p: round(s, 6) for p, s in self._totals.items()},
            "runs_per_second": round(self.runs / total, 2) if total > 0 else 0.0,
        }

    def render(self) -> str:
        """Human-readable phase breakdown for ``--timing`` output."""
        if not self.runs:
            return "kernel phases: no kernel runs (session backend?)"
        total = self.total_seconds
        lines = [f"{'kernel phase':<12} {'total (s)':>10} {'share':>7} {'per run (us)':>13}"]
        lines.append("-" * len(lines[0]))
        for phase in self._PHASES:
            seconds = self._totals[phase]
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{phase:<12} {seconds:>10.4f} {share:>7.1%} "
                f"{seconds / self.runs * 1e6:>13.1f}"
            )
        lines.append("-" * len(lines[0]))
        per_run = total / self.runs if self.runs else 0.0
        rate = 1.0 / per_run if per_run > 0 else 0.0
        lines.append(
            f"{self.runs} kernel runs ({self.rounds} protocol rounds) in "
            f"{total:.4f}s inside the kernel ({rate:.1f} runs/s)"
        )
        return "\n".join(lines)


@contextmanager
def profile_phases() -> Iterator[PhaseProfiler]:
    """Scope within which kernel runs report per-phase timings.

    Installs a :class:`PhaseProfiler` as the kernel's phase sink, chaining
    to any previously installed sink so nested scopes each see the runs.
    The sink is process-local: with ``--jobs`` fanning trials to worker
    processes, only runs executed in *this* process are profiled.  The
    import is deferred so this observability module stays importable
    without the core package's execution machinery.
    """
    from ..core.kernel import set_phase_sink

    profiler = PhaseProfiler()
    previous = set_phase_sink(None)

    def sink(sample: object) -> None:
        profiler.record(sample)
        if previous is not None:
            previous(sample)

    set_phase_sink(sink)
    try:
        yield profiler
    finally:
        set_phase_sink(previous)


class ExtractionProfiler:
    """Aggregates node-local extraction samples (``--timing`` output).

    Every protocol run starts with each party's storage engine answering
    the local top-k; :func:`profile_extraction` installs this profiler as
    the extraction sink (see :mod:`repro.database.engines`) so a scope can
    see which engine did the extracting, over how many rows, and how long
    it took.  Like the phase profiler, this is observability only — the
    engines are bit-identical, so the numbers never change results.
    """

    def __init__(self) -> None:
        self.calls = 0
        self.rows = 0
        self._engines: dict[str, dict[str, float]] = {}

    def record(self, sample: object) -> None:
        """Sink for :func:`repro.database.engines.set_extraction_sink`."""
        self.calls += 1
        self.rows += sample.rows
        stats = self._engines.setdefault(
            sample.engine, {"calls": 0.0, "rows": 0.0, "seconds": 0.0}
        )
        stats["calls"] += 1
        stats["rows"] += sample.rows
        stats["seconds"] += sample.seconds

    @property
    def total_seconds(self) -> float:
        return sum(stats["seconds"] for stats in self._engines.values())

    def summary(self) -> dict[str, object]:
        """Per-engine totals, metadata-embeddable."""
        return {
            "calls": self.calls,
            "rows": self.rows,
            "engines": {
                engine: {
                    "calls": int(stats["calls"]),
                    "rows": int(stats["rows"]),
                    "seconds": round(stats["seconds"], 6),
                }
                for engine, stats in sorted(self._engines.items())
            },
        }

    def render(self) -> str:
        """Human-readable extraction breakdown for ``--timing`` output."""
        if not self.calls:
            return "local extraction: no extractions recorded"
        lines = [
            f"{'storage engine':<14} {'extracts':>8} {'rows':>12} "
            f"{'total (s)':>10} {'rows/s':>12}"
        ]
        lines.append("-" * len(lines[0]))
        for engine, stats in sorted(self._engines.items()):
            seconds = stats["seconds"]
            rate = stats["rows"] / seconds if seconds > 0 else 0.0
            lines.append(
                f"{engine:<14} {int(stats['calls']):>8} {int(stats['rows']):>12} "
                f"{seconds:>10.4f} {rate:>12.0f}"
            )
        lines.append("-" * len(lines[0]))
        lines.append(
            f"{self.calls} local extractions over {self.rows} rows in "
            f"{self.total_seconds:.4f}s"
        )
        return "\n".join(lines)


@contextmanager
def profile_extraction() -> Iterator[ExtractionProfiler]:
    """Scope within which node-local extractions report their timings.

    Installs an :class:`ExtractionProfiler` as the storage engines'
    extraction sink, chaining to any previously installed sink so nested
    scopes each see the samples.  Process-local, like the phase sink.  The
    import is deferred so this observability module stays importable
    without the database package.
    """
    from ..database.engines import set_extraction_sink

    profiler = ExtractionProfiler()
    previous = set_extraction_sink(None)

    def sink(sample: object) -> None:
        profiler.record(sample)
        if previous is not None:
            previous(sample)

    set_extraction_sink(sink)
    try:
        yield profiler
    finally:
        set_extraction_sink(previous)


class LatencyHistogram:
    """Exact streaming latency distribution with percentile queries.

    Used by the query-serving layer (:mod:`repro.service`) for its p50 /
    p95 / p99 latency metrics, and available to any experiment that wants a
    latency distribution rather than a mean.  Samples are kept exactly and
    percentiles computed by linear interpolation on the sorted sample, so
    two runs that record the same samples report bit-identical quantiles —
    the determinism the service's seeded simulated clock relies on.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: list[float] | None = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self._samples.append(float(seconds))
        self._sorted = None  # invalidate the sort cache

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), interpolated; 0.0 when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> dict[str, float]:
        """The compact quantile summary the service metrics export."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "max": self.max,
        }


#: Collectors currently listening; the runner reports to all of them so
#: nested scopes (CLI around registry around runner) each see the run.
_ACTIVE: list[TelemetryCollector] = []


@contextmanager
def collect() -> Iterator[TelemetryCollector]:
    """Scope within which trial runs report their telemetry."""
    collector = TelemetryCollector()
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.remove(collector)


def record_point(point: PointTelemetry) -> None:
    """Report one sweep point to every active collector (runner hook)."""
    for collector in _ACTIVE:
        collector.record(point)


def active_collectors() -> int:
    """How many collectors are listening (0 means telemetry is off)."""
    return len(_ACTIVE)
