"""Trial execution and cross-trial aggregation.

The paper averages every plotted point over 100 experiments.  This module
runs those repeated trials and aggregates the two quantities the evaluation
plots: precision (per round) and loss of privacy (per round, and per node
aggregated to system average / worst case).

Aggregation order matters for the worst case: each node's LoP is averaged
across trials *first*, and the worst case is the most-exposed node of those
means.  Taking per-trial maxima instead would erase the difference between
the fixed-start naive protocol (one node is *always* the victim) and the
anonymous-naive protocol (the victim role rotates) — the exact distinction
Figure 10(b) demonstrates.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence

from ..core.driver import RunConfig, run_protocol_on_vectors
from ..core.results import ProtocolResult
from ..database.generator import DataGenerator
from ..database.query import TopKQuery
from ..privacy.adversary import coalition_lop
from ..privacy.lop import node_lop, node_round_lop
from .config import TrialSetup


def run_single_trial(setup: TrialSetup, trial_index: int) -> ProtocolResult:
    """One protocol run on freshly drawn (per-trial-seeded) data."""
    generator = DataGenerator(
        domain=setup.domain,
        distribution=setup.distribution,
        rng=setup.data_rng(trial_index),
    )
    datasets = generator.node_datasets(setup.n, setup.values_per_node)
    local_vectors = {f"node{i}": [float(v) for v in vs] for i, vs in enumerate(datasets)}
    query = TopKQuery(table="data", attribute="value", k=setup.k, domain=setup.domain)
    config = RunConfig(
        protocol=setup.protocol,
        params=setup.params,
        seed=setup.protocol_seed(trial_index),
    )
    return run_protocol_on_vectors(local_vectors, query, config)


def run_trials(setup: TrialSetup) -> list[ProtocolResult]:
    """All trials of a setup."""
    return [run_single_trial(setup, t) for t in range(setup.trials)]


# -- aggregation -------------------------------------------------------------


def mean_precision_by_round(
    results: Sequence[ProtocolResult], rounds: int
) -> list[tuple[float, float]]:
    """(round, mean precision) for rounds 1..``rounds`` across trials."""
    if not results:
        raise ValueError("no results to aggregate")
    points = []
    for r in range(1, rounds + 1):
        mean = sum(res.precision_at_round(r) for res in results) / len(results)
        points.append((float(r), mean))
    return points


def mean_lop_by_round(
    results: Sequence[ProtocolResult], rounds: int
) -> list[tuple[float, float]]:
    """(round, mean-over-nodes-and-trials LoP) for rounds 1..``rounds``.

    The Figure 7 quantity: per-round system LoP, averaged across trials.
    Rounds a run never executed contribute 0 (no traffic, no exposure).
    """
    if not results:
        raise ValueError("no results to aggregate")
    points = []
    for r in range(1, rounds + 1):
        total = 0.0
        for res in results:
            nodes = res.ring_order
            total += sum(node_round_lop(res, node, r) for node in nodes) / len(nodes)
        points.append((float(r), total / len(results)))
    return points


def _per_node_means(
    results: Sequence[ProtocolResult],
    metric: Callable[[ProtocolResult, str], float],
) -> dict[str, float]:
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for res in results:
        for node in res.ring_order:
            sums[node] += metric(res, node)
            counts[node] += 1
    return {node: sums[node] / counts[node] for node in sums}


def aggregate_node_lop(
    results: Sequence[ProtocolResult],
) -> tuple[float, float]:
    """(average LoP, worst-case LoP) with per-node-first averaging.

    Average: mean over nodes of each node's cross-trial mean peak LoP.
    Worst case: the largest per-node cross-trial mean ("highest loss of
    privacy among all the nodes", Section 5.3) — for the fixed-start naive
    protocol this is the starting node.
    """
    if not results:
        raise ValueError("no results to aggregate")
    means = _per_node_means(results, node_lop)
    values = list(means.values())
    return sum(values) / len(values), max(values)


def aggregate_coalition_lop(
    results: Sequence[ProtocolResult],
) -> tuple[float, float]:
    """(average, worst-case) coalition LoP, per-node-first like the above."""
    if not results:
        raise ValueError("no results to aggregate")
    means = _per_node_means(results, coalition_lop)
    values = list(means.values())
    return sum(values) / len(values), max(values)


def mean_final_precision(results: Sequence[ProtocolResult]) -> float:
    """Mean precision of the final returned vectors."""
    if not results:
        raise ValueError("no results to aggregate")
    return sum(res.precision() for res in results) / len(results)


def mean_messages(results: Sequence[ProtocolResult]) -> float:
    """Mean token+result messages per run (communication cost)."""
    if not results:
        raise ValueError("no results to aggregate")
    return sum(res.stats.messages_total for res in results) / len(results)


def mean_and_confidence(
    samples: Sequence[float], *, z: float = 1.96
) -> tuple[float, float]:
    """(mean, half-width of the normal-approximation CI).

    ``z = 1.96`` gives the conventional 95% interval.  Used by reports that
    quote trial-averaged quantities with uncertainty; single samples carry
    zero width by convention.
    """
    if not samples:
        raise ValueError("no samples to aggregate")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    return mean, z * (variance / n) ** 0.5


def precision_confidence_by_round(
    results: Sequence[ProtocolResult], rounds: int
) -> list[tuple[float, float, float]]:
    """(round, mean precision, 95% CI half-width) across trials."""
    if not results:
        raise ValueError("no results to aggregate")
    points = []
    for r in range(1, rounds + 1):
        samples = [res.precision_at_round(r) for res in results]
        mean, half_width = mean_and_confidence(samples)
        points.append((float(r), mean, half_width))
    return points
