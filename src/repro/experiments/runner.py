"""Trial execution and cross-trial aggregation.

The paper averages every plotted point over 100 experiments.  This module
runs those repeated trials — serially or fanned across a process pool —
and aggregates the two quantities the evaluation plots: precision (per
round) and loss of privacy (per round, and per node aggregated to system
average / worst case).

Parallel execution is an optimization only: each trial is a pure function
of ``(setup, trial_index)`` (the per-trial seed derivation in
:mod:`repro.experiments.config` is process-stable), so ``run_trials`` with
any ``jobs`` value returns results bit-identical to the serial path.  The
parity tests in ``tests/experiments/test_parallel.py`` enforce this.

Aggregation order matters for the worst case: each node's LoP is averaged
across trials *first*, and the worst case is the most-exposed node of those
means.  Taking per-trial maxima instead would erase the difference between
the fixed-start naive protocol (one node is *always* the victim) and the
anonymous-naive protocol (the victim role rotates) — the exact distinction
Figure 10(b) demonstrates.
"""

from __future__ import annotations

import atexit
import math
import os
import time
from collections import defaultdict
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pickle import PicklingError

from ..core.batch import execute_many as _execute_batch
from ..core.driver import BACKENDS, KERNEL, RunConfig, run_protocol_on_vectors
from ..core.kernel import phase_sink
from ..core.results import ProtocolResult
from ..database.generator import DataGenerator
from ..database.query import TopKQuery
from ..observability.metrics import MetricsRegistry
from ..observability.runtime import current_tracer
from ..privacy.adversary import coalition_lop
from ..privacy.lop import node_lop, node_round_lop
from . import telemetry
from .config import TrialSetup
from .telemetry import PointTelemetry, TrialTiming


class TrialError(RuntimeError):
    """A trial raised inside the engine; carries the failing trial index."""

    def __init__(self, setup: TrialSetup, trial_index: int, cause: BaseException):
        super().__init__(
            f"trial {trial_index} of {_setup_label(setup)} failed: {cause!r}"
        )
        self.trial_index = trial_index


def trial_job(
    setup: TrialSetup, trial_index: int
) -> tuple[dict[str, list[float]], TopKQuery, RunConfig]:
    """The pure per-trial input: ``(local_vectors, query, config)``.

    Every trial is a deterministic function of this tuple (the per-trial
    seed derivation in :mod:`repro.experiments.config` is process-stable),
    which is what lets the batched and per-trial execution paths return
    bit-identical results.
    """
    generator = DataGenerator(
        domain=setup.domain,
        distribution=setup.distribution,
        rng=setup.data_rng(trial_index),
    )
    datasets = generator.node_datasets(setup.n, setup.values_per_node)
    local_vectors = {f"node{i}": [float(v) for v in vs] for i, vs in enumerate(datasets)}
    query = TopKQuery(table="data", attribute="value", k=setup.k, domain=setup.domain)
    config = RunConfig(
        protocol=setup.protocol,
        params=setup.params,
        seed=setup.protocol_seed(trial_index),
    )
    return local_vectors, query, config


def run_single_trial(
    setup: TrialSetup, trial_index: int, *, backend: str | None = None
) -> ProtocolResult:
    """One protocol run on freshly drawn (per-trial-seeded) data.

    ``backend`` selects the execution substrate (``None`` uses the scoped
    default, see :func:`using_backend`).  Trial configs are always
    failure-free, unencrypted and latency-free, so both backends produce
    bit-identical results; the kernel is simply faster.
    """
    local_vectors, query, config = trial_job(setup, trial_index)
    return run_protocol_on_vectors(
        local_vectors, query, config, backend=resolve_backend(backend)
    )


# -- the parallel trial-execution engine -------------------------------------

#: ``jobs`` default used when a call passes ``jobs=None``; settable as a
#: scope via :func:`using_jobs` so the CLI's ``--jobs`` reaches every
#: ``run_trials`` call inside a figure without changing figure signatures.
_DEFAULT_JOBS = 1

#: ``backend`` default used when a call passes ``backend=None``.  The
#: trial harness runs failure-free, unencrypted, latency-free configs, so
#: the message-free kernel is safe (bit-identical) and much faster; the
#: communication-cost figures pin ``backend=SESSION`` explicitly.
_DEFAULT_BACKEND = KERNEL

#: Chunks per worker: small enough to amortize dispatch overhead, large
#: enough that an uneven chunk doesn't leave workers idle at the tail.
_CHUNKS_PER_WORKER = 4

#: Lazily created, reused pool (keyed by worker count) so every sweep
#: point of a figure shares one set of workers instead of re-forking.
_POOL: tuple[int, ProcessPoolExecutor] | None = None


@contextmanager
def using_jobs(jobs: int | None) -> Iterator[None]:
    """Scope the default ``jobs`` for nested ``run_trials`` calls."""
    global _DEFAULT_JOBS
    previous = _DEFAULT_JOBS
    _DEFAULT_JOBS = resolve_jobs(jobs)
    try:
        yield
    finally:
        _DEFAULT_JOBS = previous


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: None -> scoped default, 0 -> all cores."""
    if jobs is None:
        return _DEFAULT_JOBS
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


@contextmanager
def using_backend(backend: str | None) -> Iterator[None]:
    """Scope the default execution backend for nested ``run_trials`` calls.

    Used by the CLI's ``--backend`` flag and by figures that must pin a
    substrate (e.g. the communication-cost experiments run on the session
    path, whose transport does the byte accounting they measure).
    """
    global _DEFAULT_BACKEND
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = resolve_backend(backend)
    try:
        yield
    finally:
        _DEFAULT_BACKEND = previous


def resolve_backend(backend: str | None) -> str:
    """Normalize a ``backend`` request: None -> scoped default."""
    if backend is None:
        return _DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


# -- process-pool gating ------------------------------------------------------

#: Pool policies: ``auto`` engages the pool only when it can plausibly win,
#: ``always`` trusts the caller's ``jobs`` verbatim (the pre-gate behaviour),
#: ``never`` keeps everything serial.
POOL_POLICIES = ("auto", "always", "never")

_POOL_POLICY = "auto"

#: Rough per-trial cost floor per backend, used only to decide whether a
#: parallel run could amortize pool startup — an order-of-magnitude guess
#: is enough, since the gate only needs to catch runs that are off by 10x.
_EST_TRIAL_SECONDS = {KERNEL: 0.0005, "session": 0.01}

#: Forking workers, importing numpy in each, and pickling results costs a
#: couple of seconds before the first parallel trial lands; shorter runs
#: lose by construction (the measured jobs=2 regression in
#: ``BENCH_kernel_speedup.json`` was exactly this).
_MIN_POOL_SECONDS = 2.0

_SCHEDULER_METRICS = MetricsRegistry()
_POOL_DECISIONS = _SCHEDULER_METRICS.counter(
    "runner_pool_decisions_total",
    "process-pool scheduling decisions made by the trial runner",
    ("decision", "reason"),
)


def scheduler_metrics() -> MetricsRegistry:
    """The runner's scheduling-decision registry (process-wide)."""
    return _SCHEDULER_METRICS


@contextmanager
def using_pool_policy(policy: str) -> Iterator[None]:
    """Scope the pool policy for nested ``run_trials`` calls."""
    global _POOL_POLICY
    if policy not in POOL_POLICIES:
        raise ValueError(
            f"unknown pool policy {policy!r}; expected one of {POOL_POLICIES}"
        )
    previous = _POOL_POLICY
    _POOL_POLICY = policy
    try:
        yield
    finally:
        _POOL_POLICY = previous


def _pool_gate_reason(
    jobs: int, setups: Sequence[TrialSetup], backend: str
) -> str | None:
    """Why the pool cannot win for this workload, or None if it might.

    Two ways a pool loses: more workers than cores just adds context
    switching on top of startup cost, and a workload whose whole serial
    run costs less than pool startup pays the startup for nothing.
    """
    cores = os.cpu_count() or 1
    if jobs > cores:
        return "jobs_exceed_cores"
    total_trials = sum(setup.trials for setup in setups)
    estimate = total_trials * _EST_TRIAL_SECONDS.get(backend, 0.01)
    if estimate < _MIN_POOL_SECONDS:
        return "work_below_pool_startup"
    return None


def shutdown_pool() -> None:
    """Tear down the shared worker pool (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL[1].shutdown(wait=False, cancel_futures=True)
        _POOL = None


atexit.register(shutdown_pool)


def _shared_pool(jobs: int) -> ProcessPoolExecutor:
    global _POOL
    if _POOL is not None and _POOL[0] != jobs:
        shutdown_pool()
    if _POOL is None:
        _POOL = (jobs, ProcessPoolExecutor(max_workers=jobs))
    return _POOL[1]


def _setup_label(setup: TrialSetup) -> str:
    return (
        f"{setup.protocol} n={setup.n} k={setup.k} "
        f"{setup.distribution} seed={setup.seed}"
    )


def _run_chunk_batched(
    setup: TrialSetup, indices: Sequence[int]
) -> list[tuple[int, ProtocolResult | None, BaseException | None, float, int]] | None:
    """One vectorized batch for a block of kernel-backend trials.

    Untagged query ids keep each result bit-identical to its solo
    ``backend="kernel"`` run (no per-message query tag in the byte
    accounting).  Returns ``None`` on any failure: the per-trial path
    re-runs the block so the failing trial index is attributed exactly.
    """
    pid = os.getpid()
    start = time.perf_counter()
    try:
        jobs = [trial_job(setup, trial_index) for trial_index in indices]
        results = _execute_batch(jobs, query_ids=[""] * len(jobs))
    except Exception:
        return None
    # Per-trial wall time is not observable inside the batch; amortize it.
    per_trial = (time.perf_counter() - start) / max(1, len(indices))
    return [
        (trial_index, result, None, per_trial, pid)
        for trial_index, result in zip(indices, results)
    ]


def _run_chunk(
    setup: TrialSetup, indices: Sequence[int], backend: str
) -> list[tuple[int, ProtocolResult | None, BaseException | None, float, int]]:
    """Worker body: run a contiguous block of trials, timing each one.

    ``backend`` arrives pre-resolved: worker processes do not inherit the
    parent's :func:`using_backend` scope, so the parent resolves the scoped
    default before submitting.  Failures are returned (not raised) so one
    bad trial cannot poison the pool; the parent re-raises after accounting
    for them.

    Kernel-backend blocks run through the vectorized batch engine (traced
    and phase-profiled runs excepted — span construction and per-phase
    timing belong to the solo path; a *disabled* tracer records nothing,
    so it keeps the batch path); anything that fails there falls back to
    the per-trial loop below.
    """
    tracer = current_tracer()
    if backend == KERNEL and len(indices) > 1 and phase_sink() is None and (
        tracer is None or not tracer.enabled
    ):
        rows = _run_chunk_batched(setup, indices)
        if rows is not None:
            return rows
    out = []
    pid = os.getpid()
    for trial_index in indices:
        start = time.perf_counter()
        try:
            result: ProtocolResult | None = run_single_trial(
                setup, trial_index, backend=backend
            )
            error: BaseException | None = None
        except Exception as exc:
            result, error = None, exc
        out.append((trial_index, result, error, time.perf_counter() - start, pid))
    return out


def _chunk_indices(trials: int, jobs: int) -> list[range]:
    size = max(1, math.ceil(trials / (jobs * _CHUNKS_PER_WORKER)))
    return [range(lo, min(lo + size, trials)) for lo in range(0, trials, size)]


def _finish_point(
    setup: TrialSetup,
    jobs: int,
    mode: str,
    backend: str,
    wall_start: float,
    rows: list[tuple[int, ProtocolResult | None, BaseException | None, float, int]],
) -> list[ProtocolResult]:
    """Reassemble ordered results, record telemetry, surface failures."""
    rows.sort(key=lambda row: row[0])
    timings = tuple(
        TrialTiming(trial_index=t, seconds=dt, worker=pid, ok=err is None)
        for t, _res, err, dt, pid in rows
    )
    failures = [(t, err) for t, _res, err, _dt, _pid in rows if err is not None]
    telemetry.record_point(
        PointTelemetry(
            label=_setup_label(setup),
            trials=setup.trials,
            jobs=jobs,
            mode=mode,
            wall_seconds=time.perf_counter() - wall_start,
            trial_seconds=sum(t.seconds for t in timings),
            failures=len(failures),
            workers=tuple(sorted({t.worker for t in timings})),
            timings=timings,
            backend=backend,
        )
    )
    if failures:
        trial_index, cause = failures[0]
        raise TrialError(setup, trial_index, cause) from cause
    results = [res for _t, res, _err, _dt, _pid in rows]
    assert all(res is not None for res in results)
    return results  # type: ignore[return-value]


def run_trials_many(
    setups: Sequence[TrialSetup],
    *,
    jobs: int | None = None,
    backend: str | None = None,
) -> list[list[ProtocolResult]]:
    """Run several sweep points, fanning all their trials over one pool.

    The batched form keeps workers busy across sweep-point boundaries (the
    tail of one point overlaps the head of the next); results come back
    grouped per setup, in trial order — bit-identical to calling
    :func:`run_trials` on each setup serially, on either backend.

    Under the default ``auto`` pool policy, a ``jobs > 1`` request is
    downgraded to the serial engine (telemetry mode ``serial-gated``) when
    the pool cannot win: more workers than cores, or estimated serial work
    too small to amortize pool startup.  The decision lands on the
    ``runner_pool_decisions_total`` counter (:func:`scheduler_metrics`);
    :func:`using_pool_policy` overrides it.
    """
    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend)
    if jobs > 1:
        if _POOL_POLICY == "never":
            gate = "policy_never"
        elif _POOL_POLICY == "always":
            gate = None
        else:
            gate = _pool_gate_reason(jobs, setups, backend)
        if gate is not None:
            _POOL_DECISIONS.inc(labels={"decision": "serial", "reason": gate})
            return [
                _run_serial(setup, jobs, backend, mode="serial-gated")
                for setup in setups
            ]
        _POOL_DECISIONS.inc(labels={"decision": "pool", "reason": "amortized"})
    if jobs <= 1:
        return [_run_serial(setup, jobs, backend) for setup in setups]
    wall_start = time.perf_counter()
    try:
        pool = _shared_pool(jobs)
        pending = [
            (i, pool.submit(_run_chunk, setup, list(chunk), backend))
            for i, setup in enumerate(setups)
            for chunk in _chunk_indices(setup.trials, jobs)
        ]
    except (OSError, PicklingError, NotImplementedError):
        # No usable pool on this platform/configuration: degrade politely.
        shutdown_pool()
        return [
            _run_serial(setup, jobs, backend, mode="serial-fallback")
            for setup in setups
        ]
    per_setup: dict[int, list] = {i: [] for i in range(len(setups))}
    try:
        for i, future in pending:
            per_setup[i].extend(future.result())
    except BaseException:
        # A lost worker (or Ctrl-C) leaves the pool unusable; reset it so
        # the next call starts clean, then let the error surface.
        shutdown_pool()
        raise
    # Note: in batched mode the per-point walls overlap (the pool works on
    # several sweep points at once), so they sum to more than the batch
    # wall; each point's wall is "time until its results were ready".
    return [
        _finish_point(setup, jobs, "parallel", backend, wall_start, per_setup[i])
        for i, setup in enumerate(setups)
    ]


def _run_serial(
    setup: TrialSetup, jobs: int, backend: str, *, mode: str = "serial"
) -> list[ProtocolResult]:
    wall_start = time.perf_counter()
    rows = _run_chunk(setup, range(setup.trials), backend)
    return _finish_point(setup, jobs, mode, backend, wall_start, rows)


def run_trials(
    setup: TrialSetup, *, jobs: int | None = None, backend: str | None = None
) -> list[ProtocolResult]:
    """All trials of a setup, optionally fanned across worker processes.

    ``jobs=None`` uses the scoped default (see :func:`using_jobs`, serial
    unless the CLI's ``--jobs`` raised it), ``jobs=1`` forces the serial
    path, ``jobs=0`` uses every core.  ``backend=None`` uses the scoped
    default (see :func:`using_backend`; the kernel fast path unless pinned
    otherwise).  Any combination returns bit-identical results.
    """
    return run_trials_many([setup], jobs=jobs, backend=backend)[0]


# -- aggregation -------------------------------------------------------------


def mean_precision_by_round(
    results: Sequence[ProtocolResult], rounds: int
) -> list[tuple[float, float]]:
    """(round, mean precision) for rounds 1..``rounds`` across trials."""
    if not results:
        raise ValueError("no results to aggregate")
    points = []
    for r in range(1, rounds + 1):
        mean = sum(res.precision_at_round(r) for res in results) / len(results)
        points.append((float(r), mean))
    return points


def mean_lop_by_round(
    results: Sequence[ProtocolResult], rounds: int
) -> list[tuple[float, float]]:
    """(round, mean-over-nodes-and-trials LoP) for rounds 1..``rounds``.

    The Figure 7 quantity: per-round system LoP, averaged across trials.
    Rounds a run never executed contribute 0 (no traffic, no exposure).
    """
    if not results:
        raise ValueError("no results to aggregate")
    points = []
    for r in range(1, rounds + 1):
        total = 0.0
        for res in results:
            nodes = res.ring_order
            total += sum(node_round_lop(res, node, r) for node in nodes) / len(nodes)
        points.append((float(r), total / len(results)))
    return points


def _per_node_means(
    results: Sequence[ProtocolResult],
    metric: Callable[[ProtocolResult, str], float],
) -> dict[str, float]:
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for res in results:
        for node in res.ring_order:
            sums[node] += metric(res, node)
            counts[node] += 1
    return {node: sums[node] / counts[node] for node in sums}


def aggregate_node_lop(
    results: Sequence[ProtocolResult],
) -> tuple[float, float]:
    """(average LoP, worst-case LoP) with per-node-first averaging.

    Average: mean over nodes of each node's cross-trial mean peak LoP.
    Worst case: the largest per-node cross-trial mean ("highest loss of
    privacy among all the nodes", Section 5.3) — for the fixed-start naive
    protocol this is the starting node.
    """
    if not results:
        raise ValueError("no results to aggregate")
    means = _per_node_means(results, node_lop)
    values = list(means.values())
    return sum(values) / len(values), max(values)


def aggregate_coalition_lop(
    results: Sequence[ProtocolResult],
) -> tuple[float, float]:
    """(average, worst-case) coalition LoP, per-node-first like the above."""
    if not results:
        raise ValueError("no results to aggregate")
    means = _per_node_means(results, coalition_lop)
    values = list(means.values())
    return sum(values) / len(values), max(values)


def mean_final_precision(results: Sequence[ProtocolResult]) -> float:
    """Mean precision of the final returned vectors."""
    if not results:
        raise ValueError("no results to aggregate")
    return sum(res.precision() for res in results) / len(results)


def mean_messages(results: Sequence[ProtocolResult]) -> float:
    """Mean token+result messages per run (communication cost)."""
    if not results:
        raise ValueError("no results to aggregate")
    return sum(res.stats.messages_total for res in results) / len(results)


def mean_and_confidence(
    samples: Sequence[float], *, z: float = 1.96
) -> tuple[float, float]:
    """(mean, half-width of the normal-approximation CI).

    ``z = 1.96`` gives the conventional 95% interval.  Used by reports that
    quote trial-averaged quantities with uncertainty; single samples carry
    zero width by convention.
    """
    if not samples:
        raise ValueError("no samples to aggregate")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    return mean, z * (variance / n) ** 0.5


def precision_confidence_by_round(
    results: Sequence[ProtocolResult], rounds: int
) -> list[tuple[float, float, float]]:
    """(round, mean precision, 95% CI half-width) across trials."""
    if not results:
        raise ValueError("no results to aggregate")
    points = []
    for r in range(1, rounds + 1):
        samples = [res.precision_at_round(r) for res in results]
        mean, half_width = mean_and_confidence(samples)
        points.append((float(r), mean, half_width))
    return points
