"""Executable reproduction criteria: the scorecard behind EXPERIMENTS.md.

Every figure's qualitative claims (who is above whom, where curves peak,
what converges) are encoded here as checks over the regenerated
:class:`~repro.experiments.series.FigureData`.  ``repro-topk validate`` runs
the experiments and prints PASS/FAIL per claim — the mechanical version of a
reproduction review.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from .figures.registry import EXPERIMENTS, run_experiment
from .series import FigureData


@dataclass(frozen=True)
class Check:
    """One verified claim about one reproduced artifact."""

    experiment_id: str
    claim: str
    passed: bool
    detail: str = ""


def _panel(panels: Sequence[FigureData], figure_id: str) -> FigureData:
    for panel in panels:
        if panel.figure_id == figure_id:
            return panel
    raise KeyError(f"no panel {figure_id!r}")


def _check(experiment_id: str, claim: str, condition: bool, detail: str = "") -> Check:
    return Check(experiment_id=experiment_id, claim=claim, passed=bool(condition), detail=detail)


# -- per-figure criteria ------------------------------------------------------


def _validate_fig3(panels) -> list[Check]:
    a, b = _panel(panels, "fig3a"), _panel(panels, "fig3b")
    monotone = all(s.ys == sorted(s.ys) for p in (a, b) for s in p.series)
    converges = all(s.ys[-1] > 0.99 for p in (a, b) for s in p.series)
    early = a.series_by_label("p0=0.25").y_at(1) > a.series_by_label("p0=1.0").y_at(1)
    faster = b.series_by_label("d=0.25").y_at(3) > b.series_by_label("d=0.75").y_at(3)
    return [
        _check("fig3", "bound monotone to ~1", monotone and converges),
        _check("fig3", "smaller p0 higher in round 1", early),
        _check("fig3", "smaller d converges faster", faster),
    ]


def _validate_fig4(panels) -> list[Check]:
    a, b = _panel(panels, "fig4a"), _panel(panels, "fig4b")
    slow_growth = all(
        s.ys[-1] <= 3 * s.ys[0] for p in (a, b) for s in p.series
    )
    eps = min(x for s in a.series for x in s.xs)
    d_spread = abs(
        b.series_by_label("d=0.75").y_at(eps) - b.series_by_label("d=0.25").y_at(eps)
    )
    p0_spread = abs(
        a.series_by_label("p0=1.0").y_at(eps) - a.series_by_label("p0=0.25").y_at(eps)
    )
    return [
        _check("fig4", "r_min grows ~ sqrt(log 1/eps)", slow_growth),
        _check("fig4", "d dominates the round cost", d_spread > p0_spread),
    ]


def _validate_fig5(panels) -> list[Check]:
    a, b = _panel(panels, "fig5a"), _panel(panels, "fig5b")
    p1 = a.series_by_label("p0=1.0")
    return [
        _check("fig5", "p0=1: zero in round 1, peak in round 2",
               p1.y_at(1) == 0.0 and p1.y_at(2) == max(p1.ys)),
        _check("fig5", "larger p0 has the lower peak",
               max(p1.ys) < max(a.series_by_label("p0=0.25").ys)),
        _check("fig5", "smaller d peaks higher",
               max(b.series_by_label("d=0.25").ys) > max(b.series_by_label("d=0.75").ys)),
    ]


def _validate_fig6(panels) -> list[Check]:
    a, b = _panel(panels, "fig6a"), _panel(panels, "fig6b")
    return [
        _check("fig6", "measured precision reaches 100%",
               all(s.ys[-1] == 1.0 for p in (a, b) for s in p.series)),
        _check("fig6", "smaller d reaches 100% faster",
               b.series_by_label("d=0.25").y_at(3) >= b.series_by_label("d=0.75").y_at(3)),
    ]


def _validate_fig7(panels) -> list[Check]:
    a = _panel(panels, "fig7a")
    p1 = a.series_by_label("p0=1.0")
    small = a.series_by_label("p0=0.25")
    return [
        _check("fig7", "p0=1: zero loss round 1, peak round 2",
               p1.y_at(1) == 0.0 and p1.y_at(2) == max(p1.ys)),
        _check("fig7", "small p0 peaks in round 1", small.y_at(1) == max(small.ys)),
        _check("fig7", "loss decays as the protocol converges",
               all(s.ys[-1] <= 0.05 for s in a.series)),
    ]


def _validate_fig8(panels) -> list[Check]:
    ok = all(
        s.ys[0] >= s.ys[-1] for p in panels for s in p.series
    )
    return [_check("fig8", "LoP decreases with n", ok)]


def _validate_fig9(panels) -> list[Check]:
    figure = panels[0]
    half, quarter = figure.series_by_label("d=0.5"), figure.series_by_label("d=0.25")
    return [
        _check("fig9", "d dominates rounds",
               quarter.points[-1][1] < half.points[-1][1]),
        _check("fig9", "larger p0 lowers LoP within a d-series",
               half.points[-1][0] <= half.points[0][0]),
    ]


def _validate_fig10(panels) -> list[Check]:
    a, b = _panel(panels, "fig10a"), _panel(panels, "fig10b")
    xs = a.series[0].xs
    prob_below = all(
        a.series_by_label("probabilistic").y_at(x) < a.series_by_label("naive").y_at(x)
        for x in xs
    )
    naive_worst = all(y > 0.6 for y in b.series_by_label("naive").ys)
    anon_avoids = all(
        b.series_by_label("anonymous-naive").y_at(x) < b.series_by_label("naive").y_at(x)
        for x in xs
    )
    return [
        _check("fig10", "probabilistic below naive on average", prob_below),
        _check("fig10", "naive worst case ~100% at its starter", naive_worst),
        _check("fig10", "anonymous scheme avoids the worst case", anon_avoids),
    ]


def _validate_fig11(panels) -> list[Check]:
    figure = panels[0]
    return [
        _check("fig11", "every k reaches 100% precision",
               all(s.ys[-1] == 1.0 for s in figure.series)),
    ]


def _validate_fig12(panels) -> list[Check]:
    a, b = _panel(panels, "fig12a"), _panel(panels, "fig12b")
    prob = a.series_by_label("probabilistic")
    return [
        _check("fig12", "probabilistic below naive for every k",
               all(prob.y_at(x) < a.series_by_label("naive").y_at(x) for x in prob.xs)),
        _check("fig12", "probabilistic LoP increases with k", prob.ys[-1] > prob.ys[0]),
        _check("fig12", "naive worst case extreme for all k",
               all(y > 0.6 for y in b.series_by_label("naive").ys)),
    ]


VALIDATORS: dict[str, Callable[[Sequence[FigureData]], list[Check]]] = {
    "fig3": _validate_fig3,
    "fig4": _validate_fig4,
    "fig5": _validate_fig5,
    "fig6": _validate_fig6,
    "fig7": _validate_fig7,
    "fig8": _validate_fig8,
    "fig9": _validate_fig9,
    "fig10": _validate_fig10,
    "fig11": _validate_fig11,
    "fig12": _validate_fig12,
}


def validate_experiment(
    experiment_id: str, *, trials: int | None = None, seed: int = 0,
    jobs: int | None = None, backend: str | None = None,
) -> list[Check]:
    """Run one experiment (optionally in parallel) and score its claims."""
    if experiment_id not in VALIDATORS:
        raise KeyError(
            f"no validator for {experiment_id!r}; scored artifacts: "
            f"{sorted(VALIDATORS)}"
        )
    panels = run_experiment(
        experiment_id, trials=trials, seed=seed, jobs=jobs, backend=backend
    )
    assert not isinstance(panels, str)
    return VALIDATORS[experiment_id](panels)


def scorecard(
    *, trials: int | None = None, seed: int = 0,
    experiment_ids: Sequence[str] | None = None,
    jobs: int | None = None, backend: str | None = None,
) -> list[Check]:
    """Score every (or the selected) paper figures."""
    ids = list(experiment_ids) if experiment_ids else sorted(
        VALIDATORS, key=lambda i: int(i.removeprefix("fig"))
    )
    checks: list[Check] = []
    for experiment_id in ids:
        checks.extend(
            validate_experiment(
                experiment_id, trials=trials, seed=seed, jobs=jobs, backend=backend
            )
        )
    return checks


def render_scorecard(checks: Sequence[Check]) -> str:
    """Human-readable PASS/FAIL table."""
    lines = [f"{'artifact':<8} {'status':<6} claim"]
    lines.append("-" * 64)
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"{check.experiment_id:<8} {status:<6} {check.claim}")
        if check.detail and not check.passed:
            lines.append(f"{'':<15}{check.detail}")
    passed = sum(c.passed for c in checks)
    lines.append("-" * 64)
    lines.append(f"{passed}/{len(checks)} claims reproduced")
    return "\n".join(lines)
