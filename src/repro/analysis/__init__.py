"""Analytical models from Section 4: Equations 3 (correctness), 4 (efficiency),
5 and 6 (privacy bounds)."""

from .optimization import (
    OptimizationError,
    ParameterChoice,
    evaluate,
    optimal_parameters,
    pareto_frontier,
)
from .correctness import (
    precision_bound_series,
    precision_lower_bound,
    rounds_to_reach,
)
from .efficiency import (
    grouped_total_messages,
    minimum_rounds,
    rmin_series,
    sqrt_log_scaling_constant,
    total_messages,
)
from .privacy_bounds import (
    expected_lop_bound,
    expected_lop_round_term,
    expected_lop_series,
    harmonic_number,
    naive_average_lop,
    naive_average_lop_bound,
    naive_estimator_average,
    naive_worst_case_lop,
    peak_lop_round,
)

__all__ = [
    "OptimizationError",
    "ParameterChoice",
    "evaluate",
    "expected_lop_bound",
    "expected_lop_round_term",
    "expected_lop_series",
    "grouped_total_messages",
    "harmonic_number",
    "minimum_rounds",
    "naive_average_lop",
    "naive_average_lop_bound",
    "naive_estimator_average",
    "naive_worst_case_lop",
    "optimal_parameters",
    "pareto_frontier",
    "peak_lop_round",
    "precision_bound_series",
    "precision_lower_bound",
    "rmin_series",
    "rounds_to_reach",
    "sqrt_log_scaling_constant",
    "total_messages",
]
