"""Choosing randomization parameters optimally (Section 7's open question).

"We are interested in conducting a theoretical analysis for discovering the
optimal randomized algorithm."  Within the paper's exponential family the
question is concrete: given an error bound ε and a round budget R, which
``(p0, d)`` minimizes the privacy loss?

Two closed-form facts drive the search (both verified by tests):

* the Equation 6 peak is ``max(1 − p0, (1 − p0·d)/2, ...)`` — decreasing in
  both ``p0`` and ``d``; at ``p0 = 1`` the peak is ``(1 − d)/2``, so **p0 = 1
  is always optimal for privacy** and larger ``d`` is better;
* the Equation 4 round count grows as ``d → 1``, so the budget caps ``d``.

Hence the optimum sits at ``p0 = 1`` with the **largest d whose r_min fits
the budget** — exactly the structure of the paper's Figure 9 and its
``(1, 1/2)`` default for the ~5-round regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import minimum_rounds
from .privacy_bounds import expected_lop_bound


class OptimizationError(ValueError):
    """Raised when no parameters satisfy the constraints."""


@dataclass(frozen=True)
class ParameterChoice:
    """One feasible (p0, d) with its predicted cost and privacy."""

    p0: float
    d: float
    rounds_required: int
    expected_lop_peak: float


def evaluate(p0: float, d: float, epsilon: float) -> ParameterChoice:
    """Predicted rounds (Eq. 4) and LoP peak (Eq. 6) for one pair."""
    return ParameterChoice(
        p0=p0,
        d=d,
        rounds_required=minimum_rounds(p0, d, epsilon),
        expected_lop_peak=expected_lop_bound(p0, d),
    )


def optimal_parameters(
    epsilon: float,
    max_rounds: int,
    *,
    d_grid_steps: int = 64,
) -> ParameterChoice:
    """The best (p0, d) under a round budget.

    p0 is pinned to 1 (provably optimal for the Eq. 6 peak at no round
    cost beyond its own factor, which the weakened Eq. 4 bound ignores);
    d is the largest grid value whose Equation 4 round count fits
    ``max_rounds``.
    """
    if max_rounds < 1:
        raise OptimizationError(f"max_rounds must be >= 1, got {max_rounds}")
    if not 0.0 < epsilon < 1.0:
        raise OptimizationError(f"epsilon must be in (0, 1), got {epsilon}")
    best: ParameterChoice | None = None
    for step in range(1, d_grid_steps):
        d = step / d_grid_steps
        choice = evaluate(1.0, d, epsilon)
        if choice.rounds_required <= max_rounds:
            if best is None or choice.d > best.d:
                best = choice
    if best is None:
        raise OptimizationError(
            f"no dampening factor meets eps={epsilon} within {max_rounds} rounds"
        )
    return best


def pareto_frontier(
    epsilon: float,
    p0_grid: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    d_grid: tuple[float, ...] = (0.125, 0.25, 0.5, 0.75),
) -> list[ParameterChoice]:
    """Non-dominated (rounds, LoP-peak) choices over a grid — Figure 9's knee set.

    A choice dominates another when it needs no more rounds *and* has no
    higher predicted LoP peak (and improves at least one).
    """
    candidates = [evaluate(p0, d, epsilon) for p0 in p0_grid for d in d_grid]
    frontier = []
    for choice in candidates:
        dominated = any(
            other.rounds_required <= choice.rounds_required
            and other.expected_lop_peak <= choice.expected_lop_peak
            and (
                other.rounds_required < choice.rounds_required
                or other.expected_lop_peak < choice.expected_lop_peak
            )
            for other in candidates
        )
        if not dominated:
            frontier.append(choice)
    frontier.sort(key=lambda c: (c.rounds_required, c.expected_lop_peak))
    return frontier
