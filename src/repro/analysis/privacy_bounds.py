"""Analytical privacy bounds (Section 4.3, Equations 5 and 6).

**Naive protocol** (Equation 5): node *i*'s successor sees the running max of
the first *i* values, each equally likely to be the current max, so
``P(v_i = g_i | IR) = 1/i`` and the system average LoP exceeds
``(1/n) Σ (1/i − 1/n) > ln(n)/n − ...`` — the paper quotes the harmonic-sum
bound ``LoP_naive > ln(n)/n``.

**Probabilistic protocol** (Equation 6): the paper derives an approximate
upper bound on the *expected* LoP by analysing
``P(v_i = g_i(r) | g_i(r), v_max) = P(v_i > g_{i−1}(r))(1 − P_r(r)) +
P(v_i = g_{i−1}(r))``, with the expected global value halving the remaining
gap each hop; taking the per-round bound term

    f(r) = (1 / 2^(r−1)) · (1 − p0 · d^(r−1))

the node's expected LoP is at most ``max_r f(r)``.
"""

from __future__ import annotations

import math


def harmonic_number(n: int) -> float:
    """``H_n = Σ_{i=1..n} 1/i`` (exact summation; n is small here)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return sum(1.0 / i for i in range(1, n + 1))


def naive_average_lop(n: int) -> float:
    """The naive protocol's expected average LoP.

    Node *i*'s LoP is ``1/i − 1/n`` when its output is the global max and
    ``1/i`` otherwise; with uniformly random data the output of node *i*
    equals the global max with probability ``i/n`` (the max lies among the
    first *i* ring positions).  Hence

        E[LoP_i] = 1/i − (i/n) · (1/n),
        average  = (H_n − (n+1)/(2n)) / n,

    which exceeds the paper's Equation 5 bound ``ln(n)/n`` for all n >= 2.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (harmonic_number(n) - (n + 1) / (2 * n)) / n


def naive_average_lop_bound(n: int) -> float:
    """Equation 5: ``LoP_naive > ln(n)/n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.log(n) / n


def naive_estimator_average(n: int) -> float:
    """The *empirical estimator's* expected naive average: ``(H_n − 1)/n``.

    The estimator (DESIGN.md §4) zeroes a claim whose value is in the final
    result, so node *i* contributes ``P(v_i is the running max AND not the
    global max) = 1/i − 1/n``.  The paper's Equation 1 instead subtracts the
    ``1/n`` prior only in the ``g_i = v_max`` case (see
    :func:`naive_average_lop`); both are exact, for different conventions,
    and the experiment harness converges to *this* one.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (harmonic_number(n) - 1.0) / n


def naive_worst_case_lop(n: int) -> float:
    """The naive starter's LoP: provable exposure less the 1/n prior."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1.0 - 1.0 / n


def expected_lop_round_term(p0: float, d: float, round_number: int) -> float:
    """The Equation 6 inner term ``(1/2^(r−1)) · (1 − p0·d^(r−1))``."""
    if round_number < 1:
        raise ValueError(f"rounds are 1-based, got {round_number}")
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"p0 must be in [0, 1], got {p0}")
    if not 0.0 < d <= 1.0:
        raise ValueError(f"d must be in (0, 1], got {d}")
    return (1.0 / 2.0 ** (round_number - 1)) * (1.0 - p0 * d ** (round_number - 1))


def expected_lop_bound(p0: float, d: float, max_rounds: int = 50) -> float:
    """Equation 6: ``E(LoP) <= max_r f(r)`` over all rounds."""
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    return max(
        expected_lop_round_term(p0, d, r) for r in range(1, max_rounds + 1)
    )


def expected_lop_series(
    p0: float, d: float, max_rounds: int
) -> list[tuple[int, float]]:
    """The Figure 5 series: (round, f(r)) for rounds 1..max_rounds."""
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    return [
        (r, expected_lop_round_term(p0, d, r)) for r in range(1, max_rounds + 1)
    ]


def peak_lop_round(p0: float, d: float, max_rounds: int = 50) -> int:
    """The round where the Equation 6 bound peaks.

    With ``p0 = 1`` the first-round term vanishes (every contributor
    randomizes) and the peak moves to round 2; with small ``p0`` the peak is
    round 1 — the behaviour Figures 5 and 7 discuss.
    """
    series = expected_lop_series(p0, d, max_rounds)
    return max(series, key=lambda pair: pair[1])[0]
