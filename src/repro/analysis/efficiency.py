"""Efficiency analysis (Section 4.2, Equation 4) and communication-cost model.

The protocol involves no cryptographic computation, so cost is dominated by
communication: (messages per round) x (number of rounds).  Messages per round
equal the ring size *n*; the required number of rounds ``r_min`` for a target
precision ``1 − ε`` follows from Equation 3 and — crucially — is independent
of *n* (Equation 4), scaling as ``O(sqrt(log 1/ε))``.
"""

from __future__ import annotations

import math

from ..core.params import minimum_rounds

__all__ = [
    "minimum_rounds",
    "rmin_series",
    "total_messages",
    "grouped_total_messages",
    "sqrt_log_scaling_constant",
]


def rmin_series(
    p0: float, d: float, epsilons: list[float]
) -> list[tuple[float, int]]:
    """The Figure 4 series: (ε, r_min) pairs for a log-scaled ε sweep."""
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    return [(eps, minimum_rounds(p0, d, eps)) for eps in epsilons]


def total_messages(n_nodes: int, p0: float, d: float, epsilon: float) -> int:
    """Token messages for a full run at the Equation 4 round count.

    One message per node per round, plus the n-message termination round that
    circulates the final result.
    """
    if n_nodes < 3:
        raise ValueError(f"the protocol requires n >= 3, got {n_nodes}")
    rounds = minimum_rounds(p0, d, epsilon)
    return n_nodes * rounds + n_nodes


def grouped_total_messages(
    n_nodes: int, group_size: int, p0: float, d: float, epsilon: float
) -> int:
    """Cost model for the Section 4.2 group-parallel variant.

    Nodes split into ``ceil(n / group_size)`` groups that run the protocol in
    parallel; one designated node per group then runs a second-level protocol
    over the group maxima.  Wall-clock rounds shrink (groups run in
    parallel); total messages are modelled here.
    """
    if group_size < 3:
        raise ValueError(f"groups must have >= 3 nodes, got {group_size}")
    if n_nodes < group_size:
        raise ValueError("n_nodes must be at least one full group")
    n_groups = math.ceil(n_nodes / group_size)
    rounds = minimum_rounds(p0, d, epsilon)
    group_cost = n_nodes * rounds + n_nodes  # all groups together, per-node cost
    if n_groups < 3:
        # Too few designated nodes for a second ring; fall back to flat.
        return total_messages(n_nodes, p0, d, epsilon)
    combiner_cost = n_groups * rounds + n_groups
    return group_cost + combiner_cost


def sqrt_log_scaling_constant(p0: float, d: float, epsilon: float) -> float:
    """``r_min / sqrt(log10(1/ε))`` — near-constant per Section 4.2's claim.

    Used by tests to verify the O(sqrt(log 1/ε)) scaling empirically.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    r = minimum_rounds(p0, d, epsilon)
    return r / math.sqrt(math.log10(1.0 / epsilon))
