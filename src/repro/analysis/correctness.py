"""Correctness analysis of the max protocol (Section 4.1, Equation 3).

At each round *j*, if the global value has not yet reached the true maximum,
every holder of the maximum independently replaces the global value with
probability ``1 − P_r(j)``.  The protocol can only still be wrong after round
*r* if the max-holder randomized in *every* round so far, hence

    P(g(r) = v_max)  >=  1 − prod_{j=1..r} P_r(j)  =  1 − p0^r · d^(r(r−1)/2).

The bound is monotone in *r* for any ``0 < p0 <= 1`` and ``0 < d < 1``, and
is independent of the number of nodes.
"""

from __future__ import annotations

from ..core.schedule import ExponentialSchedule


def precision_lower_bound(p0: float, d: float, rounds: int) -> float:
    """Equation 3: ``1 − p0^r · d^(r(r−1)/2)``."""
    schedule = ExponentialSchedule(p0=p0, d=d)
    return 1.0 - schedule.cumulative_randomization(rounds)


def precision_bound_series(
    p0: float, d: float, max_rounds: int
) -> list[tuple[int, float]]:
    """The Figure 3 series: (round, bound) for rounds 1..max_rounds."""
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    return [(r, precision_lower_bound(p0, d, r)) for r in range(1, max_rounds + 1)]


def rounds_to_reach(p0: float, d: float, target: float, cap: int = 10_000) -> int:
    """Smallest round count whose Equation 3 bound reaches ``target``.

    A convergence helper used by tests and reports; raises if ``cap`` rounds
    do not suffice (which indicates a non-decaying schedule).
    """
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    for r in range(1, cap + 1):
        if precision_lower_bound(p0, d, r) >= target:
            return r
    raise ValueError(
        f"bound does not reach {target} within {cap} rounds (p0={p0}, d={d})"
    )
